"""Ingested external traces × the sweep executor, end to end.

The tentpole claim of the trace-source layer: an ``external:<name>``
workload is a first-class citizen of the pipeline — it pre-compiles into
the trace store, sweeps through ``run_specs_report`` (serial and pooled,
identically), and lands ordinary :class:`SystemResult`\\ s.
"""

import pytest

from repro.eval import executor
from repro.eval.executor import run_specs_report
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import clear_trace_cache, precompile_for_specs
from repro.eval.runspec import RunSpec
from repro.trace import store
from repro.trace.ingest import ingest_file

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=4_000,
    measure_instructions=12_000,
    cmp_measure_instructions=6_000,
)


@pytest.fixture(autouse=True)
def fresh_state(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EXTERNAL_TRACES", str(tmp_path / "external"))
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    executor.clear_memo()
    clear_trace_cache()
    yield
    executor.clear_memo()
    clear_trace_cache()


@pytest.fixture
def ingested(tmp_path):
    """A call-chain-shaped PC stream ingested under the name 'svc'."""
    # ~700 distinct handler blocks (≈ 44 KB of text) so the replayed
    # stream thrashes the L1I and the prefetchers have misses to cover.
    lines = []
    for i in range(1400):
        base = 0x10000 + 0x1000 * (i % 700)
        lines.extend(hex(base + 4 * j) for j in range(12))
        lines.extend(hex(0x800000 + 4 * j) for j in range(6))  # shared helper
    stream = tmp_path / "svc.txt"
    stream.write_text("\n".join(lines) + "\n")
    ingest_file(stream)
    return "external:svc"


def sweep_specs(workload):
    return [
        RunSpec.create(workload, 2, "none", scale=TINY),
        RunSpec.create(workload, 2, "next-4-line", scale=TINY),
        RunSpec.create(workload, 2, "discontinuity", scale=TINY),
    ]


def test_precompile_persists_external_entries(ingested):
    specs = sweep_specs(ingested)
    outcomes = precompile_for_specs(specs)
    assert list(outcomes.values()) == ["compiled"]
    assert store.entry_count() == 2  # one packed file per core
    clear_trace_cache()
    outcomes = precompile_for_specs(specs)
    assert list(outcomes.values()) == ["store"]


def test_external_sweep_end_to_end(ingested):
    results, report = run_specs_report(sweep_specs(ingested), jobs=1)
    assert report.total == 3 and report.failed == 0
    baseline = results[sweep_specs(ingested)[0]]
    prefetched = results[sweep_specs(ingested)[2]]
    assert baseline.total_instructions > 0
    assert baseline.aggregate_ipc > 0
    # the stream has real discontinuities, so the prefetcher must engage
    assert prefetched.prefetch_issued > 0


def metrics(result):
    return (
        result.aggregate_ipc,
        tuple(core.cycles for core in result.cores),
        tuple(core.l1i_misses for core in result.cores),
        result.link.stats.requests,
    )


def test_pooled_external_sweep_matches_serial(ingested, tmp_path, monkeypatch):
    from repro.eval import diskcache

    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "serial"))
    serial, _ = run_specs_report(sweep_specs(ingested), jobs=1)

    executor.clear_memo()
    clear_trace_cache()
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "pool"))
    pooled, _ = run_specs_report(sweep_specs(ingested), jobs=2)

    assert set(serial) == set(pooled)
    for spec in serial:
        assert metrics(serial[spec]) == metrics(pooled[spec])
