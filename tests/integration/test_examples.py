"""The shipped examples must run to completion and print their findings."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["web"], ["speedup", "residual"]),
    ("cmp_pollution_study.py", ["web"], ["L2 data miss inflation", "bypass"]),
    ("table_size_tuning.py", ["web"], ["entries", "coverage"]),
    ("custom_prefetcher.py", [], ["probe-ahead", "late="]),
    ("commercial_workloads.py", [], ["db", "japp", "miss breakdown"]),
    ("alternative_schemes.py", ["web"], ["discontinuity", "fetch-directed", "speedup"]),
    ("workload_anatomy.py", ["web"], ["monomorphic", "histogram"]),
]


@pytest.mark.parametrize("script,args,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle.lower() in result.stdout.lower(), (
            f"{script}: {needle!r} not in output\n{result.stdout[-1500:]}"
        )
