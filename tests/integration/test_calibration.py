"""Calibration tests: the synthetic workloads land in the paper's bands.

These run at a reduced-but-representative scale (between ``smoke`` and
``default``), so the whole module stays under ~2 minutes while the asserted
bands hold with margin.  The *authoritative* numbers live in
EXPERIMENTS.md and are produced at ``default``/``full`` scale by the
benchmark harness.
"""

import pytest

from repro.eval.profiles import ExperimentScale
from repro.eval.runner import run_system_cached
from repro.isa.classify import MissClass
from repro.trace.synth.workloads import workload_names

SCALE = ExperimentScale(
    name="calibration",
    warm_instructions=150_000,
    measure_instructions=500_000,
    cmp_measure_instructions=250_000,
)


def single(workload, prefetcher="none", **kwargs):
    return run_system_cached(workload, 1, prefetcher, scale=SCALE, **kwargs)


def cmp4(workload, prefetcher="none", **kwargs):
    return run_system_cached(workload, 4, prefetcher, scale=SCALE, **kwargs)


class TestFigure1Bands:
    """Paper §3.1: default-config L1I miss rates 1.32-3.16%, jApp highest."""

    def test_l1i_rates_in_band(self):
        for workload in workload_names():
            rate = 100 * single(workload).l1i_miss_rate
            assert 0.8 < rate < 4.5, f"{workload}: {rate:.2f}%"

    def test_japp_highest_web_lowest(self):
        rates = {w: single(w).l1i_miss_rate for w in workload_names()}
        assert max(rates, key=rates.get) == "japp"
        assert min(rates, key=rates.get) == "web"


class TestFigure2Shapes:
    """Paper §3.1: CMP L2 instruction miss rates exceed single core."""

    @pytest.mark.parametrize("workload", ["db", "tpcw", "japp"])
    def test_cmp_increase(self, workload):
        rate_single = single(workload).l2i_miss_rate
        rate_cmp = cmp4(workload).l2i_miss_rate
        assert rate_cmp > 1.2 * rate_single, workload

    def test_mix_among_highest(self):
        mix_rate = cmp4("mix").l2i_miss_rate
        others = [cmp4(w).l2i_miss_rate for w in workload_names()]
        assert mix_rate > 0.6 * max(others)
        assert mix_rate > sorted(others)[-2]  # at least second highest


class TestFigure3Breakdown:
    """Paper §3.2: sequential misses are only 40-60% of L1I misses."""

    @pytest.mark.parametrize("workload", workload_names())
    def test_sequential_share(self, workload):
        by_class = single(workload).l1i_breakdown.by_class()
        total = sum(by_class.values())
        seq_share = by_class[MissClass.SEQUENTIAL] / total
        assert 0.30 < seq_share < 0.70, f"{workload}: {seq_share:.2f}"

    @pytest.mark.parametrize("workload", workload_names())
    def test_branch_and_function_shares(self, workload):
        by_class = single(workload).l1i_breakdown.by_class()
        total = sum(by_class.values())
        branch = by_class[MissClass.BRANCH] / total
        function = by_class[MissClass.FUNCTION] / total
        trap = by_class[MissClass.TRAP] / total
        assert 0.10 < branch < 0.55, f"{workload} branch {branch:.2f}"
        assert 0.08 < function < 0.40, f"{workload} function {function:.2f}"
        assert trap < 0.02, f"{workload} trap {trap:.2f}"


class TestFigure5Residuals:
    """Paper §6: discontinuity cuts the miss rate to a small residual."""

    def test_discontinuity_residual_band(self):
        for workload in ("db", "japp"):
            base = single(workload)
            pf = single(workload, "discontinuity", l2_policy="bypass")
            residual = pf.l1i_miss_rate / base.l1i_miss_rate
            assert residual < 0.25, f"{workload}: {residual:.2f}"

    def test_scheme_ordering(self):
        base = single("db").l1i_miss_rate
        last = 1.0
        for scheme in ("next-line-on-miss", "next-line-tagged", "next-4-line", "discontinuity"):
            residual = single("db", scheme, l2_policy="bypass").l1i_miss_rate / base
            assert residual < last, scheme
            last = residual


class TestFigure7And8Pollution:
    """Paper §6-§7: normal installs pollute; bypass removes the pollution."""

    def test_normal_install_inflates_l2_data_misses(self):
        base = cmp4("db").l2d_miss_rate
        polluted = cmp4("db", "discontinuity", l2_policy="normal").l2d_miss_rate
        assert polluted > 1.05 * base

    def test_bypass_removes_pollution(self):
        base = cmp4("db").l2d_miss_rate
        bypassed = cmp4("db", "discontinuity", l2_policy="bypass").l2d_miss_rate
        assert bypassed < 1.05 * base

    def test_bypass_competitive_with_normal_and_beats_baseline(self):
        # The IPC advantage of bypass over normal requires long windows for
        # the pollution to compound (it shows at default/full scale — see
        # EXPERIMENTS.md); at this reduced scale we assert the direction on
        # miss rates (above) and that bypass is at worst equal on IPC.
        base = cmp4("db").aggregate_ipc
        normal = cmp4("db", "discontinuity", l2_policy="normal").aggregate_ipc
        bypassed = cmp4("db", "discontinuity", l2_policy="bypass").aggregate_ipc
        assert normal > base
        assert bypassed > base
        assert bypassed > 0.95 * normal


class TestFigure9Accuracy:
    """Paper §7: accuracy falls with aggressiveness; 2NL variant recovers it."""

    def test_accuracy_ordering(self):
        tagged = cmp4("db", "next-line-tagged", l2_policy="bypass").prefetch_accuracy
        next4 = cmp4("db", "next-4-line", l2_policy="bypass").prefetch_accuracy
        disc = cmp4("db", "discontinuity", l2_policy="bypass").prefetch_accuracy
        disc2 = cmp4("db", "discontinuity-2nl", l2_policy="bypass").prefetch_accuracy
        assert tagged > next4 > disc
        assert disc2 > disc * 1.2


class TestFigure10TableSizes:
    """Paper §7: a 4x smaller table costs little coverage."""

    def test_coverage_robust_to_table_shrink(self):
        full = cmp4(
            "db", "discontinuity", l2_policy="bypass",
            prefetcher_overrides={"table_entries": 8192},
        ).l1i_coverage
        quarter = cmp4(
            "db", "discontinuity", l2_policy="bypass",
            prefetcher_overrides={"table_entries": 2048},
        ).l1i_coverage
        assert quarter > full - 0.06

    def test_small_table_beats_next4line(self):
        small = cmp4(
            "db", "discontinuity", l2_policy="bypass",
            prefetcher_overrides={"table_entries": 256},
        ).l1i_coverage
        seq = cmp4("db", "next-4-line", l2_policy="bypass").l1i_coverage
        assert small > seq
