"""Integration tests for the parallel sweep executor.

The load-bearing property is *bit-identical determinism*: a batch executed
through worker processes must reproduce, exactly, the metrics of the same
specs run serially in-process (the paper's figures are regenerated from
whichever path is available, so the two must be indistinguishable).
"""

import pytest

from repro.eval import diskcache, executor
from repro.eval.executor import execute_spec, memo_size, resolve_jobs, run_specs
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import run_system
from repro.eval.runspec import RunSpec

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=4_000,
    measure_instructions=12_000,
    cmp_measure_instructions=6_000,
)


def tiny_specs():
    return [
        RunSpec.create("db", 1, "none", scale=TINY),
        RunSpec.create("db", 1, "discontinuity", scale=TINY, l2_policy="bypass"),
        RunSpec.create("web", 1, "next-2-line", scale=TINY, l2_policy="bypass"),
    ]


def metrics(result):
    return (
        result.aggregate_ipc,
        tuple(core.cycles for core in result.cores),
        tuple(core.l1i_misses for core in result.cores),
        tuple(tuple(core.l1i_breakdown.counts()) for core in result.cores),
        result.link.stats.requests,
    )


@pytest.fixture(autouse=True)
def fresh_memo():
    executor.clear_memo()
    yield
    executor.clear_memo()


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(executor.JOBS_ENV, "8")
        assert resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(executor.JOBS_ENV, "5")
        assert resolve_jobs() == 5
        monkeypatch.setenv(executor.JOBS_ENV, "not-a-number")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()

    def test_floor_of_one(self, monkeypatch):
        monkeypatch.delenv(executor.JOBS_ENV, raising=False)
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestCachingLayers:
    def test_execute_spec_memoizes(self):
        spec = tiny_specs()[0]
        first = execute_spec(spec)
        assert memo_size() == 1
        assert execute_spec(spec) is first  # same object: memo hit

    def test_disk_hit_survives_memo_clear(self):
        spec = tiny_specs()[1]
        first = execute_spec(spec)
        assert diskcache.entry_count() == 1
        executor.clear_memo()
        second = execute_spec(spec)
        assert second is not first  # rebuilt from disk, not the memo
        assert metrics(second) == metrics(first)

    def test_run_specs_collapses_duplicates(self):
        specs = tiny_specs()
        results = run_specs(specs + specs + [specs[0]], jobs=1)
        assert len(results) == len(specs)
        assert set(results) == set(specs)


class TestBitIdenticalDeterminism:
    def test_serial_batch_matches_direct_run_system(self):
        spec = tiny_specs()[1]
        direct = run_system(**spec.run_kwargs())
        batch = run_specs([spec], jobs=1)[spec]
        assert metrics(batch) == metrics(direct)

    def test_parallel_matches_serial_exactly(self, tmp_path, monkeypatch):
        specs = tiny_specs()

        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "serial"))
        serial = {s: metrics(r) for s, r in run_specs(specs, jobs=1).items()}

        executor.clear_memo()
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "parallel"))
        parallel = {s: metrics(r) for s, r in run_specs(specs, jobs=2).items()}

        assert parallel == serial

    def test_parallel_results_land_in_memo_and_disk(self, tmp_path, monkeypatch):
        specs = tiny_specs()
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "pool"))
        run_specs(specs, jobs=2)
        assert memo_size() == len(specs)
        assert diskcache.entry_count() == len(specs)
        # A rerun is served without simulation (pure cache reads).
        again = run_specs(specs, jobs=2)
        assert set(again) == set(specs)

    def test_software_prefetch_round_trips_through_the_pool(self, tmp_path, monkeypatch):
        spec = RunSpec.create(
            "db", 1, "none", scale=TINY, l2_policy="bypass", software_prefetch=True
        )
        serial = metrics(execute_spec(spec))
        executor.clear_memo()
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "swpf"))
        # Force the pool path by pairing it with a second pending spec.
        other = tiny_specs()[0]
        results = run_specs([spec, other], jobs=2)
        assert metrics(results[spec]) == serial
