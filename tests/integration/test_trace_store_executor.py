"""Trace store × executor integration: workers load, only the parent compiles.

The tentpole claim of the trace store is that a pooled sweep synthesizes
and lowers each trace key **once, in the parent** — workers then load the
packed files.  ``REPRO_SYNTH_LOG`` records one JSON line per actual
synthesis with the synthesizing pid, which is exactly the observability
these tests need.
"""

import json
import os

import pytest

from repro.eval import executor
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import (
    SYNTH_LOG_ENV,
    clear_trace_cache,
    precompile_for_specs,
    synthesis_count,
)
from repro.eval.runspec import RunSpec
from repro.trace import store

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=4_000,
    measure_instructions=12_000,
    cmp_measure_instructions=6_000,
)


def tiny_specs():
    # Three prefetchers over one trace key plus one second workload: the
    # batch needs 2 trace keys, not 4.
    return [
        RunSpec.create("db", 1, "none", scale=TINY),
        RunSpec.create("db", 1, "discontinuity", scale=TINY),
        RunSpec.create("db", 1, "next-2-line", scale=TINY),
        RunSpec.create("web", 1, "none", scale=TINY),
    ]


@pytest.fixture(autouse=True)
def fresh_state():
    executor.clear_memo()
    clear_trace_cache()
    yield
    executor.clear_memo()
    clear_trace_cache()


def read_synth_log(path):
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestPrecompile:
    def test_one_compile_per_trace_key(self):
        outcomes = precompile_for_specs(tiny_specs())
        assert len(outcomes) == 2
        assert set(outcomes.values()) == {"compiled"}
        assert store.entry_count() == 2

    def test_second_pass_is_memo_and_cleared_cache_hits_store(self):
        precompile_for_specs(tiny_specs())
        assert set(precompile_for_specs(tiny_specs()).values()) == {"memo"}
        clear_trace_cache()
        assert set(precompile_for_specs(tiny_specs()).values()) == {"store"}

    def test_disabled_is_a_noop(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_TRACES", "0")
        assert precompile_for_specs(tiny_specs()) == {}
        assert store.entry_count() == 0

    def test_synthesis_shared_across_line_sizes(self):
        from repro.caches.config import DEFAULT_HIERARCHY

        base = synthesis_count()
        specs = [
            RunSpec.create(
                "db",
                1,
                "none",
                scale=TINY,
                hierarchy=DEFAULT_HIERARCHY.with_l1i(line_size=size),
            )
            for size in (32, 64, 128)
        ]
        outcomes = precompile_for_specs(specs)
        assert len(outcomes) == 3  # one compiled trace per line size...
        # ...but a single raw synthesis served all of them.
        assert synthesis_count() - base == 1


class TestPooledSweep:
    def test_workers_load_from_store_parent_synthesizes(self, tmp_path, monkeypatch):
        log_path = str(tmp_path / "synth.jsonl")
        monkeypatch.setenv(SYNTH_LOG_ENV, log_path)
        monkeypatch.setenv(executor.JOBS_ENV, "2")

        specs = tiny_specs()
        results = executor.run_specs(specs, jobs=2)
        assert len(results) == len(specs)
        assert store.entry_count() == 2

        records = read_synth_log(log_path)
        synth_pids = {record["pid"] for record in records}
        # Every synthesis happened in the parent (the precompile pass);
        # pool workers only loaded packed files.
        assert synth_pids == {os.getpid()}
        assert len(records) == 2

    def test_pooled_results_match_serial(self, monkeypatch):
        specs = tiny_specs()
        pooled = executor.run_specs(specs, jobs=2)
        executor.clear_memo()
        clear_trace_cache()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(store.trace_dir().parent / "serial"))
        serial = executor.run_specs(specs, jobs=1)
        for spec in specs:
            assert pooled[spec].aggregate_ipc == serial[spec].aggregate_ipc
            assert [c.cycles for c in pooled[spec].cores] == [
                c.cycles for c in serial[spec].cores
            ]
