"""Failure semantics and observability of the parallel sweep executor.

The headline property: results are **checkpointed the moment their worker
finishes**, so one crashed spec never discards a sibling's completed work —
the disk cache holds everything that finished, and a re-run simulates only
what failed.  On top of that: one in-parent serial retry per worker
failure, pool-rebuild + serial degradation on ``BrokenProcessPool``, and a
``SweepReport`` whose counters partition the batch exactly.

The fault-injection tests monkeypatch ``executor._simulate`` in the parent
and rely on the ``fork`` start method to propagate the patch into pool
workers, so they skip on platforms that spawn.
"""

import json
import multiprocessing
import os

import pytest

from repro.eval import diskcache, executor
from repro.eval.executor import (
    SweepError,
    execute_spec,
    run_specs,
    run_specs_report,
)
from repro.eval.profiles import ExperimentScale
from repro.eval.runspec import RunSpec

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=2_000,
    measure_instructions=8_000,
    cmp_measure_instructions=4_000,
)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fault injection relies on fork inheriting the monkeypatch",
)


def tiny_specs():
    return [
        RunSpec.create("db", 1, "none", scale=TINY),
        RunSpec.create("db", 1, "discontinuity", scale=TINY, l2_policy="bypass"),
        RunSpec.create("web", 1, "next-2-line", scale=TINY, l2_policy="bypass"),
    ]


@pytest.fixture(autouse=True)
def fresh_memo():
    executor.clear_memo()
    yield
    executor.clear_memo()


def failing_simulate(victim, real_simulate, child_only=False, exit_code=None):
    """A ``_simulate`` stand-in that fails (only) for *victim*.

    ``child_only`` restricts the failure to pool workers (the parent pid is
    captured here, at patch time); ``exit_code`` hard-kills the process via
    ``os._exit`` instead of raising — the ``BrokenProcessPool`` trigger.
    """
    parent_pid = os.getpid()

    def simulate(spec):
        if spec == victim and not (child_only and os.getpid() == parent_pid):
            if exit_code is not None:
                os._exit(exit_code)
            raise RuntimeError("injected simulation failure")
        return real_simulate(spec)

    return simulate


@fork_only
class TestCheckpointOnCompletion:
    def test_sibling_results_survive_a_worker_failure(self, monkeypatch):
        """The headline regression: one crashed spec, siblings persisted."""
        specs = tiny_specs()
        victim = specs[1]
        real = executor._simulate
        monkeypatch.setattr(executor, "_simulate", failing_simulate(victim, real))
        with pytest.raises(SweepError) as excinfo:
            run_specs(specs, jobs=2)
        error = excinfo.value
        assert set(error.failures) == {victim}
        assert "injected simulation failure" in error.failures[victim]
        assert set(error.results) == set(specs) - {victim}
        assert error.report.failed == 1
        assert error.report.retried == 0
        assert error.report.simulated == 2
        assert "salvaged" in str(error)
        # Both siblings reached the disk cache before the error propagated.
        assert diskcache.entry_count() == 2
        for spec in error.results:
            assert diskcache.load(spec) is not None

        # A re-run simulates ONLY the failed spec: siblings replay from
        # disk (the memo is cleared to prove it is really the disk copy).
        # The failure patch is *overwritten*, not undo()ne — undo would
        # also revert the cache-dir isolation fixture's setenv.
        executor.clear_memo()
        simulated = []

        def counting(spec):
            simulated.append(spec)
            return real(spec)

        monkeypatch.setattr(executor, "_simulate", counting)
        results, report = run_specs_report(specs, jobs=2)
        assert simulated == [victim]
        assert set(results) == set(specs)
        assert report.disk_hits == 2
        assert report.simulated == 1
        assert report.failed == 0

    def test_serial_batch_isolates_failures_too(self, monkeypatch):
        specs = tiny_specs()
        victim = specs[0]  # fails first; siblings must still run
        monkeypatch.setattr(
            executor, "_simulate", failing_simulate(victim, executor._simulate)
        )
        with pytest.raises(SweepError) as excinfo:
            run_specs(specs, jobs=1)
        error = excinfo.value
        assert set(error.failures) == {victim}
        assert diskcache.entry_count() == 2
        assert error.report.simulated == 2
        assert error.report.failed == 1


@fork_only
class TestRetryAndDegradation:
    def test_retry_succeeds_after_a_transient_worker_failure(self, monkeypatch):
        specs = tiny_specs()
        victim = specs[2]
        monkeypatch.setattr(
            executor,
            "_simulate",
            failing_simulate(victim, executor._simulate, child_only=True),
        )
        results, report = run_specs_report(specs, jobs=2)
        assert set(results) == set(specs)
        assert report.retried == 1
        assert report.simulated == 2
        assert report.failed == 0
        assert diskcache.entry_count() == 3

    def test_broken_pool_degrades_to_serial_and_completes(self, monkeypatch):
        specs = tiny_specs()
        victim = specs[0]
        monkeypatch.setattr(
            executor,
            "_simulate",
            failing_simulate(
                victim, executor._simulate, child_only=True, exit_code=13
            ),
        )
        results, report = run_specs_report(specs, jobs=2)
        assert set(results) == set(specs)
        assert report.pool_rebuilds == 1
        assert report.degraded_to_serial
        assert report.failed == 0
        assert report.simulated + report.retried == 3
        assert diskcache.entry_count() == 3

    def test_keyboard_interrupt_propagates(self, monkeypatch):
        specs = tiny_specs()
        victim = specs[0]
        parent_pid = os.getpid()
        real = executor._simulate

        def interrupting(spec):
            if spec == victim and os.getpid() != parent_pid:
                raise KeyboardInterrupt
            return real(spec)

        monkeypatch.setattr(executor, "_simulate", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_specs(specs, jobs=2)


class TestSweepReport:
    def test_counters_partition_a_mixed_batch_exactly(self):
        specs = tiny_specs()
        memo_spec, disk_spec, fresh_spec = specs
        execute_spec(disk_spec)  # lands in memo + disk
        executor.clear_memo()  # ... now disk only
        execute_spec(memo_spec)  # memo + disk; served from memo first

        results, report = run_specs_report(specs, jobs=1)
        assert set(results) == set(specs)
        assert report.total == 3
        assert report.memo_hits == 1
        assert report.disk_hits == 1
        assert report.simulated == 1
        assert report.retried == 0
        assert report.failed == 0
        assert report.completed() == 3
        assert report.wall_seconds > 0
        # Only the fresh spec was actually simulated (and timed).
        assert list(report.durations) == [fresh_spec]

        summary = json.loads(report.summary_json())
        assert summary["event"] == "sweep"
        assert summary["total"] == 3
        assert summary["memo_hits"] == 1
        assert summary["disk_hits"] == 1
        assert summary["simulated"] == 1
        assert summary["retried"] == 0
        assert summary["failed"] == 0
        assert summary["slowest_spec"] == fresh_spec.describe()
        assert summary["slowest_seconds"] >= 0
        assert "\n" not in report.summary_json()

    def test_progress_callback_sees_every_spec(self):
        specs = tiny_specs()
        execute_spec(specs[0])  # one memo hit in the mix
        events = []

        def progress(done, total, spec, source, seconds):
            events.append((done, total, spec, source, seconds))

        results, report = run_specs_report(specs, jobs=1, progress=progress)
        assert [event[0] for event in events] == [1, 2, 3]
        assert all(event[1] == 3 for event in events)
        assert {event[2] for event in events} == set(specs)
        sources = [event[3] for event in events]
        assert sources.count("memo") == report.memo_hits
        assert sources.count("simulated") == report.simulated

    def test_label_is_carried_into_summary_and_error(self, monkeypatch):
        spec = tiny_specs()[0]

        def broken(spec):
            raise RuntimeError("nope")

        monkeypatch.setattr(executor, "_simulate", broken)
        with pytest.raises(SweepError) as excinfo:
            run_specs([spec], jobs=1, label="fig99")
        assert excinfo.value.report.label == "fig99"
        assert "[fig99]" in str(excinfo.value)
        summary = json.loads(excinfo.value.report.summary_json())
        assert summary["label"] == "fig99"


class TestSerialSingleProbe:
    def test_each_spec_stats_the_disk_cache_once(self, monkeypatch):
        """The pre-scan's miss is threaded through: no second load probe."""
        specs = tiny_specs()
        loads = []
        real_load = diskcache.load

        def counting_load(spec):
            loads.append(spec)
            return real_load(spec)

        monkeypatch.setattr(diskcache, "load", counting_load)
        run_specs(specs, jobs=1)
        assert len(loads) == len(specs)  # one probe per spec, in the pre-scan
