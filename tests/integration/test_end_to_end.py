"""End-to-end integration tests: every workload × prefetcher × policy runs.

These use tiny instruction budgets — they verify plumbing, not calibration
(calibration has its own suite).
"""

import pytest

from repro.api import quick_run
from repro.prefetch.registry import PREFETCHER_NAMES
from repro.trace.synth.workloads import workload_names

TINY = dict(n_instructions=40_000, warm_instructions=10_000)


class TestAllWorkloads:
    @pytest.mark.parametrize("workload", workload_names() + ["mix"])
    def test_baseline_runs(self, workload):
        n_cores = 4 if workload == "mix" else 1
        result = quick_run(workload, "none", n_cores=n_cores, **TINY)
        # Measured window = trace length minus warm-up (per core).
        expected = (TINY["n_instructions"] - TINY["warm_instructions"]) * n_cores
        assert result.total_instructions >= 0.9 * expected
        assert result.aggregate_ipc > 0
        assert 0 <= result.l1i_miss_rate < 0.5


class TestAllPrefetchers:
    @pytest.mark.parametrize("prefetcher", PREFETCHER_NAMES)
    def test_prefetcher_runs_single_core(self, prefetcher):
        result = quick_run("web", prefetcher, **TINY)
        assert result.aggregate_ipc > 0
        if prefetcher != "none":
            assert result.prefetch_issued > 0

    @pytest.mark.parametrize("prefetcher", ["next-4-line", "discontinuity"])
    @pytest.mark.parametrize("policy", ["normal", "bypass"])
    def test_policies_on_cmp(self, prefetcher, policy):
        result = quick_run("web", prefetcher, n_cores=4, l2_policy=policy, **TINY)
        assert result.prefetch_issued > 0
        if policy == "bypass":
            promoted = sum(core.prefetch.promoted_to_l2 for core in result.cores)
            assert promoted >= 0  # path exercised without error


class TestPrefetchersHelp:
    def test_discontinuity_reduces_misses_everywhere(self):
        for workload in workload_names():
            base = quick_run(workload, "none", seed=7, **TINY)
            pf = quick_run(workload, "discontinuity", seed=7, l2_policy="bypass", **TINY)
            assert pf.l1i_miss_rate < base.l1i_miss_rate * 0.6, workload

    def test_aggressiveness_ordering_of_residual_misses(self):
        residuals = {}
        for scheme in ("next-line-on-miss", "next-line-tagged", "next-4-line", "discontinuity"):
            result = quick_run("db", scheme, seed=7, l2_policy="bypass", **TINY)
            residuals[scheme] = result.l1i_miss_rate
        assert residuals["next-line-on-miss"] > residuals["next-line-tagged"]
        assert residuals["next-line-tagged"] > residuals["next-4-line"]
        assert residuals["next-4-line"] > residuals["discontinuity"]


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = quick_run("db", "discontinuity", seed=99, **TINY)
        b = quick_run("db", "discontinuity", seed=99, **TINY)
        assert a.aggregate_ipc == b.aggregate_ipc
        assert a.l1i_miss_rate == b.l1i_miss_rate
        assert a.prefetch_issued == b.prefetch_issued

    def test_different_seed_different_results(self):
        a = quick_run("db", "discontinuity", seed=99, **TINY)
        b = quick_run("db", "discontinuity", seed=100, **TINY)
        assert a.aggregate_ipc != b.aggregate_ipc

    def test_cmp_determinism(self):
        a = quick_run("mix", "discontinuity", n_cores=4, seed=5, **TINY)
        b = quick_run("mix", "discontinuity", n_cores=4, seed=5, **TINY)
        assert [core.cycles for core in a.cores] == [core.cycles for core in b.cores]
