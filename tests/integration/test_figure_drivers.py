"""Structural tests of every catalog experiment.

Run at an ultra-tiny scale: these verify that each declaration produces
well-formed panels (labels, shapes, finite values) and that verdicts are
skipped (not failed) below the declared scales — the *qualitative*
assertions live in the benchmark suite at representative scale.
"""

import math

import pytest

from repro.eval.catalog import CATALOG
from repro.eval.profiles import ExperimentScale
from repro.eval.registry import run_experiment, run_experiment_outcome

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=8_000,
    measure_instructions=30_000,
    cmp_measure_instructions=12_000,
)

#: experiments and their expected panel counts.
EXPECTED_PANELS = {
    "fig01": 1,
    "fig02": 1,
    "fig03": 3,
    "fig04": 2,
    "fig05": 3,
    "fig06": 2,
    "fig07": 2,
    "fig08": 2,
    "fig09": 2,
    "fig10": 2,
    "ablation-filtering": 2,
    "ablation-eviction-counter": 1,
    "ablation-prefetch-ahead": 2,
    "ablation-probe-ahead": 2,
    "ablation-queue-discipline": 1,
    "ablation-table-design": 2,
    "ablation-useless-hint": 2,
    "ablation-inclusion": 2,
    "ablation-replacement": 2,
    "comparison-alternatives": 3,
    "comparison-bandwidth": 1,
    "comparison-budget-matched": 4,
    "comparison-core-scaling": 1,
    "comparison-execution-based": 2,
    "comparison-software-prefetch": 2,
    "replication-check": 2,
    "scenario-microsvc": 2,
    "scenario-interp": 2,
    "scenario-osmix": 2,
}


def test_every_catalog_experiment_is_covered():
    assert set(EXPECTED_PANELS) == set(CATALOG)


def test_panel_counts_match_declarations():
    for name, experiment in CATALOG.items():
        assert len(experiment.panels) == EXPECTED_PANELS[name], name


@pytest.mark.parametrize("name", sorted(EXPECTED_PANELS))
def test_experiment_produces_well_formed_panels(name):
    panels = run_experiment(name, scale=TINY)
    assert len(panels) == EXPECTED_PANELS[name]
    for panel in panels:
        assert panel.row_labels and panel.col_labels
        assert len(panel.values) == len(panel.row_labels)
        for row in panel.values:
            assert len(row) == len(panel.col_labels)
            for value in row:
                assert value >= 0 or math.isnan(value)
        # The table formatter must handle every panel.
        table = panel.format_table()
        assert panel.experiment in table


def test_outcome_skips_expectations_below_declared_scale():
    """At an unregistered ad-hoc scale every verdict is a skip, never a
    spurious fail — paper bands are only meaningful at real scales."""
    outcome = run_experiment_outcome("fig01", scale=TINY)
    assert outcome.name == "fig01"
    assert len(outcome.verdicts) == len(CATALOG["fig01"].expectations)
    assert outcome.verdicts, "fig01 must declare expectations"
    assert all(verdict.status == "skip" for verdict in outcome.verdicts)
    assert outcome.passed


def test_experiments_reuse_cached_runs():
    """Figures 5 and 6 share one grid; after fig05 has run, fig06 should
    complete from cache almost instantly."""
    import time

    run_experiment("fig05", scale=TINY)
    started = time.time()
    run_experiment("fig06", scale=TINY)
    assert time.time() - started < 5.0
