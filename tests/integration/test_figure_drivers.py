"""Structural tests of every experiment driver.

Run at an ultra-tiny scale: these verify that each driver produces
well-formed panels (labels, shapes, finite values) — the *qualitative*
assertions live in the benchmark suite at representative scale.
"""

import math

import pytest

from repro.eval.profiles import ExperimentScale
from repro.eval.registry import EXPERIMENTS, run_experiment

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=8_000,
    measure_instructions=30_000,
    cmp_measure_instructions=12_000,
)

#: drivers and their expected panel counts.
EXPECTED_PANELS = {
    "fig01": 1,
    "fig02": 1,
    "fig03": 3,
    "fig04": 2,
    "fig05": 3,
    "fig06": 2,
    "fig07": 2,
    "fig08": 2,
    "fig09": 2,
    "fig10": 2,
    "ablation-filtering": 2,
    "ablation-eviction-counter": 1,
    "ablation-prefetch-ahead": 2,
    "ablation-probe-ahead": 2,
    "ablation-queue-discipline": 1,
    "ablation-table-design": 2,
    "ablation-useless-hint": 2,
    "ablation-inclusion": 2,
    "ablation-replacement": 2,
    "comparison-alternatives": 3,
    "comparison-bandwidth": 1,
    "comparison-core-scaling": 1,
    "comparison-execution-based": 2,
    "comparison-software-prefetch": 2,
    "replication-check": 2,
}


def test_every_registered_experiment_is_covered():
    assert set(EXPECTED_PANELS) == set(EXPERIMENTS)


@pytest.mark.parametrize("name", sorted(EXPECTED_PANELS))
def test_driver_produces_well_formed_panels(name):
    panels = run_experiment(name, scale=TINY)
    assert len(panels) == EXPECTED_PANELS[name]
    for panel in panels:
        assert panel.row_labels and panel.col_labels
        assert len(panel.values) == len(panel.row_labels)
        for row in panel.values:
            assert len(row) == len(panel.col_labels)
            for value in row:
                assert value >= 0 or math.isnan(value)
        # The table formatter must handle every panel.
        table = panel.format_table()
        assert panel.experiment in table


def test_drivers_reuse_cached_runs():
    """Figures 5 and 6 read the same configurations; after fig05 has run,
    fig06 should complete from cache almost instantly."""
    import time

    run_experiment("fig05", scale=TINY)
    started = time.time()
    run_experiment("fig06", scale=TINY)
    assert time.time() - started < 5.0
