"""Unit tests for the branch-prediction substrate (repro.branch)."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.ras import ReturnAddressStack


class TestGshare:
    def test_initially_weakly_not_taken(self):
        # Line-granularity prior: most lines exit sequentially.
        gshare = GsharePredictor(entries=64, history_bits=4)
        assert not gshare.predict(10)

    def test_learns_not_taken(self):
        gshare = GsharePredictor(entries=64, history_bits=0)
        for _ in range(3):
            gshare.update(10, taken=False)
        assert not gshare.predict(10)

    def test_learns_taken(self):
        gshare = GsharePredictor(entries=64, history_bits=0)
        assert not gshare.predict(10)
        for _ in range(2):
            gshare.update(10, taken=True)
        assert gshare.predict(10)

    def test_history_disambiguates_patterns(self):
        # Alternating taken/not-taken at one line: with history the
        # predictor separates the two contexts.
        gshare = GsharePredictor(entries=256, history_bits=4)
        for _ in range(40):
            gshare.update(10, taken=True)
            gshare.update(10, taken=False)
        # Prediction in each context follows the pattern.
        history = gshare.history
        first = gshare.predict(10, history)
        second_history = gshare.speculate_history(history, first)
        second = gshare.predict(10, second_history)
        assert first != second

    def test_history_wraps_to_mask(self):
        gshare = GsharePredictor(entries=64, history_bits=2)
        for _ in range(10):
            gshare.update(1, taken=True)
        assert gshare.history <= 0b11

    def test_counters_saturate(self):
        gshare = GsharePredictor(entries=16, history_bits=0)
        for _ in range(10):
            gshare.update(3, taken=True)
        for _ in range(3):
            gshare.update(3, taken=False)
        assert not gshare.predict(3)

    def test_reset(self):
        gshare = GsharePredictor(entries=16, history_bits=2)
        for _ in range(4):
            gshare.update(1, taken=True)
        gshare.reset()
        assert gshare.history == 0
        assert not gshare.predict(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            GsharePredictor(entries=100)
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=-1)


class TestBtb:
    def test_untrained_returns_none(self):
        btb = BranchTargetBuffer(entries=16)
        assert btb.predict(5) is None

    def test_update_and_predict(self):
        btb = BranchTargetBuffer(entries=16)
        btb.update(5, 500)
        assert btb.predict(5) == 500

    def test_tagless_aliasing(self):
        # Lines 5 and 21 share the entry in a 16-entry BTB: the later
        # update wins and the earlier line sees the aliased target.
        btb = BranchTargetBuffer(entries=16)
        btb.update(5, 500)
        btb.update(21, 900)
        assert btb.predict(5) == 900

    def test_occupancy(self):
        btb = BranchTargetBuffer(entries=16)
        btb.update(1, 10)
        btb.update(2, 20)
        assert btb.occupancy() == 2

    def test_reset(self):
        btb = BranchTargetBuffer(entries=16)
        btb.update(1, 10)
        btb.reset()
        assert btb.predict(1) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=12)


class TestRas:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(capacity=4)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10
        assert ras.pop() is None

    def test_overflow_discards_oldest(self):
        ras = ReturnAddressStack(capacity=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert len(ras) == 2
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(capacity=4)
        ras.push(7)
        assert ras.peek() == 7
        assert len(ras) == 1

    def test_reset(self):
        ras = ReturnAddressStack(capacity=4)
        ras.push(1)
        ras.reset()
        assert len(ras) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(capacity=0)
