"""Unit tests for the persistent on-disk result cache."""

import json

import pytest

from repro.eval import diskcache
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import run_system
from repro.eval.runspec import RunSpec

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=4_000,
    measure_instructions=12_000,
    cmp_measure_instructions=6_000,
)


@pytest.fixture(scope="module")
def tiny_run():
    """One real (spec, result) pair, simulated once for the whole module."""
    spec = RunSpec.create("db", 1, "discontinuity", scale=TINY, l2_policy="bypass")
    result = run_system(**spec.run_kwargs())
    return spec, result


def assert_results_identical(a, b):
    """Exact (repr-level) equality of every metric the figures read."""
    assert a.aggregate_ipc == b.aggregate_ipc
    assert a.l1i_miss_rate == b.l1i_miss_rate
    assert a.l2i_miss_rate == b.l2i_miss_rate
    assert a.l2d_miss_rate == b.l2d_miss_rate
    assert a.prefetch_accuracy == b.prefetch_accuracy
    assert a.l1i_coverage == b.l1i_coverage
    for core_a, core_b in zip(a.cores, b.cores):
        assert core_a.cycles == core_b.cycles
        assert core_a.instructions == core_b.instructions
        assert core_a.l1i_breakdown.counts() == core_b.l1i_breakdown.counts()
        assert core_a.l2i_breakdown.counts() == core_b.l2i_breakdown.counts()
    assert a.link.stats.requests == b.link.stats.requests
    assert a.link.stats.busy_cycles == b.link.stats.busy_cycles


def test_store_then_load_is_bit_identical(tiny_run):
    spec, result = tiny_run
    assert diskcache.store(spec, result)
    loaded = diskcache.load(spec)
    assert loaded is not None
    assert_results_identical(loaded, result)


def test_payload_round_trip_without_disk(tiny_run):
    spec, result = tiny_run
    payload = diskcache.result_to_payload(result, spec)
    rebuilt = diskcache.payload_to_result(json.loads(json.dumps(payload)))
    assert_results_identical(rebuilt, result)
    assert payload["spec_hash"] == spec.content_hash()


def test_schema_bump_invalidates(tiny_run, monkeypatch):
    spec, result = tiny_run
    assert diskcache.store(spec, result)
    assert diskcache.load(spec) is not None
    monkeypatch.setattr(diskcache, "SCHEMA_VERSION", diskcache.SCHEMA_VERSION + 1)
    assert diskcache.load(spec) is None


def test_spec_change_selects_a_different_file(tiny_run):
    spec, result = tiny_run
    other = RunSpec.create("db", 1, "discontinuity", scale=TINY, l2_policy="bypass", seed=spec.seed + 1)
    assert diskcache.path_for(other) != diskcache.path_for(spec)
    diskcache.store(spec, result)
    assert diskcache.load(other) is None


def test_corrupt_entry_is_a_miss_not_an_error(tiny_run):
    spec, result = tiny_run
    assert diskcache.store(spec, result)
    path = diskcache.path_for(spec)
    path.write_text("{not json")
    assert diskcache.load(spec) is None
    path.write_text('{"schema": 1, "cores": "wrong-shape"}')
    assert diskcache.load(spec) is None


def test_disable_env_turns_the_cache_off(tiny_run, monkeypatch):
    spec, result = tiny_run
    for value in ("0", "off", "false", "no"):
        monkeypatch.setenv(diskcache.DISABLE_ENV, value)
        assert not diskcache.enabled()
        assert not diskcache.store(spec, result)
        assert diskcache.load(spec) is None
    monkeypatch.setenv(diskcache.DISABLE_ENV, "1")
    assert diskcache.enabled()


def test_clear_and_entry_count(tiny_run):
    spec, result = tiny_run
    assert diskcache.entry_count() == 0
    diskcache.store(spec, result)
    assert diskcache.entry_count() == 1
    assert diskcache.clear() == 1
    assert diskcache.entry_count() == 0


def test_clear_removes_orphaned_tmp_files(tiny_run):
    spec, result = tiny_run
    diskcache.store(spec, result)
    orphan = diskcache.cache_dir() / "deadbeef.tmp"
    orphan.write_text("partial write from a crashed process")
    assert diskcache.clear() == 2  # the entry and the orphan
    assert not orphan.exists()
    assert diskcache.entry_count() == 0


def test_store_sweeps_stale_tmp_but_spares_live_writers(tiny_run):
    import os

    spec, result = tiny_run
    directory = diskcache.cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    stale = directory / "stale.tmp"
    stale.write_text("orphan")
    ancient = 1_000_000_000  # well past TMP_MAX_AGE_SECONDS ago
    os.utime(stale, (ancient, ancient))
    fresh = directory / "fresh.tmp"
    fresh.write_text("a concurrent writer's live file")

    assert diskcache.store(spec, result)
    assert not stale.exists()
    assert fresh.exists()


def test_sweep_stale_tmp_age_zero_removes_everything(tiny_run):
    directory = diskcache.cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "one.tmp").write_text("x")
    (directory / "two.tmp").write_text("y")
    assert diskcache.sweep_stale_tmp(max_age_seconds=0) == 2
    assert diskcache.sweep_stale_tmp(max_age_seconds=0) == 0


def test_entries_are_world_readable(tiny_run):
    spec, result = tiny_run
    assert diskcache.store(spec, result)
    mode = diskcache.path_for(spec).stat().st_mode & 0o777
    assert mode == diskcache.ENTRY_MODE  # mkstemp's 0600 would hide the
    # entry from other users of a shared cache directory


def test_unwritable_cache_dir_degrades_gracefully(tiny_run, tmp_path, monkeypatch):
    spec, result = tiny_run
    blocker = tmp_path / "blocked"
    blocker.write_text("a file, not a directory")
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(blocker / "cache"))
    assert not diskcache.store(spec, result)
    assert diskcache.load(spec) is None


class _NumpyLikeScalar:
    """Stand-in for np.int64/np.float64: not JSON-safe, exposes .item()."""

    def __init__(self, value):
        self.value = value

    def item(self):
        return self.value


def test_payload_coerces_numpy_like_scalars(tiny_run):
    """A backend leaking NumPy scalars into CoreStats must still yield a
    plain-data, json.dumps-able payload (R4's runtime half)."""
    import copy

    spec, result = tiny_run
    tainted = copy.deepcopy(result)
    core = tainted.cores[0]
    core.instructions = _NumpyLikeScalar(core.instructions)
    core.cycles = _NumpyLikeScalar(core.cycles)
    core.prefetch.issued = _NumpyLikeScalar(core.prefetch.issued)

    payload = diskcache.result_to_payload(tainted, spec)
    encoded = json.dumps(payload)  # would raise TypeError without coercion
    data = payload["cores"][0]
    assert type(data["instructions"]) is int
    assert type(data["cycles"]) is float
    assert type(data["prefetch"]["issued"]) is int
    rebuilt = diskcache.payload_to_result(json.loads(encoded))
    assert rebuilt.cores[0].instructions == result.cores[0].instructions
    assert repr(rebuilt.cores[0].cycles) == repr(result.cores[0].cycles)


def test_plain_number_passthrough():
    """Plain ints/floats (and non-numeric values) pass through untouched."""
    assert diskcache._plain_number(7) == 7
    assert type(diskcache._plain_number(7)) is int
    value = 0.30000000000000004
    assert repr(diskcache._plain_number(value)) == repr(value)
    assert diskcache._plain_number(True) is True
    assert diskcache._plain_number(_NumpyLikeScalar(11)) == 11


class _NumbaLikeScalar:
    """Stand-in for a numba-boxed scalar (numba.int64(x) returns a numpy
    scalar): rejects json.dumps, exposes .item() like every numpy scalar."""

    def __init__(self, value):
        self._value = value

    def item(self):
        return self._value


def test_payload_coerces_numba_like_scalars(tiny_run):
    """Stats computed by a jitted helper (numba-boxed scalars) must also
    coerce to plain data at the executor boundary (R4's runtime half)."""
    import copy

    spec, result = tiny_run
    tainted = copy.deepcopy(result)
    core = tainted.cores[0]
    core.instructions = _NumbaLikeScalar(core.instructions)
    core.cycles = _NumbaLikeScalar(core.cycles)
    core.prefetch.useful = _NumbaLikeScalar(core.prefetch.useful)

    payload = diskcache.result_to_payload(tainted, spec)
    encoded = json.dumps(payload)  # would raise TypeError without coercion
    data = payload["cores"][0]
    assert type(data["instructions"]) is int
    assert type(data["cycles"]) is float
    assert type(data["prefetch"]["useful"]) is int
    rebuilt = diskcache.payload_to_result(json.loads(encoded))
    assert rebuilt.cores[0].instructions == result.cores[0].instructions
    assert repr(rebuilt.cores[0].cycles) == repr(result.cores[0].cycles)
