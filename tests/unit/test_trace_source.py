"""The pluggable trace-source registry: name → trace resolution.

The load-bearing property is bit-identity: routing the synthetic
profiles through :mod:`repro.trace.source` must produce exactly the
traces the pre-registry code paths produced, or every golden hash and
stored compiled trace silently goes stale.
"""

from __future__ import annotations

import pytest

from repro.eval.runspec import RunSpec
from repro.trace import source
from repro.trace.ingest import ingest_file
from repro.trace.synth.mix import mixed_traces
from repro.trace.synth.workloads import (
    SCENARIO_WORKLOADS,
    WORKLOADS,
    generate_trace,
    get_profile,
    synth_workload_names,
)

N = 5_000


@pytest.fixture
def external_loop(tmp_path, monkeypatch):
    """One ingested external trace named 'loop', in an isolated directory."""
    monkeypatch.setenv("REPRO_EXTERNAL_TRACES", str(tmp_path / "external"))
    stream = tmp_path / "loop.txt"
    stream.write_text(
        "\n".join(hex(0x1000 + 4 * (i % 64)) for i in range(640)) + "\n"
    )
    ingest_file(stream)
    return "loop"


class TestRegistry:
    def test_source_names_cover_every_profile_plus_mix(self):
        assert source.source_names() == synth_workload_names()[:4] + ["mix"] + list(
            SCENARIO_WORKLOADS
        )

    def test_every_profile_is_registered(self):
        for name in list(WORKLOADS) + list(SCENARIO_WORKLOADS):
            assert isinstance(source.resolve(name), source.SynthSource)

    def test_scenario_profiles_exist_and_generate(self):
        for name in SCENARIO_WORKLOADS:
            assert get_profile(name).name == name
            traces = source.traces_for(name, 1, 7, N)
            assert traces[0].total_instructions >= N

    def test_display_names(self):
        assert source.source_display_name("db") == "DB"
        assert source.source_display_name("mix") == "Mixed"
        assert source.source_display_name("microsvc") == "MicroSvc"
        assert source.source_display_name("external:foo") == "foo"


class TestBitIdentity:
    def test_synth_source_matches_direct_generation(self):
        via_source = source.traces_for("db", 2, 1337, N)
        for core, trace in enumerate(via_source):
            direct = generate_trace("db", 1337, N, core=core)
            assert trace.name == direct.name
            assert trace.seed == direct.seed
            assert list(trace.events) == list(direct.events)

    def test_mix_source_matches_mixed_traces(self):
        via_source = source.traces_for("mix", 4, 1337, N)
        direct = mixed_traces(1337, N, ())
        assert [list(t.events) for t in via_source] == [
            list(t.events) for t in direct
        ]

    def test_mix_cycles_base_workloads_off_four_cores(self):
        traces = source.traces_for("mix", 2, 1337, N)
        direct = mixed_traces(1337, N, ["db", "tpcw"])
        assert [list(t.events) for t in traces] == [list(t.events) for t in direct]


class TestResolution:
    def test_unknown_workload_lists_available_sources(self):
        with pytest.raises(ValueError, match="available sources.*'db'"):
            source.resolve("nope")

    def test_unknown_external_names_the_ingest_command(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXTERNAL_TRACES", str(tmp_path / "empty"))
        with pytest.raises(ValueError, match="repro-trace ingest"):
            source.resolve("external:ghost")

    def test_external_resolves_after_ingest(self, external_loop):
        resolved = source.resolve("external:loop")
        assert isinstance(resolved, source.ExternalSource)
        assert resolved.external_name == "loop"
        assert "external:loop" in source.available_sources()

    def test_external_traces_meet_budget_every_seed(self, external_loop):
        for seed in (1, 1337):
            traces = source.traces_for("external:loop", 2, seed, 2_000)
            assert len(traces) == 2
            for trace in traces:
                assert trace.total_instructions >= 2_000


class TestEagerRunSpecValidation:
    def test_unknown_workload_fails_at_create(self):
        with pytest.raises(ValueError, match="available sources"):
            RunSpec.create("nope", 1)

    def test_uningested_external_fails_at_create(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXTERNAL_TRACES", str(tmp_path / "empty"))
        with pytest.raises(ValueError, match="not ingested"):
            RunSpec.create("external:ghost", 1)

    def test_registered_workloads_pass(self):
        for workload in source.source_names():
            assert RunSpec.create(workload, 1).workload == workload

    def test_external_passes_once_ingested(self, external_loop):
        spec = RunSpec.create("external:loop", 2)
        assert spec.workload == "external:loop"
        # the workload rides canonical_dict/content_hash as a plain string
        assert spec.canonical_dict()["workload"] == "external:loop"
