"""R2 (cache-safety): the behavior manifest pins result-affecting modules
to the disk cache's ``SCHEMA_VERSION``.

Includes the schema-invalidation regression sequence from the issue: tamper
the manifest, assert ``repro.lint`` fails, bump ``SCHEMA_VERSION``, assert
it passes.
"""

from __future__ import annotations

import json

import pytest

from repro.lint import manifest as manifest_mod
from repro.lint.engine import LintError, Project
from repro.lint.rules import BehaviorManifestRule
from tests.unit.conftest import write_tree_file

ENGINE_V2 = """
    def step(state):
        return state + 2
    """

DISKCACHE_SCHEMA_2 = """
    SCHEMA_VERSION = 2


    def _config_to_dict(config):
        return {"n_cores": config.n_cores}


    def _core_to_dict(core):
        return {"instructions": core.instructions}


    def _link_to_dict(link):
        return {"requests": link.requests}


    def result_to_payload(result, spec=None):
        return {
            "schema": SCHEMA_VERSION,
            "config": _config_to_dict(result.config),
            "cores": [_core_to_dict(core) for core in result.cores],
            "link": _link_to_dict(result.link),
        }
    """


def test_fresh_manifest_passes(lint_tree):
    assert BehaviorManifestRule().check(lint_tree()) == []


def test_missing_manifest_is_a_violation(lint_tree):
    project = lint_tree(with_manifest=False)
    violations = BehaviorManifestRule().check(project)
    assert len(violations) == 1
    assert "missing" in violations[0].message
    assert "--update-manifest" in violations[0].hint


def test_engine_edit_without_schema_bump_fails(lint_tree):
    project = lint_tree()
    project = write_tree_file(project.root, "src/repro/core/engine.py", ENGINE_V2)
    violations = BehaviorManifestRule().check(project)
    assert len(violations) == 1
    assert violations[0].path == "src/repro/core/engine.py"
    assert "SCHEMA_VERSION" in violations[0].message
    assert "bump SCHEMA_VERSION" in violations[0].hint


def test_engine_edit_with_schema_bump_passes(lint_tree):
    project = lint_tree()
    project = write_tree_file(project.root, "src/repro/core/engine.py", ENGINE_V2)
    project = write_tree_file(
        project.root, "src/repro/eval/diskcache.py", DISKCACHE_SCHEMA_2
    )
    assert BehaviorManifestRule().check(project) == []


def test_manifest_tamper_then_schema_bump_regression(lint_tree):
    """The issue's acceptance sequence, end to end."""
    project = lint_tree()
    manifest_path = project.path(manifest_mod.MANIFEST_PATH)

    # Tamper: pretend engine.py was hashed under different content (exactly
    # what an unrecorded behavior edit looks like to the rule).
    data = json.loads(manifest_path.read_text())
    data["files"]["src/repro/core/engine.py"] = "0" * 64
    manifest_path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    project = Project(project.root)
    violations = BehaviorManifestRule().check(project)
    assert violations, "tampered manifest must fail lint"
    assert any("SCHEMA_VERSION" in violation.message for violation in violations)

    # Bump SCHEMA_VERSION: the change is now an acknowledged invalidation.
    project = write_tree_file(
        project.root, "src/repro/eval/diskcache.py", DISKCACHE_SCHEMA_2
    )
    assert BehaviorManifestRule().check(project) == []


def test_deleted_module_is_reported(lint_tree):
    project = lint_tree()
    project.path("src/repro/core/engine.py").unlink()
    project = Project(project.root)
    violations = BehaviorManifestRule().check(project)
    assert len(violations) == 1
    assert "gone" in violations[0].message


def test_new_behavior_module_is_reported(lint_tree):
    project = lint_tree()
    project = write_tree_file(
        project.root, "src/repro/core/extra.py", "def noop():\n    return None\n"
    )
    violations = BehaviorManifestRule().check(project)
    assert len(violations) == 1
    assert violations[0].path == "src/repro/core/extra.py"
    assert "not in the behavior manifest" in violations[0].message


def test_update_manifest_repairs_drift(lint_tree):
    project = lint_tree()
    project = write_tree_file(project.root, "src/repro/core/engine.py", ENGINE_V2)
    assert BehaviorManifestRule().check(project) != []
    manifest_mod.update_manifest(project)
    assert BehaviorManifestRule().check(Project(project.root)) == []


def test_schema_version_must_be_a_literal_int(lint_tree):
    project = lint_tree(
        {"src/repro/eval/diskcache.py": "SCHEMA_VERSION = 1 + 1\n"},
        with_manifest=False,
    )
    with pytest.raises(LintError, match="literal int"):
        manifest_mod.current_schema_version(project)


def test_schema_version_must_exist(lint_tree):
    project = lint_tree(
        {"src/repro/eval/diskcache.py": "OTHER = 3\n"}, with_manifest=False
    )
    with pytest.raises(LintError, match="SCHEMA_VERSION"):
        manifest_mod.current_schema_version(project)


def test_clock_shim_is_excluded_from_hashes(lint_tree):
    project = lint_tree()
    project = write_tree_file(
        project.root, "src/repro/util/clock.py", "def now():\n    return 0.0\n"
    )
    # A clock edit is not a behavior change; no schema bump demanded.
    assert BehaviorManifestRule().check(project) == []

# --------------------------------------------------------------------- #
# Trace-store artifact (TRACE_SCHEMA_VERSION)
# --------------------------------------------------------------------- #

TRACE_COMPILED_V1 = """
    TRACE_SCHEMA_VERSION = 1


    def compile_trace(events):
        return list(events)
    """

TRACE_COMPILED_V2 = TRACE_COMPILED_V1.replace(
    "TRACE_SCHEMA_VERSION = 1", "TRACE_SCHEMA_VERSION = 2"
)

TRACE_STREAM = """
    def iter_line_visits(events, line_size):
        for event in events:
            yield event
    """

TRACE_STREAM_V2 = TRACE_STREAM.replace("yield event", "yield (event,)")

TRACE_OVERRIDES = {
    "src/repro/trace/compiled.py": TRACE_COMPILED_V1,
    "src/repro/trace/stream.py": TRACE_STREAM,
}


def test_trace_artifact_is_inactive_without_its_schema_module(lint_tree):
    project = lint_tree()
    assert manifest_mod.active_artifacts(project) == [manifest_mod.ARTIFACTS[0]]
    recorded = manifest_mod.load_manifest(project)
    assert "trace_schema_version" not in recorded


def test_trace_artifact_records_in_manifest_when_present(lint_tree):
    project = lint_tree(TRACE_OVERRIDES)
    assert len(manifest_mod.active_artifacts(project)) == 2
    recorded = manifest_mod.load_manifest(project)
    assert recorded["trace_schema_version"] == 1
    assert "src/repro/trace/stream.py" in recorded["trace_files"]
    # Trace coverage is a subset of the full behavior surface.
    assert set(recorded["trace_files"]) <= set(recorded["files"])
    assert BehaviorManifestRule().check(project) == []


def test_trace_edit_reports_once_under_the_result_cache_first(lint_tree):
    project = lint_tree(TRACE_OVERRIDES)
    project = write_tree_file(
        project.root, "src/repro/trace/stream.py", TRACE_STREAM_V2
    )
    violations = BehaviorManifestRule().check(project)
    assert len(violations) == 1  # one violation per drifted path, not per artifact
    assert violations[0].path == "src/repro/trace/stream.py"
    assert "SCHEMA_VERSION" in violations[0].message


def test_disk_schema_bump_alone_does_not_silence_trace_drift(lint_tree):
    project = lint_tree(TRACE_OVERRIDES)
    project = write_tree_file(
        project.root, "src/repro/trace/stream.py", TRACE_STREAM_V2
    )
    project = write_tree_file(
        project.root, "src/repro/eval/diskcache.py", DISKCACHE_SCHEMA_2
    )
    violations = BehaviorManifestRule().check(project)
    assert len(violations) == 1
    assert violations[0].path == "src/repro/trace/stream.py"
    assert "TRACE_SCHEMA_VERSION" in violations[0].message
    assert "trace-store" in violations[0].message
    assert "bump TRACE_SCHEMA_VERSION" in violations[0].hint


def test_both_bumps_silence_trace_drift(lint_tree):
    project = lint_tree(TRACE_OVERRIDES)
    project = write_tree_file(
        project.root, "src/repro/trace/stream.py", TRACE_STREAM_V2
    )
    project = write_tree_file(
        project.root, "src/repro/eval/diskcache.py", DISKCACHE_SCHEMA_2
    )
    project = write_tree_file(
        project.root, "src/repro/trace/compiled.py", TRACE_COMPILED_V2
    )
    assert BehaviorManifestRule().check(project) == []


def test_trace_schema_bump_alone_still_reports_disk_cache_drift(lint_tree):
    project = lint_tree(TRACE_OVERRIDES)
    project = write_tree_file(
        project.root, "src/repro/trace/stream.py", TRACE_STREAM_V2
    )
    project = write_tree_file(
        project.root, "src/repro/trace/compiled.py", TRACE_COMPILED_V2
    )
    violations = BehaviorManifestRule().check(project)
    # compiled.py itself changed too (the bump) — both files drift under
    # the still-frozen disk-cache artifact.
    assert {violation.path for violation in violations} == {
        "src/repro/trace/stream.py",
        "src/repro/trace/compiled.py",
    }
    assert all("SCHEMA_VERSION" in v.message for v in violations)
