"""Unit tests for the top-level convenience API (repro.api)."""

import repro
from repro.api import make_system, make_traces, make_workload_trace, quick_run
from repro.prefetch.base import Prefetcher


class TestDiscovery:
    def test_available_workloads(self):
        assert repro.available_workloads() == [
            "db",
            "tpcw",
            "japp",
            "web",
            "mix",
            "microsvc",
            "interp",
            "osmix",
        ]

    def test_available_prefetchers_include_paper_set(self):
        names = repro.available_prefetchers()
        assert "discontinuity" in names
        assert "next-4-line" in names
        assert "none" in names

    def test_make_prefetcher(self):
        assert isinstance(repro.make_prefetcher("discontinuity"), Prefetcher)

    def test_version_exported(self):
        assert repro.__version__


class TestMakeTraces:
    def test_single_core(self):
        traces = make_traces("web", 1, seed=1, n_instructions=5_000)
        assert len(traces) == 1
        assert traces[0].total_instructions >= 5_000

    def test_homogeneous_cmp_cores_decorrelated(self):
        traces = make_traces("web", 2, seed=1, n_instructions=3_000)
        assert len(traces) == 2
        assert list(traces[0].events) != list(traces[1].events)

    def test_homogeneous_cmp_cores_share_code_region(self):
        # Long enough for several transactions per core, so the Zipf-hot
        # service functions are visited by both cores.
        traces = make_traces("web", 2, seed=1, n_instructions=60_000)
        lines_a = {event.addr >> 6 for event in traces[0].events}
        lines_b = {event.addr >> 6 for event in traces[1].events}
        # Same program (same binary): substantial code overlap — whereas
        # two different programs (the mix) would overlap not at all.
        overlap = len(lines_a & lines_b) / min(len(lines_a), len(lines_b))
        assert overlap > 0.2

    def test_mix_is_four_distinct_programs(self):
        traces = make_traces("mix", 4, seed=1, n_instructions=2_000)
        assert [t.name for t in traces] == ["db", "tpcw", "japp", "web"]

    def test_mix_other_core_counts(self):
        traces = make_traces("mix", 2, seed=1, n_instructions=2_000)
        assert len(traces) == 2


class TestQuickRun:
    def test_quick_run_baseline(self):
        result = quick_run("web", "none", n_instructions=60_000, warm_instructions=15_000)
        assert result.total_instructions > 0
        assert result.aggregate_ipc > 0

    def test_quick_run_with_prefetcher_and_policy(self):
        result = quick_run(
            "web",
            "discontinuity",
            n_instructions=60_000,
            warm_instructions=15_000,
            l2_policy="bypass",
        )
        assert result.prefetch_issued > 0

    def test_make_system_overrides_forwarded(self):
        system = make_system(
            "web",
            "none",
            n_instructions=10_000,
            warm_instructions=1_000,
            offchip_gbps=5.0,
        )
        assert system.config.offchip_gbps == 5.0

    def test_make_workload_trace(self):
        trace = make_workload_trace("db", seed=3, n_instructions=5_000)
        assert trace.name == "db"
        assert trace.total_instructions >= 5_000
