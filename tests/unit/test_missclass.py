"""Unit tests for MissBreakdown (repro.caches.missclass)."""

import pytest

from repro.caches.missclass import MissBreakdown
from repro.isa.classify import MissClass
from repro.isa.kinds import TransitionKind


class TestMissBreakdown:
    def test_record_and_count(self):
        breakdown = MissBreakdown()
        breakdown.record(int(TransitionKind.CALL))
        breakdown.record(int(TransitionKind.CALL))
        breakdown.record(int(TransitionKind.SEQUENTIAL))
        assert breakdown.count(TransitionKind.CALL) == 2
        assert breakdown.count(TransitionKind.SEQUENTIAL) == 1
        assert breakdown.total == 3

    def test_by_kind_includes_zeros(self):
        breakdown = MissBreakdown()
        by_kind = breakdown.by_kind()
        assert set(by_kind) == set(TransitionKind)
        assert all(count == 0 for count in by_kind.values())

    def test_by_class_aggregation(self):
        breakdown = MissBreakdown()
        breakdown.record(int(TransitionKind.COND_TAKEN_FWD))
        breakdown.record(int(TransitionKind.UNCOND_BRANCH))
        breakdown.record(int(TransitionKind.RETURN))
        breakdown.record(int(TransitionKind.SEQUENTIAL))
        by_class = breakdown.by_class()
        assert by_class[MissClass.BRANCH] == 2
        assert by_class[MissClass.FUNCTION] == 1
        assert by_class[MissClass.SEQUENTIAL] == 1
        assert by_class[MissClass.TRAP] == 0

    def test_fractions_sum_to_one(self):
        breakdown = MissBreakdown()
        for kind in (TransitionKind.CALL, TransitionKind.SEQUENTIAL, TransitionKind.JUMP):
            breakdown.record(int(kind))
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert all(v == 0.0 for v in MissBreakdown().fractions().values())

    def test_reset(self):
        breakdown = MissBreakdown()
        breakdown.record(int(TransitionKind.CALL))
        breakdown.reset()
        assert breakdown.total == 0

    def test_merged_with(self):
        a = MissBreakdown()
        b = MissBreakdown()
        a.record(int(TransitionKind.CALL))
        b.record(int(TransitionKind.CALL))
        b.record(int(TransitionKind.TRAP))
        merged = a.merged_with([b])
        assert merged.count(TransitionKind.CALL) == 2
        assert merged.count(TransitionKind.TRAP) == 1
        # Originals untouched.
        assert a.total == 1
        assert b.total == 2

    def test_format_table_mentions_labels(self):
        breakdown = MissBreakdown()
        breakdown.record(int(TransitionKind.COND_TAKEN_FWD))
        table = breakdown.format_table()
        assert "Cond branch (tf)" in table
        assert "100.0%" in table
