"""Backend equivalence: ``vectorized`` and ``jit`` must be bit-identical
to ``reference``.

The vectorized engine wins its speed through batch decoding and flat-span
interpretation, the jit engine through compiling the per-visit scalar
semantics to native code — but the repo's contract is that a backend is an
*execution strategy*, never a semantic: every stat, every cycle count,
every eviction order must match the reference engine exactly (which is why
the backend is excluded from the result-cache key, and why the golden
spec-parity hashes are pinned across backends).

This suite sweeps every registered prefetcher × {1, 4} cores ×
{normal, bypass} L2 policy × both fast backends at smoke scale and
compares the **full** :class:`~repro.core.metrics.CoreStats` of every
core — scalars, miss-class breakdowns and prefetch counters — plus the
off-chip link stats, using ``repr`` equality so even a signed-zero or
last-ulp float divergence fails.  It also covers the graceful
degradations: non-LRU replacement (where the fast backends fall back to
reference stepping internally), a missing NumPy (where 'vectorized'
selection falls back to the reference engine with a logged warning), and
an unbuildable jit kernel (same, for 'jit').
"""

from __future__ import annotations

import builtins
import importlib
import logging
import sys

import pytest

from repro.caches.missclass import MissBreakdown
from repro.cmp.system import SystemResult
from repro.core import backends
from repro.core.metrics import CoreStats, PrefetchStats
from repro.eval.profiles import get_scale
from repro.eval.runner import run_system
from repro.prefetch.registry import PREFETCHER_NAMES

SMOKE = get_scale("smoke")


def _stats_dict(stats: CoreStats) -> dict:
    """Every CoreStats field as plain data (breakdowns via ``counts()``)."""
    data = {}
    for name, value in vars(stats).items():
        if isinstance(value, MissBreakdown):
            data[name] = value.counts()
        elif isinstance(value, PrefetchStats):
            data[name] = vars(value).copy()
        else:
            data[name] = value
    return data


def _result_fingerprint(result: SystemResult) -> str:
    """repr of everything a run produced — any bit of divergence shows."""
    parts = [repr(_stats_dict(core)) for core in result.cores]
    link = result.link
    parts.append(
        repr(
            (
                link.occupancy_cycles,
                link.stats.requests,
                link.stats.busy_cycles,
                link.stats.queue_delay_cycles,
            )
        )
    )
    parts.append(repr(result.aggregate_ipc))
    return "\n".join(parts)


def _run(backend: str, **kwargs) -> SystemResult:
    kwargs.setdefault("workload", "db")
    kwargs.setdefault("scale", SMOKE)
    return run_system(engine_backend=backend, **kwargs)


#: both fast backends are checked against reference in every sweep.
FAST_BACKENDS = ("vectorized", "jit")

#: memoized reference fingerprints so each config's reference run happens
#: once even though two fast backends compare against it.
_REFERENCE_MEMO: dict = {}


def _reference_fingerprint(**kwargs) -> str:
    key = repr(sorted(kwargs.items(), key=lambda item: item[0]))
    if key not in _REFERENCE_MEMO:
        _REFERENCE_MEMO[key] = _result_fingerprint(_run("reference", **kwargs))
    return _REFERENCE_MEMO[key]


def assert_backends_match(backend: str = "all", **kwargs) -> None:
    reference = _reference_fingerprint(**kwargs)
    for candidate in FAST_BACKENDS if backend == "all" else (backend,):
        candidate_result = _run(candidate, **kwargs)
        assert _result_fingerprint(candidate_result) == reference, candidate


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("l2_policy", ["normal", "bypass"])
@pytest.mark.parametrize("prefetcher", PREFETCHER_NAMES)
def test_parity_single_core(prefetcher: str, l2_policy: str, backend: str) -> None:
    assert_backends_match(backend, n_cores=1, prefetcher=prefetcher, l2_policy=l2_policy)


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("l2_policy", ["normal", "bypass"])
@pytest.mark.parametrize("prefetcher", PREFETCHER_NAMES)
def test_parity_four_core(prefetcher: str, l2_policy: str, backend: str) -> None:
    assert_backends_match(backend, n_cores=4, prefetcher=prefetcher, l2_policy=l2_policy)


def test_parity_non_lru_replacement() -> None:
    """Non-LRU caches disable the fast paths; results must still match."""
    assert_backends_match(
        n_cores=1,
        prefetcher="discontinuity",
        l2_policy="bypass",
        l1_replacement="fifo",
        l2_replacement="plru",
    )


def test_parity_inclusive_l2() -> None:
    """The L2 back-invalidation hook also disables the fast paths."""
    assert_backends_match(
        n_cores=1, prefetcher="discontinuity", l2_policy="normal", l2_inclusive=True
    )


def test_parity_other_workload() -> None:
    assert_backends_match(
        workload="web", n_cores=1, prefetcher="discontinuity", l2_policy="bypass"
    )


def test_missing_numpy_falls_back_with_warning(monkeypatch, caplog) -> None:
    """Without NumPy, 'vectorized' degrades to the reference engine."""
    real_import = builtins.__import__

    def no_numpy(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("No module named 'numpy'")
        return real_import(name, *args, **kwargs)

    # Force the lazy import in backends to re-run; ``import numpy`` inside
    # the module always routes through ``__import__``, so intercepting it
    # is enough — numpy itself stays importable/cached for other tests.
    monkeypatch.delitem(sys.modules, "repro.core.vectorized", raising=False)
    monkeypatch.setattr(builtins, "__import__", no_numpy)
    monkeypatch.setattr(backends, "_fallback_warned", False)

    with caplog.at_level(logging.WARNING, logger="repro.core.backends"):
        engine_cls = backends._vectorized_engine_cls()
    assert engine_cls is None
    assert any(
        "falling back to the reference backend" in record.message
        for record in caplog.records
    )

    # A second request stays quiet (the warning is once per process) but
    # still reports the backend as unavailable.
    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.core.backends"):
        assert backends._vectorized_engine_cls() is None
    assert not caplog.records

    # Restore the real import and confirm the backend loads again.
    monkeypatch.setattr(builtins, "__import__", real_import)
    importlib.invalidate_caches()
    assert backends._vectorized_engine_cls() is not None


def test_resolve_backend_rejects_unknown() -> None:
    with pytest.raises(ValueError, match="unknown engine backend"):
        backends.resolve_backend("simd")


def test_resolve_backend_env(monkeypatch) -> None:
    monkeypatch.setenv(backends.ENGINE_BACKEND_ENV, "vectorized")
    assert backends.resolve_backend("auto") == "vectorized"
    assert backends.resolve_backend(None) == "vectorized"
    assert backends.resolve_backend("reference") == "reference"
    monkeypatch.delenv(backends.ENGINE_BACKEND_ENV)
    assert backends.resolve_backend("auto") == "reference"


@pytest.mark.parametrize(
    ("request_name", "n_cores", "env", "jit_ok", "expected"),
    [
        # Explicit names win regardless of core count, environment, or
        # whether the jit kernel is buildable (the graceful fallback to
        # reference happens at engine-construction time, not resolution).
        ("reference", 1, None, True, "reference"),
        ("reference", 4, "vectorized", True, "reference"),
        ("vectorized", 1, None, True, "vectorized"),
        ("vectorized", 4, "vectorized", True, "vectorized"),
        ("jit", 1, None, True, "jit"),
        ("jit", 1, None, False, "jit"),
        ("jit", 4, "reference", True, "jit"),
        ("jit", 4, "vectorized", False, "jit"),
        # Single-core auto defers to the environment, default reference;
        # jit availability is never probed here.
        ("auto", 1, None, True, "reference"),
        ("auto", 1, None, False, "reference"),
        ("auto", 1, "reference", True, "reference"),
        ("auto", 1, "vectorized", True, "vectorized"),
        ("auto", 1, "vectorized", False, "vectorized"),
        ("auto", 1, "jit", True, "jit"),
        ("auto", 1, "jit", False, "jit"),
        (None, 1, "vectorized", True, "vectorized"),
        ("", 1, "vectorized", True, "vectorized"),
        # Multi-core auto: an explicit env pin of reference or jit is
        # honored; unset or vectorized prefers jit when its kernel is
        # buildable and reference otherwise (never vectorized: span-of-1
        # stepping measures ~0.9x; see docs/performance.md).
        ("auto", 2, None, True, "jit"),
        ("auto", 2, None, False, "reference"),
        ("auto", 4, "vectorized", True, "jit"),
        ("auto", 4, "vectorized", False, "reference"),
        ("auto", 4, "reference", True, "reference"),
        ("auto", 4, "reference", False, "reference"),
        ("auto", 4, "jit", True, "jit"),
        ("auto", 4, "jit", False, "jit"),
        (None, 4, "vectorized", True, "jit"),
        (None, 4, "vectorized", False, "reference"),
    ],
)
def test_resolve_backend_table(monkeypatch, request_name, n_cores, env, jit_ok, expected):
    if env is None:
        monkeypatch.delenv(backends.ENGINE_BACKEND_ENV, raising=False)
    else:
        monkeypatch.setenv(backends.ENGINE_BACKEND_ENV, env)
    monkeypatch.setattr(backends, "_jit_available", lambda: jit_ok)
    assert backends.resolve_backend(request_name, n_cores=n_cores) == expected


def test_jit_unavailable_falls_back_with_warning(monkeypatch, caplog) -> None:
    """When the kernel can't be built, 'jit' degrades to the reference
    engine with a single logged warning."""
    from repro.core import jitted

    monkeypatch.setattr(jitted, "jit_available", lambda: False)
    monkeypatch.setattr(backends, "_jit_fallback_warned", False)

    with caplog.at_level(logging.WARNING, logger="repro.core.backends"):
        engine_cls = backends._jitted_engine_cls()
    assert engine_cls is None
    assert any(
        "falling back to the reference backend" in record.message
        for record in caplog.records
    )

    # A second request stays quiet (the warning is once per process).
    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.core.backends"):
        assert backends._jitted_engine_cls() is None
    assert not caplog.records


def test_multicore_system_never_auto_selects_vectorized(monkeypatch) -> None:
    """Multi-core auto resolves to jit (kernel buildable) or reference —
    never to the vectorized backend, even when the environment asks for
    it; single-core auto still honors the environment."""
    pytest.importorskip("numpy")
    from repro.cmp.system import System, SystemConfig
    from repro.core.vectorized import VectorizedCoreEngine
    from repro.eval.runner import get_traces

    monkeypatch.setenv(backends.ENGINE_BACKEND_ENV, "vectorized")
    system = System(
        SystemConfig(n_cores=2, engine_backend="auto"),
        get_traces("db", 2, 2_000),
    )
    assert len(system.engines) == 2
    assert not any(
        isinstance(engine, VectorizedCoreEngine) for engine in system.engines
    )
    if backends._jit_available():
        from repro.core.jitted import JittedCoreEngine

        assert all(
            isinstance(engine, JittedCoreEngine) for engine in system.engines
        )

    single = System(
        SystemConfig(n_cores=1, engine_backend="auto"),
        get_traces("db", 1, 2_000),
    )
    assert isinstance(single.engines[0], VectorizedCoreEngine)


def test_multicore_auto_without_jit_uses_reference(monkeypatch) -> None:
    """With the jit kernel unbuildable, multi-core auto falls back to
    plain reference engines."""
    from repro.cmp.system import System, SystemConfig
    from repro.core.engine import CoreEngine
    from repro.eval.runner import get_traces

    monkeypatch.delenv(backends.ENGINE_BACKEND_ENV, raising=False)
    monkeypatch.setattr(backends, "_jit_available", lambda: False)
    system = System(
        SystemConfig(n_cores=2, engine_backend="auto"),
        get_traces("db", 2, 2_000),
    )
    assert all(type(engine) is CoreEngine for engine in system.engines)
