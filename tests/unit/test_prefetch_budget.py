"""Unit tests for storage-budget matching across prefetcher families."""

import pytest

from repro.prefetch.budget import (
    GSHARE_PER_BTB,
    SHADOW_PER_BTB,
    matched_overrides,
    matched_state_bytes,
)
from repro.prefetch.registry import create_prefetcher

KIB_16 = 16 * 1024
KIB_96 = 96 * 1024

TABLE_FAMILIES = ("target", "discontinuity", "markov", "mana")
PREDICTOR_FAMILIES = ("fdp", "shadow")


@pytest.mark.parametrize("name", TABLE_FAMILIES + PREDICTOR_FAMILIES)
class TestMatching:
    def test_matched_sizing_fits_the_budget(self, name):
        overrides = matched_overrides(name, KIB_16)
        assert create_prefetcher(name, **overrides).state_bytes() <= KIB_16

    def test_matched_sizing_is_maximal(self, name):
        overrides = matched_overrides(name, KIB_16)
        knob = "btb_entries" if name in PREDICTOR_FAMILIES else "table_entries"
        doubled = dict(overrides)
        doubled[knob] = overrides[knob] * 2
        if name in PREDICTOR_FAMILIES:
            doubled["gshare_entries"] = doubled[knob] * GSHARE_PER_BTB
        if name == "shadow":
            doubled["shadow_entries"] = doubled[knob] * SHADOW_PER_BTB
        assert create_prefetcher(name, **doubled).state_bytes() > KIB_16

    def test_bigger_budget_never_shrinks_the_sizing(self, name):
        small = matched_overrides(name, KIB_16)
        large = matched_overrides(name, KIB_96)
        for knob, value in small.items():
            assert large[knob] >= value

    def test_matched_state_bytes_reports_the_actual_cost(self, name):
        overrides = matched_overrides(name, KIB_96)
        expected = create_prefetcher(name, **overrides).state_bytes()
        assert matched_state_bytes(name, KIB_96) == expected


class TestEdges:
    def test_predictor_families_couple_their_knobs(self):
        overrides = matched_overrides("fdp", KIB_96)
        assert overrides["gshare_entries"] == overrides["btb_entries"] * GSHARE_PER_BTB
        overrides = matched_overrides("shadow", KIB_96)
        assert overrides["gshare_entries"] == overrides["btb_entries"] * GSHARE_PER_BTB
        assert overrides["shadow_entries"] == overrides["btb_entries"] * SHADOW_PER_BTB

    def test_stateless_family_takes_no_overrides(self):
        assert matched_overrides("next-4-line", KIB_16) == {}

    def test_budget_below_minimum_sizing_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            matched_overrides("discontinuity", 16)

    def test_negative_budget_raises(self):
        with pytest.raises(ValueError):
            matched_overrides("discontinuity", -1)
