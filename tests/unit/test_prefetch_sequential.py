"""Unit tests for the sequential prefetcher family."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.prefetch.sequential import (
    LookaheadN,
    NextLineAlways,
    NextLineOnMiss,
    NextLineTagged,
    NextNLineTagged,
)

SEQ = int(TransitionKind.SEQUENTIAL)


def lines(candidates):
    return [candidate.line for candidate in candidates]


class TestNextLineAlways:
    def test_always_triggers(self):
        pf = NextLineAlways()
        assert lines(pf.on_demand_fetch(10, False, False, SEQ)) == [11]
        assert lines(pf.on_demand_fetch(10, True, False, SEQ)) == [11]


class TestNextLineOnMiss:
    def test_triggers_only_on_miss(self):
        pf = NextLineOnMiss()
        assert lines(pf.on_demand_fetch(10, True, False, SEQ)) == [11]
        assert pf.on_demand_fetch(10, False, False, SEQ) == []
        assert pf.on_demand_fetch(10, False, True, SEQ) == []


class TestNextLineTagged:
    def test_triggers_on_miss_or_first_use(self):
        pf = NextLineTagged()
        assert lines(pf.on_demand_fetch(10, True, False, SEQ)) == [11]
        assert lines(pf.on_demand_fetch(10, False, True, SEQ)) == [11]
        assert pf.on_demand_fetch(10, False, False, SEQ) == []


class TestNextNLineTagged:
    def test_issues_n_lines(self):
        pf = NextNLineTagged(degree=4)
        assert lines(pf.on_demand_fetch(10, True, False, SEQ)) == [11, 12, 13, 14]

    def test_degree_two(self):
        pf = NextNLineTagged(degree=2)
        assert lines(pf.on_demand_fetch(10, False, True, SEQ)) == [11, 12]

    def test_no_trigger_no_candidates(self):
        assert NextNLineTagged(4).on_demand_fetch(10, False, False, SEQ) == []

    def test_name_reflects_degree(self):
        assert NextNLineTagged(4).name == "next-4-line"
        assert NextNLineTagged(2).name == "next-2-line"

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            NextNLineTagged(0)


class TestLookaheadN:
    def test_single_distant_line(self):
        pf = LookaheadN(distance=4)
        assert lines(pf.on_demand_fetch(10, True, False, SEQ)) == [14]

    def test_no_trigger(self):
        assert LookaheadN(4).on_demand_fetch(10, False, False, SEQ) == []

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            LookaheadN(0)


class TestProvenance:
    def test_sequential_provenance_tagged(self):
        pf = NextNLineTagged(2)
        for candidate in pf.on_demand_fetch(5, True, False, SEQ):
            assert candidate.provenance == ("seq",)
