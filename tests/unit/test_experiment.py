"""Unit tests for the declarative experiment model (repro.eval.experiment).

Everything here runs on synthetic panels and tiny grids — no simulation.
The catalog's concrete declarations are covered by the spec-parity golden
test and the integration suite.
"""

import math

import pytest

from repro.eval.experiment import (
    Band,
    Compare,
    Experiment,
    ExperimentContext,
    ExperimentOutcome,
    Extremum,
    Grid,
    PanelDef,
    Runs,
    Spread,
    Verdict,
    scale_rank,
)
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import ExperimentScale, get_scale
from repro.eval.runspec import DEFAULT_SEED

SMOKE = get_scale("smoke")

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=2_000,
    measure_instructions=8_000,
    cmp_measure_instructions=4_000,
)


def panel(values, rows=("a", "b"), cols=("x", "y"), experiment="p1"):
    return ExperimentResult(
        experiment=experiment,
        title="synthetic",
        row_labels=list(rows),
        col_labels=list(cols),
        values=[[float(v) for v in row] for row in values],
    )


class TestScaleRank:
    def test_known_scales_are_ordered(self):
        assert scale_rank("smoke") < scale_rank("default") < scale_rank("full")

    def test_unknown_scale_ranks_below_everything(self):
        assert scale_rank("tiny") < scale_rank("smoke")


class TestExperimentContext:
    def test_spec_inherits_scale_and_seed(self):
        ctx = ExperimentContext(scale=SMOKE, seed=7)
        spec = ctx.spec("db", 4)
        assert spec.seed == 7
        assert spec.scale.name == SMOKE.name

    def test_explicit_kwargs_beat_context_defaults(self):
        ctx = ExperimentContext(scale=SMOKE, seed=7)
        assert ctx.spec("db", 4, seed=9).seed == 9


class TestGrid:
    def test_expands_cartesian_product(self):
        grid = Grid(
            axes=(("workload", ("db", "web")), ("n", (1, 2))),
            build=lambda ctx, workload, n: ctx.spec(workload, n),
        )
        specs = grid.specs(ExperimentContext(scale=SMOKE))
        assert len(specs) == 4
        assert {(s.workload, s.n_cores) for s in specs} == {
            ("db", 1), ("db", 2), ("web", 1), ("web", 2)
        }

    def test_callable_axis_reads_context(self):
        def seeds_axis(ctx):
            return ctx.seeds

        grid = Grid(
            axes=(("seed", seeds_axis),),
            build=lambda ctx, seed: ctx.spec("db", 1, seed=seed),
        )
        ctx = ExperimentContext(scale=SMOKE, seeds=(1, 2, 3))
        assert sorted(s.seed for s in grid.specs(ctx)) == [1, 2, 3]

    def test_build_may_return_a_sequence_or_none(self):
        def build(ctx, workload):
            if workload == "web":
                return None  # skipped grid point
            return [ctx.spec(workload, 1), ctx.spec(workload, 2)]

        grid = Grid(axes=(("workload", ("db", "web")),), build=build)
        specs = grid.specs(ExperimentContext(scale=SMOKE))
        assert len(specs) == 2
        assert all(s.workload == "db" for s in specs)

    def test_duplicate_points_are_deduplicated(self):
        grid = Grid(
            axes=(("n", (1, 2)),),
            build=lambda ctx, n: ctx.spec("db", 1),  # same spec twice
        )
        assert len(grid.specs(ExperimentContext(scale=SMOKE))) == 1


class FakeResult:
    def __init__(self, ipc):
        self.aggregate_ipc = ipc


class TestRuns:
    def make_runs(self):
        ctx = ExperimentContext(scale=SMOKE)
        results = {
            ctx.spec("db", 4): FakeResult(1.0),
            ctx.spec("db", 4, "discontinuity"): FakeResult(1.5),
        }
        return Runs(ctx, results)

    def test_result_lookup(self):
        runs = self.make_runs()
        assert runs.result("db", 4).aggregate_ipc == 1.0
        assert len(runs) == 2

    def test_missing_spec_names_the_run(self):
        runs = self.make_runs()
        with pytest.raises(KeyError, match="not part of this experiment's grid"):
            runs.result("web", 4)

    def test_speedup_over_matching_baseline(self):
        runs = self.make_runs()
        assert runs.speedup("db", 4, "discontinuity") == 1.5

    def test_speedup_base_kwargs_select_the_baseline(self):
        ctx = ExperimentContext(scale=SMOKE)
        results = {
            ctx.spec("db", 4, l2_inclusive=True): FakeResult(2.0),
            ctx.spec(
                "db", 4, "discontinuity", l2_inclusive=True
            ): FakeResult(3.0),
        }
        runs = Runs(ctx, results)
        speedup = runs.speedup(
            "db", 4, "discontinuity",
            base={"l2_inclusive": True}, l2_inclusive=True,
        )
        assert speedup == 1.5

    def test_speedup_propagates_seed_to_baseline(self):
        ctx = ExperimentContext(scale=SMOKE)
        results = {
            ctx.spec("db", 4, seed=9): FakeResult(1.0),
            ctx.spec("db", 4, "discontinuity", seed=9): FakeResult(1.2),
        }
        runs = Runs(ctx, results)
        assert runs.speedup("db", 4, "discontinuity", seed=9) == 1.2


class TestPanelDef:
    def test_build_evaluates_every_cell(self):
        definition = PanelDef(
            id="p1",
            title="t",
            rows=(("A", 1), ("B", 2)),
            cols=(("X", 10), ("Y", 20)),
            cell=lambda runs, row, col: row * col,
        )
        result = definition.build(Runs(ExperimentContext(scale=SMOKE), {}))
        assert result.values == [[10.0, 20.0], [20.0, 40.0]]
        assert result.row_labels == ["A", "B"]
        assert result.col_labels == ["X", "Y"]


class TestBand:
    def test_pass_and_fail(self):
        p = panel([[1.1, 1.2], [1.3, 1.4]])
        ok, _ = Band(panel="p1", lo=1.0, hi=1.5).check(p)
        assert ok
        ok, detail = Band(panel="p1", lo=1.25).check(p)
        assert not ok
        assert "a/x=1.1" in detail

    def test_bounds_are_strict(self):
        p = panel([[1.0, 1.2], [1.3, 1.4]])
        ok, detail = Band(panel="p1", lo=1.0).check(p)
        assert not ok
        assert "<=" in detail

    def test_single_row_and_column_subset(self):
        p = panel([[1.1, 9.0], [0.0, 0.0]])
        ok, _ = Band(panel="p1", row="a", lo=1.0, hi=2.0, cols=("x",)).check(p)
        assert ok

    def test_nan_cells_are_skipped(self):
        p = panel([[math.nan, 1.2], [1.3, 1.4]])
        ok, detail = Band(panel="p1", lo=1.0, hi=1.5).check(p)
        assert ok
        assert "3 cell(s)" in detail

    def test_agg_max_checks_only_the_row_maximum(self):
        p = panel([[0.5, 1.2], [0.4, 1.4]])
        ok, _ = Band(panel="p1", lo=1.0, agg="max").check(p)
        assert ok


class TestCompare:
    def test_row_vs_row_across_columns(self):
        p = panel([[1.5, 1.6], [1.2, 1.3]])
        ok, _ = Compare(panel="p1", row="a", other_row="b", op=">").check(p)
        assert ok
        ok, _ = Compare(panel="p1", row="b", other_row="a", op=">").check(p)
        assert not ok

    def test_factor_and_offset(self):
        p = panel([[1.5, 1.6], [1.2, 1.3]])
        ok, _ = Compare(
            panel="p1", row="a", other_row="b", op=">", offset=0.5
        ).check(p)
        assert not ok
        ok, _ = Compare(
            panel="p1", row="b", other_row="a", op=">=", factor=0.5
        ).check(p)
        assert ok

    def test_single_cell_pair_across_columns(self):
        """other_row defaults to row: compares two cells of the same row."""
        p = panel([[1.0, 2.0], [5.0, 1.0]])
        ok, _ = Compare(panel="p1", row="a", op=">", col="y", other_col="x").check(p)
        assert ok
        ok, _ = Compare(panel="p1", row="b", op=">", col="y", other_col="x").check(p)
        assert not ok

    def test_allow_failures_tolerates_columns(self):
        p = panel([[1.5, 1.0], [1.2, 1.3]])
        strict = Compare(panel="p1", row="a", other_row="b", op=">")
        lax = Compare(panel="p1", row="a", other_row="b", op=">", allow_failures=1)
        assert not strict.check(p)[0]
        ok, detail = lax.check(p)
        assert ok
        assert "tolerated" in detail

    def test_nan_pairs_are_skipped(self):
        p = panel([[1.5, math.nan], [1.2, 1.3]])
        ok, _ = Compare(panel="p1", row="a", other_row="b", op=">").check(p)
        assert ok


class TestSpread:
    def test_pass_and_fail(self):
        p = panel([[1.0, 1.1], [1.05, 1.4]])
        assert Spread(panel="p1", rows=("a", "b"), hi=0.5).check(p)[0]
        ok, detail = Spread(panel="p1", rows=("a", "b"), hi=0.2).check(p)
        assert not ok
        assert "y" in detail


class TestExtremum:
    def test_max_and_min(self):
        p = panel([[1.0, 2.0], [3.0, 1.0]])
        assert Extremum(panel="p1", row="a", col="y", extremum="max").check(p)[0]
        assert Extremum(panel="p1", row="a", col="x", extremum="min").check(p)[0]
        ok, detail = Extremum(panel="p1", row="b", col="y", extremum="max").check(p)
        assert not ok
        assert "row max is 3" in detail


def experiment_with(expectations, bench_scale="smoke"):
    return Experiment(
        name="synthetic",
        title="synthetic experiment",
        paper="Figure 0",
        tags=("test",),
        grid=Grid(axes=(), build=None),
        panels=(),
        expectations=tuple(expectations),
        bench_scale=bench_scale,
    )


class TestEvaluate:
    def test_missing_panel_fails_with_available_list(self):
        experiment = experiment_with([Band(panel="ghost", lo=0.0)])
        ctx = experiment.context(SMOKE)
        (verdict,) = experiment.evaluate([panel([[1.0, 1.0], [1.0, 1.0]])], ctx)
        assert verdict.failed
        assert "'ghost' not produced" in verdict.detail
        assert "p1" in verdict.detail

    def test_lookup_error_becomes_failed_verdict(self):
        experiment = experiment_with([Band(panel="p1", row="ghost", lo=0.0)])
        ctx = experiment.context(SMOKE)
        (verdict,) = experiment.evaluate([panel([[1.0, 1.0], [1.0, 1.0]])], ctx)
        assert verdict.failed
        assert "lookup error" in verdict.detail

    def test_below_min_scale_skips(self):
        experiment = experiment_with([Band(panel="p1", lo=0.0)])
        ctx = experiment.context(TINY)
        (verdict,) = experiment.evaluate([panel([[1.0, 1.0], [1.0, 1.0]])], ctx)
        assert verdict.status == "skip"
        assert "below 'smoke'" in verdict.detail

    def test_bench_scale_default_skips_at_smoke(self):
        experiment = experiment_with(
            [Band(panel="p1", lo=0.0)], bench_scale="default"
        )
        ctx = experiment.context(SMOKE)
        (verdict,) = experiment.evaluate([panel([[1.0, 1.0], [1.0, 1.0]])], ctx)
        assert verdict.status == "skip"

    def test_explicit_min_scale_beats_bench_scale(self):
        experiment = experiment_with(
            [Band(panel="p1", lo=0.0, min_scale="smoke")], bench_scale="default"
        )
        ctx = experiment.context(SMOKE)
        (verdict,) = experiment.evaluate([panel([[1.0, 1.0], [1.0, 1.0]])], ctx)
        assert verdict.passed


class TestVerdict:
    def test_format_includes_status_kind_and_detail(self):
        verdict = Verdict("e", "p", "band", "desc", "fail", "out of band")
        text = verdict.format()
        assert "FAIL" in text
        assert "[band]" in text
        assert "out of band" in text

    def test_to_dict_round_trip_fields(self):
        verdict = Verdict("e", "p", "band", "desc", "pass", "ok")
        assert verdict.to_dict() == {
            "experiment": "e",
            "panel": "p",
            "kind": "band",
            "description": "desc",
            "status": "pass",
            "detail": "ok",
        }


class TestExperimentOutcome:
    def make_outcome(self, verdicts=()):
        experiment = experiment_with([])
        return ExperimentOutcome(
            experiment=experiment,
            ctx=experiment.context(SMOKE),
            panels=[panel([[1.0, 1.0], [1.0, 1.0]])],
            verdicts=list(verdicts),
        )

    def test_panel_lookup_names_available_panels(self):
        outcome = self.make_outcome()
        assert outcome.panel("p1").experiment == "p1"
        with pytest.raises(KeyError, match="available"):
            outcome.panel("nope")

    def test_passed_tracks_failed_verdicts(self):
        ok = Verdict("synthetic", "p1", "band", "d", "pass")
        bad = Verdict("synthetic", "p1", "band", "d", "fail")
        assert self.make_outcome([ok]).passed
        outcome = self.make_outcome([ok, bad])
        assert not outcome.passed
        assert outcome.failed_verdicts == [bad]

    def test_verdict_summary_counts(self):
        verdicts = [
            Verdict("synthetic", "p1", "band", "d", status)
            for status in ("pass", "pass", "fail", "skip")
        ]
        summary = self.make_outcome(verdicts).verdict_summary()
        assert summary == "expectations: 2 pass, 1 fail, 1 skipped"


class TestExperimentSpecs:
    def test_specs_resolve_scale_by_name(self):
        experiment = Experiment(
            name="synthetic",
            title="t",
            paper="Figure 0",
            tags=("test",),
            grid=Grid(
                axes=(("workload", ("db",)),),
                build=lambda ctx, workload: ctx.spec(workload, 1),
            ),
            panels=(),
            expectations=(),
        )
        (spec,) = experiment.specs(scale="smoke")
        assert spec.scale.name == "smoke"
        assert spec.seed == DEFAULT_SEED
        (spec,) = experiment.specs(scale="smoke", seed=5)
        assert spec.seed == 5
