"""Unit tests for the FIFO and tree-PLRU replacement policies."""

import pytest

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.caches.line import LineState


def make_cache(policy, assoc=4, sets=2):
    capacity = 64 * assoc * sets
    return SetAssociativeCache(
        "c", CacheConfig(capacity_bytes=capacity, associativity=assoc, line_size=64),
        policy=policy,
    )


class TestFifo:
    def test_eviction_ignores_hits(self):
        cache = make_cache("fifo", assoc=2)
        cache.install(0, LineState())  # set 0
        cache.install(2, LineState())  # set 0 (2 sets: even lines -> set 0)
        cache.lookup(0)  # would save 0 under LRU; FIFO ignores it
        victim_line, _ = cache.install(4, LineState())
        assert victim_line == 0  # first in, first out

    def test_insertion_order_is_eviction_order(self):
        cache = make_cache("fifo", assoc=2)
        cache.install(2, LineState())
        cache.install(0, LineState())
        for _ in range(5):
            cache.lookup(2)
        victim_line, _ = cache.install(4, LineState())
        assert victim_line == 2

    def test_reinstall_does_not_refresh(self):
        cache = make_cache("fifo", assoc=2)
        cache.install(0, LineState())
        cache.install(2, LineState())
        cache.install(0, LineState(prefetched=True))  # re-install
        victim_line, _ = cache.install(4, LineState())
        assert victim_line == 0


class TestPlru:
    def test_requires_power_of_two_assoc(self):
        with pytest.raises(ValueError, match="power-of-two"):
            SetAssociativeCache(
                "c",
                CacheConfig(capacity_bytes=64 * 6, associativity=6, line_size=64),
                policy="plru",
            )

    def test_basic_hit_miss(self):
        cache = make_cache("plru")
        assert cache.lookup(0) is None
        cache.install(0, LineState())
        assert cache.lookup(0) is not None

    def test_victim_is_not_most_recent(self):
        cache = make_cache("plru", assoc=4, sets=1)
        for line in range(4):
            cache.install(line, LineState())
        cache.lookup(3)  # 3 is most recently touched
        victim_line, _ = cache.install(10, LineState())
        assert victim_line != 3

    def test_recently_touched_lines_protected(self):
        cache = make_cache("plru", assoc=4, sets=1)
        for line in range(4):
            cache.install(line, LineState())
        # Touch 0 and 1 repeatedly; victim should come from {2, 3}.
        for _ in range(3):
            cache.lookup(0)
            cache.lookup(1)
        victim_line, _ = cache.install(10, LineState())
        assert victim_line in (2, 3)

    def test_capacity_never_exceeded(self):
        cache = make_cache("plru", assoc=4, sets=2)
        for line in range(64):
            cache.install(line, LineState())
        assert len(cache) <= 8
        assert cache.set_occupancy(0) <= 4
        assert cache.set_occupancy(1) <= 4

    def test_invalidate_frees_way(self):
        cache = make_cache("plru", assoc=2, sets=1)
        cache.install(0, LineState())
        cache.install(1, LineState())
        cache.invalidate(0)
        assert cache.install(2, LineState()) is None  # no eviction needed
        assert len(cache) == 2

    def test_flush_resets_tree_state(self):
        cache = make_cache("plru", assoc=2, sets=1)
        cache.install(0, LineState())
        cache.install(1, LineState())
        cache.flush()
        assert len(cache) == 0
        cache.install(2, LineState())
        cache.install(3, LineState())
        assert len(cache) == 2

    def test_touch_updates_tree(self):
        cache = make_cache("plru", assoc=2, sets=1)
        cache.install(0, LineState())
        cache.install(1, LineState())
        cache.touch(0)  # 0 recently used -> victim should be 1
        victim_line, _ = cache.install(2, LineState())
        assert victim_line == 1

    def test_direct_mapped_plru(self):
        cache = make_cache("plru", assoc=1, sets=2)
        cache.install(0, LineState())
        victim = cache.install(2, LineState())
        assert victim is not None and victim[0] == 0


class TestPolicyComparativeBehaviour:
    def test_all_policies_hold_working_set_that_fits(self):
        for policy in SetAssociativeCache.POLICIES:
            cache = make_cache(policy, assoc=4, sets=2)
            for line in range(8):
                cache.install(line, LineState())
            assert all(line in cache for line in range(8)), policy

    def test_plru_approximates_lru_on_scans(self):
        # A cyclic scan over assoc+1 lines thrashes both LRU and PLRU
        # completely — their miss counts match on this adversarial pattern.
        results = {}
        for policy in ("lru", "plru"):
            cache = make_cache(policy, assoc=4, sets=1)
            misses = 0
            for _ in range(10):
                for line in range(5):
                    if cache.lookup(line) is None:
                        misses += 1
                        cache.install(line, LineState())
            results[policy] = misses
        assert results["plru"] >= results["lru"] * 0.8


class TestRandom:
    def test_eviction_sequence_matches_reference_model(self):
        # Regression guard for the islice-based victim selection in
        # ``SetAssociativeCache._evict``: for a fixed rng seed the victim
        # sequence must be exactly what the original ``list(set)[k]``
        # formulation produced.  The shadow model below *is* that original
        # formulation, driven by an identical SplitMix64 stream.
        from repro.util.rng import SplitMix64

        assoc, sets, seed = 4, 2, 0
        cache = make_cache("random", assoc=assoc, sets=sets)
        shadow_rng = SplitMix64(seed)
        shadow_sets = [[] for _ in range(sets)]
        driver = SplitMix64(12345)

        victims = []
        for step in range(200):
            line = driver.randrange(64)
            set_index = line & (sets - 1)
            shadow = shadow_sets[set_index]
            expected_victim = None
            if line not in shadow and len(shadow) >= assoc:
                k = shadow_rng.randrange(len(shadow))
                expected_victim = shadow[k]
                shadow.remove(expected_victim)
            if line not in shadow:
                shadow.append(line)

            actual = cache.install(line, LineState())
            if expected_victim is None:
                assert actual is None, f"step {step}: unexpected eviction {actual}"
            else:
                assert actual is not None, f"step {step}: missing eviction"
                assert actual[0] == expected_victim, f"step {step}"
                victims.append(actual[0])

        assert len(victims) > 50  # the run actually exercised evictions
        assert sorted(set(len(s) for s in shadow_sets)) == [assoc]

    def test_fixed_seed_is_deterministic(self):
        def victim_sequence():
            cache = make_cache("random", assoc=2, sets=1)
            out = []
            for line in range(20):
                victim = cache.install(line, LineState())
                if victim is not None:
                    out.append(victim[0])
            return out

        assert victim_sequence() == victim_sequence()
