"""The repro.util.clock shim — the only sanctioned wall-clock gateway."""

from __future__ import annotations

import time

from repro.util.clock import Stopwatch, now


def test_now_tracks_the_epoch_clock():
    before = time.time()
    stamp = now()
    after = time.time()
    assert before <= stamp <= after


def test_stopwatch_elapsed_is_monotonic_nonnegative():
    watch = Stopwatch()
    first = watch.elapsed()
    second = watch.elapsed()
    assert 0.0 <= first <= second


def test_stopwatch_restart_resets_reference():
    watch = Stopwatch()
    time.sleep(0.01)
    before_restart = watch.elapsed()
    watch.restart()
    assert watch.elapsed() < before_restart
