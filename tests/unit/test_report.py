"""Unit tests for result export (repro.eval.report) and the CLI flags."""

import json
import math

import pytest

from repro.eval import cli
from repro.eval.experiment import (
    Experiment,
    ExperimentContext,
    ExperimentOutcome,
    Grid,
    Verdict,
)
from repro.eval.figures import ExperimentResult
from repro.eval.profiles import get_scale
from repro.eval.report import (
    outcome_to_markdown,
    outcomes_from_json,
    outcomes_to_json,
    outcomes_to_markdown,
    panel_to_markdown,
    panels_from_json,
    panels_to_json,
    panels_to_markdown,
)


def sample_panels():
    return [
        ExperimentResult(
            experiment="figXX",
            title="demo",
            row_labels=["a", "b"],
            col_labels=["x", "y"],
            values=[[1.5, 2.0], [3.25, 4.0]],
            unit="things",
            notes=["note one"],
        ),
        ExperimentResult(
            experiment="figYY",
            title="with nan",
            row_labels=["only"],
            col_labels=["x"],
            values=[[float("nan")]],
        ),
    ]


class TestJson:
    def test_roundtrip(self):
        text = panels_to_json(sample_panels())
        parsed = panels_from_json(text)
        assert len(parsed) == 2
        assert parsed[0]["experiment"] == "figXX"
        assert parsed[0]["values"] == [[1.5, 2.0], [3.25, 4.0]]
        assert math.isnan(parsed[1]["values"][0][0])

    def test_rejects_non_list(self):
        with pytest.raises(ValueError):
            panels_from_json(json.dumps({"not": "a list"}))

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing key"):
            panels_from_json(json.dumps([{"experiment": "x"}]))


class TestMarkdown:
    def test_table_structure(self):
        markdown = panel_to_markdown(sample_panels()[0])
        lines = markdown.splitlines()
        assert lines[0].startswith("**figXX**")
        assert "| | x | y |" in markdown
        assert "| a | 1.500 | 2.000 |" in markdown
        assert "> note one" in markdown

    def test_nan_rendered_as_dash(self):
        markdown = panel_to_markdown(sample_panels()[1])
        assert "—" in markdown

    def test_document_joins_panels(self):
        document = panels_to_markdown(sample_panels())
        assert "figXX" in document and "figYY" in document


def sample_outcome(verdict_status="pass"):
    experiment = Experiment(
        name="fake",
        title="fake experiment",
        paper="Figure 0",
        tags=("figure",),
        grid=Grid(axes=(), build=None),
        panels=(),
        expectations=(),
    )
    verdict = Verdict(
        experiment="fake",
        panel="figXX",
        kind="band",
        description="1.0 < speedup < 2.0",
        status=verdict_status,
        detail="observed 1.5",
    )
    return ExperimentOutcome(
        experiment=experiment,
        ctx=ExperimentContext(scale=get_scale("smoke"), seed=1337, seeds=()),
        panels=sample_panels(),
        verdicts=[verdict],
        report=None,
    )


class TestOutcomeJson:
    def test_roundtrip_includes_verdicts(self):
        parsed = outcomes_from_json(outcomes_to_json([sample_outcome()]))
        assert len(parsed) == 1
        outcome = parsed[0]
        assert outcome["experiment"] == "fake"
        assert outcome["scale"] == "smoke"
        assert outcome["panels"][0]["experiment"] == "figXX"
        assert outcome["verdicts"][0]["status"] == "pass"

    def test_rejects_non_list(self):
        with pytest.raises(ValueError):
            outcomes_from_json(json.dumps({"not": "a list"}))

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing key"):
            outcomes_from_json(json.dumps([{"experiment": "x"}]))


class TestOutcomeMarkdown:
    def test_panels_and_verdicts_rendered(self):
        markdown = outcome_to_markdown(sample_outcome())
        assert "## fake — fake experiment" in markdown
        assert "**figXX**" in markdown
        assert "✅" in markdown
        assert "1.0 < speedup < 2.0" in markdown

    def test_failed_verdict_marked(self):
        markdown = outcome_to_markdown(sample_outcome(verdict_status="fail"))
        assert "❌" in markdown

    def test_document_joins_outcomes(self):
        document = outcomes_to_markdown([sample_outcome(), sample_outcome()])
        assert document.count("## fake") == 2


class TestCliExportFlags:
    def test_json_and_markdown_written(self, tmp_path, monkeypatch):
        # Patch the CLI's registry seams so the CLI itself is what's
        # under test, not a simulation.
        from repro.eval.executor import SweepReport
        from repro.eval.runspec import RunSpec

        spec = RunSpec.create("db", 1, scale=get_scale("smoke"))
        report = SweepReport(total=1, simulated=0, label="fake")

        def fake_collect(names, scale=None, seed=None):
            return {name: [spec] for name in names}

        def fake_run(specs, jobs=None, progress=None, label=None):
            return {spec: object()}, report

        outcome = sample_outcome()
        monkeypatch.setattr(cli, "collect_specs_by_experiment", fake_collect)
        monkeypatch.setattr(cli, "run_specs_report", fake_run)
        monkeypatch.setattr(
            cli, "run_experiment_outcome", lambda name, **kwargs: outcome
        )
        json_path = tmp_path / "out.json"
        md_path = tmp_path / "out.md"
        code = cli.main(
            ["fake", "--json", str(json_path), "--markdown", str(md_path)]
        )
        assert code == 0
        exported = outcomes_from_json(json_path.read_text())
        assert exported[0]["experiment"] == "fake"
        assert exported[0]["panels"][0]["experiment"] == "figXX"
        text = md_path.read_text()
        assert "## fake — fake experiment" in text
        assert "**figXX**" in text
