"""Unit tests for result export (repro.eval.report) and the CLI flags."""

import json
import math

import pytest

from repro.eval.cli import main
from repro.eval.figures import ExperimentResult
from repro.eval.report import (
    panel_to_markdown,
    panels_from_json,
    panels_to_json,
    panels_to_markdown,
)


def sample_panels():
    return [
        ExperimentResult(
            experiment="figXX",
            title="demo",
            row_labels=["a", "b"],
            col_labels=["x", "y"],
            values=[[1.5, 2.0], [3.25, 4.0]],
            unit="things",
            notes=["note one"],
        ),
        ExperimentResult(
            experiment="figYY",
            title="with nan",
            row_labels=["only"],
            col_labels=["x"],
            values=[[float("nan")]],
        ),
    ]


class TestJson:
    def test_roundtrip(self):
        text = panels_to_json(sample_panels())
        parsed = panels_from_json(text)
        assert len(parsed) == 2
        assert parsed[0]["experiment"] == "figXX"
        assert parsed[0]["values"] == [[1.5, 2.0], [3.25, 4.0]]
        assert math.isnan(parsed[1]["values"][0][0])

    def test_rejects_non_list(self):
        with pytest.raises(ValueError):
            panels_from_json(json.dumps({"not": "a list"}))

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing key"):
            panels_from_json(json.dumps([{"experiment": "x"}]))


class TestMarkdown:
    def test_table_structure(self):
        markdown = panel_to_markdown(sample_panels()[0])
        lines = markdown.splitlines()
        assert lines[0].startswith("**figXX**")
        assert "| | x | y |" in markdown
        assert "| a | 1.500 | 2.000 |" in markdown
        assert "> note one" in markdown

    def test_nan_rendered_as_dash(self):
        markdown = panel_to_markdown(sample_panels()[1])
        assert "—" in markdown

    def test_document_joins_panels(self):
        document = panels_to_markdown(sample_panels())
        assert "figXX" in document and "figYY" in document


class TestCliExportFlags:
    def test_json_and_markdown_written(self, tmp_path, monkeypatch):
        # Patch in a fast fake experiment so the CLI itself is what's
        # under test, not a simulation.
        from repro.eval import registry

        monkeypatch.setitem(
            registry.EXPERIMENTS, "fake", lambda **kw: sample_panels()
        )
        json_path = tmp_path / "out.json"
        md_path = tmp_path / "out.md"
        code = main(["fake", "--json", str(json_path), "--markdown", str(md_path)])
        assert code == 0
        assert panels_from_json(json_path.read_text())[0]["experiment"] == "figXX"
        assert "**figXX**" in md_path.read_text()
