"""Unit tests for the Markov (multi-target) prefetcher."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.prefetch.markov import MarkovPrefetcher, MarkovTable

SEQ = int(TransitionKind.SEQUENTIAL)


class TestMarkovTable:
    def test_single_observation(self):
        table = MarkovTable(capacity=8, targets_per_entry=2)
        table.observe(10, 100)
        assert table.predict(10, fanout=2) == [100]

    def test_multiple_targets_retained(self):
        table = MarkovTable(capacity=8, targets_per_entry=2)
        table.observe(10, 100)
        table.observe(10, 200)
        assert sorted(table.predict(10, fanout=2)) == [100, 200]

    def test_frequency_ordering(self):
        table = MarkovTable(capacity=8, targets_per_entry=2)
        table.observe(10, 100)
        table.observe(10, 200)
        table.observe(10, 200)
        assert table.predict(10, fanout=1) == [200]

    def test_targets_per_entry_cap_with_decay(self):
        table = MarkovTable(capacity=8, targets_per_entry=2)
        table.observe(10, 100)
        table.observe(10, 200)
        # A third target competes with the weakest (decay halves it).
        table.observe(10, 300)  # 200's count 1 -> 0 -> replaced by 300
        successors = dict(table.entry_successors(10))
        assert len(successors) == 2
        assert 100 in successors
        assert 300 in successors

    def test_dominant_target_survives_noise(self):
        table = MarkovTable(capacity=8, targets_per_entry=2)
        for _ in range(8):
            table.observe(10, 100)
        for noise in (200, 300, 400):
            table.observe(10, noise)
        assert table.predict(10, fanout=1) == [100]

    def test_equal_count_ties_break_by_ascending_target(self):
        # Canonical order must not depend on insertion history: equal
        # counts order by target ascending, so two tables trained with
        # the same observations in different orders predict identically.
        a = MarkovTable(capacity=8, targets_per_entry=4)
        b = MarkovTable(capacity=8, targets_per_entry=4)
        for target in (300, 100, 200):
            a.observe(10, target)
        for target in (200, 300, 100):
            b.observe(10, target)
        assert a.predict(10, fanout=4) == [100, 200, 300]
        assert b.predict(10, fanout=4) == [100, 200, 300]

    def test_replacement_entry_is_canonically_placed(self):
        table = MarkovTable(capacity=8, targets_per_entry=2)
        table.observe(10, 200)
        table.observe(10, 200)  # 200: count 2
        table.observe(10, 300)  # 300: count 1
        table.observe(10, 100)  # 300 halves to 0 -> replaced by 100
        assert table.entry_successors(10) == [(200, 2), (100, 1)]
        table.observe(10, 100)  # 100 ties 200 at count 2 -> ascending
        assert table.predict(10, fanout=2) == [100, 200]

    def test_lru_capacity(self):
        table = MarkovTable(capacity=2, targets_per_entry=2)
        table.observe(1, 100)
        table.observe(2, 200)
        table.observe(3, 300)  # evicts 1
        assert table.predict(1, fanout=2) == []
        assert table.predict(3, fanout=2) == [300]
        assert table.stats.evictions == 1

    def test_predict_refreshes_lru(self):
        table = MarkovTable(capacity=2, targets_per_entry=1)
        table.observe(1, 100)
        table.observe(2, 200)
        table.predict(1, fanout=1)
        table.observe(3, 300)  # evicts 2, not 1
        assert table.predict(1, fanout=1) == [100]
        assert table.predict(2, fanout=1) == []

    def test_occupancy_and_reset(self):
        table = MarkovTable(capacity=8)
        table.observe(1, 100)
        table.observe(2, 200)
        assert table.occupancy() == 2
        table.reset()
        assert table.occupancy() == 0
        assert table.stats.allocations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovTable(capacity=0)
        with pytest.raises(ValueError):
            MarkovTable(targets_per_entry=0)


class TestMarkovPrefetcher:
    def test_sequential_plus_markov_candidates(self):
        pf = MarkovPrefetcher(capacity=64, targets_per_entry=2, fanout=2, prefetch_ahead=2)
        pf.on_discontinuity(10, 500, caused_miss=True)
        pf.on_discontinuity(10, 800, caused_miss=True)
        lines = [c.line for c in pf.on_demand_fetch(10, True, False, SEQ)]
        assert lines[:2] == [11, 12]  # sequential window
        # Both targets prefetched with the remainder window.
        assert 500 in lines and 800 in lines
        assert 501 in lines and 502 in lines

    def test_no_trigger_no_candidates(self):
        pf = MarkovPrefetcher()
        assert pf.on_demand_fetch(10, False, False, SEQ) == []

    def test_fanout_limits_targets(self):
        pf = MarkovPrefetcher(capacity=64, targets_per_entry=4, fanout=1, prefetch_ahead=1)
        pf.on_discontinuity(10, 500, caused_miss=True)
        pf.on_discontinuity(10, 800, caused_miss=True)
        pf.on_discontinuity(10, 800, caused_miss=True)  # 800 dominant
        lines = [c.line for c in pf.on_demand_fetch(10, True, False, SEQ)]
        assert 800 in lines
        assert 500 not in lines

    def test_allocation_needs_miss(self):
        pf = MarkovPrefetcher(capacity=64)
        pf.on_discontinuity(10, 500, caused_miss=False)
        assert pf.table.predict(10, fanout=2) == []

    def test_name(self):
        assert MarkovPrefetcher(targets_per_entry=3).name == "markov-3t"

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovPrefetcher(fanout=0)
        with pytest.raises(ValueError):
            MarkovPrefetcher(prefetch_ahead=0)
