"""Compiled-trace fast path vs raw-trace slow path: bit-identical stats.

The engine keeps two step implementations (packed columns vs the lazy
lowering).  These tests pin the load-bearing claim from
``docs/performance.md``: for identical inputs the two paths produce
*identical* statistics — every counter and every float, not approximately.
"""

import dataclasses

import pytest

from repro.caches.missclass import MissBreakdown
from repro.cmp.system import System, SystemConfig
from repro.core.engine import CoreEngine, EngineConfig
from repro.trace.compiled import CompiledTrace, compile_traces
from repro.trace.synth.workloads import generate_trace


def core_dict(core):
    """Every CoreStats field as comparable plain data."""
    plain = dataclasses.asdict(core)
    for key, value in plain.items():
        if isinstance(value, MissBreakdown):
            plain[key] = value.counts()
    return plain


def system_stats(traces, prefetcher, n_cores=1, warm=2_000):
    config = SystemConfig(
        n_cores=n_cores, prefetcher=prefetcher, warm_instructions=warm
    )
    result = System(config, traces).run()
    return [core_dict(core) for core in result.cores]


@pytest.mark.parametrize("prefetcher", ["none", "next-line-tagged", "discontinuity"])
def test_compiled_path_is_bit_identical(prefetcher):
    raw = [generate_trace("db", 5, 40_000)]
    compiled = compile_traces(raw, 64, workload="db", seed=5, n_instructions=40_000)
    assert system_stats(compiled, prefetcher) == system_stats(raw, prefetcher)


def test_compiled_path_identical_on_cmp():
    raw = [generate_trace("web", 9, 12_000, core=core) for core in range(2)]
    config_raw = SystemConfig(n_cores=2, prefetcher="discontinuity")
    config_compiled = SystemConfig(n_cores=2, prefetcher="discontinuity")
    compiled = compile_traces(raw, 64, workload="web", seed=9, n_instructions=12_000)
    result_raw = System(config_raw, raw).run()
    result_compiled = System(config_compiled, compiled).run()
    assert [core_dict(c) for c in result_compiled.cores] == [
        core_dict(c) for c in result_raw.cores
    ]
    assert result_compiled.aggregate_ipc == result_raw.aggregate_ipc


def test_mixed_trace_kinds_per_core():
    """Cores may mix compiled and raw traces within one system."""
    raw = [generate_trace("japp", 3, 8_000, core=core) for core in range(2)]
    compiled0 = CompiledTrace.compile(
        raw[0], 64, workload="japp", seed=3, core=0, n_instructions=8_000
    )
    mixed = System(SystemConfig(n_cores=2), [compiled0, raw[1]]).run()
    pure = System(SystemConfig(n_cores=2), raw).run()
    assert [core_dict(c) for c in mixed.cores] == [
        core_dict(c) for c in pure.cores
    ]


def test_line_size_mismatch_rejected():
    raw = generate_trace("db", 5, 4_000)
    compiled = CompiledTrace.compile(
        raw, 128, workload="db", seed=5, core=0, n_instructions=4_000
    )
    with pytest.raises(ValueError, match="line_size"):
        System(SystemConfig(n_cores=1), [compiled]).run()


def test_engine_step_counts_match():
    """step() yields the same number of visits on both paths."""
    from repro.caches.cache import SetAssociativeCache
    from repro.caches.config import DEFAULT_HIERARCHY
    from repro.cmp.link import OffChipLink
    from repro.prefetch.registry import create_prefetcher
    from repro.prefetch.queue import PrefetchQueue
    from repro.timing.params import DEFAULT_TIMING

    raw = generate_trace("db", 5, 4_000)
    compiled = CompiledTrace.compile(
        raw, 64, workload="db", seed=5, core=0, n_instructions=4_000
    )

    def count_steps(trace):
        hierarchy = DEFAULT_HIERARCHY
        engine = CoreEngine(
            EngineConfig(core_id=0),
            trace,
            64,
            SetAssociativeCache("L1I", hierarchy.l1i),
            SetAssociativeCache("L1D", hierarchy.l1d),
            SetAssociativeCache("L2", hierarchy.l2),
            OffChipLink(3.2, 64),
            create_prefetcher("none"),
            PrefetchQueue(),
            DEFAULT_TIMING,
        )
        steps = 0
        while engine.step():
            steps += 1
        return steps

    assert count_steps(compiled) == count_steps(raw) == compiled.visit_count
