"""R5 (registry sync): every registered driver declares specs() so it joins
the deduplicated batch sweep."""

from __future__ import annotations

import pytest

from repro.lint.engine import LintError
from repro.lint.rules import RegistrySyncRule
from tests.unit.conftest import write_tree_file

FIG02_WITHOUT_SPECS = """
    def run(scale=None, seed=None):
        return []
    """

REGISTRY_WITH_FIG02 = """
    from repro.eval import fig01, fig02

    EXPERIMENTS = {
        "fig01": fig01.run,
        "fig02": fig02.run,
    }

    EXPERIMENT_SPECS = {
        "fig01": fig01.specs,
    }
    """

#: the fix R5's hint asks for: a specs() declarer plus a registry entry.
FIG02_WITH_SPECS = """
    def run(scale=None, seed=None):
        return []


    def specs(scale=None, seed=None):
        return []
    """

REGISTRY_PAIRED = """
    from repro.eval import fig01, fig02

    EXPERIMENTS = {
        "fig01": fig01.run,
        "fig02": fig02.run,
    }

    EXPERIMENT_SPECS = {
        "fig01": fig01.specs,
        "fig02": fig02.specs,
    }
    """


def test_base_tree_is_clean(lint_tree):
    assert RegistrySyncRule().check(lint_tree()) == []


def test_driver_without_specs_entry_fails(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/fig02.py": FIG02_WITHOUT_SPECS,
            "src/repro/eval/registry.py": REGISTRY_WITH_FIG02,
        }
    )
    violations = RegistrySyncRule().check(project)
    assert len(violations) == 1
    assert "'fig02'" in violations[0].message
    assert "batch submission" in violations[0].message
    assert "specs() declarer" in violations[0].hint


def test_fix_it_hint_resolves_the_violation(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/fig02.py": FIG02_WITHOUT_SPECS,
            "src/repro/eval/registry.py": REGISTRY_WITH_FIG02,
        }
    )
    assert RegistrySyncRule().check(project) != []
    project = write_tree_file(
        project.root, "src/repro/eval/fig02.py", FIG02_WITH_SPECS
    )
    project = write_tree_file(
        project.root, "src/repro/eval/registry.py", REGISTRY_PAIRED
    )
    assert RegistrySyncRule().check(project) == []


def test_allowlisted_driver_may_skip_specs(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/fig02.py": FIG02_WITHOUT_SPECS,
            "src/repro/eval/registry.py": REGISTRY_WITH_FIG02,
        }
    )
    rule = RegistrySyncRule(
        allowlist={"fig02": "third-party driver; simulates lazily by design"}
    )
    assert rule.check(project) == []


def test_stale_specs_entry_fails(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/registry.py": """
            from repro.eval import fig01

            EXPERIMENTS = {"fig01": fig01.run}

            EXPERIMENT_SPECS = {
                "fig01": fig01.specs,
                "ghost": fig01.specs,
            }
            """
        }
    )
    violations = RegistrySyncRule().check(project)
    assert len(violations) == 1
    assert "'ghost'" in violations[0].message
    assert "no EXPERIMENTS driver" in violations[0].message


def test_reference_to_missing_function_fails(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/registry.py": """
            from repro.eval import fig01

            EXPERIMENTS = {"fig01": fig01.run_all}

            EXPERIMENT_SPECS = {"fig01": fig01.specs}
            """
        }
    )
    violations = RegistrySyncRule().check(project)
    assert len(violations) == 1
    assert "no top-level 'run_all'" in violations[0].message


def test_non_literal_registry_raises(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/registry.py": """
            from repro.eval import fig01

            EXPERIMENTS = dict(fig01=fig01.run)

            EXPERIMENT_SPECS = {"fig01": fig01.specs}
            """
        }
    )
    with pytest.raises(LintError, match="dict literal"):
        RegistrySyncRule().check(project)
