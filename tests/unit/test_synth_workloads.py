"""Unit tests for the workload registry and the mixed-workload helper."""

import pytest

from repro.trace.synth.mix import MIX_REGION_STRIDE, mixed_traces
from repro.trace.synth.workloads import (
    DISPLAY_NAMES,
    WORKLOADS,
    generate_trace,
    get_profile,
    synth_workload_names,
    workload_names,
)


class TestRegistry:
    def test_four_paper_workloads(self):
        assert workload_names() == ["db", "tpcw", "japp", "web"]

    def test_profiles_named_consistently(self):
        for name, profile in WORKLOADS.items():
            assert profile.name == name

    def test_get_profile(self):
        assert get_profile("db") is WORKLOADS["db"]

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_profile("oracle")

    def test_display_names_cover_all_plus_mix(self):
        assert set(DISPLAY_NAMES) == set(synth_workload_names()) | {"mix"}

    def test_profiles_are_valid(self):
        # Construction runs __post_init__ validation; also sanity-check the
        # published qualitative ordering knobs.
        japp = get_profile("japp")
        web = get_profile("web")
        assert japp.block_mean_instr < web.block_mean_instr  # Java small blocks
        assert japp.p_poly_call > web.p_poly_call  # virtual dispatch
        assert japp.n_functions > web.n_functions  # biggest footprint


class TestGenerateTrace:
    def test_generates_requested_length(self):
        trace = generate_trace("web", seed=1, n_instructions=20_000)
        assert trace.total_instructions >= 20_000
        assert trace.name == "web"

    def test_deterministic_in_seed(self):
        a = generate_trace("web", seed=1, n_instructions=5_000)
        b = generate_trace("web", seed=1, n_instructions=5_000)
        assert list(a.events) == list(b.events)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            generate_trace("nope", seed=1, n_instructions=100)


class TestMixedTraces:
    def test_default_is_four_apps(self):
        traces = mixed_traces(seed=3, n_instructions_per_core=5_000)
        assert [t.name for t in traces] == ["db", "tpcw", "japp", "web"]

    def test_regions_disjoint(self):
        traces = mixed_traces(seed=3, n_instructions_per_core=5_000)
        for core, trace in enumerate(traces):
            lo = core * MIX_REGION_STRIDE
            hi = (core + 1) * MIX_REGION_STRIDE
            for event in list(trace.events)[:200]:
                assert lo <= event.addr < hi
                for addr in event.data:
                    assert lo <= addr < hi

    def test_custom_names(self):
        traces = mixed_traces(seed=3, n_instructions_per_core=2_000, names=["web", "web"])
        assert len(traces) == 2
        assert all(t.name == "web" for t in traces)

    def test_cores_decorrelated(self):
        traces = mixed_traces(seed=3, n_instructions_per_core=2_000, names=["web", "web"])
        offsets = [
            [e.addr - core * MIX_REGION_STRIDE for e in list(t.events)[:100]]
            for core, t in enumerate(traces)
        ]
        assert offsets[0] != offsets[1]
