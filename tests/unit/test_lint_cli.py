"""CLI surface of the analysis framework: SARIF output, ``--fix``,
file scoping, ``--output``, and the incremental facts cache.

Exit-code basics (clean/violation/usage, ``--rules``, ``--update-manifest``)
live in ``test_lint_engine.py``; this file covers everything added with the
shared-analysis framework.
"""

from __future__ import annotations

import json

import pytest

from repro.lint import manifest as manifest_mod
from repro.lint.cache import CACHE_REL_PATH
from repro.lint.cli import main
from tests.unit.conftest import write_tree_file
from tests.unit.test_lint_backend_drift import ENGINE_V1, PAIR, VEC_V1
from tests.unit.test_lint_env_registry import (
    READER_MODULE,
    REGISTRY_MODULE,
    REGISTRY_OK,
)

R1_VIOLATION = {"src/repro/core/walker.py": "import random\n"}

FIXABLE_READER = """
    import os


    def jobs():
        return os.environ.get("REPRO_JOBS", "1")
    """

#: enough of the SARIF 2.1.0 shape to catch structural regressions; the
#: full OASIS schema needs a network fetch, so validation is best-effort
#: (skipped when jsonschema is not installed).
SARIF_MIN_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                }
                            },
                        },
                    },
                },
            },
        },
    },
}


def read_sarif(path):
    return json.loads(path.read_text(encoding="utf-8"))


# --------------------------------------------------------------------- #
# SARIF
# --------------------------------------------------------------------- #


def test_sarif_reports_violations_with_locations(lint_tree, tmp_path):
    project = lint_tree(R1_VIOLATION)
    out = tmp_path / "lint.sarif"
    code = main(
        ["--root", str(project.root), "--format", "sarif", "--output", str(out)]
    )
    assert code == 1
    document = read_sarif(out)
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    assert [rule["id"] for rule in driver["rules"]] == [
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8",
    ]
    results = run["results"]
    assert results, "the R1 violation must appear as a result"
    for result in results:
        assert result["level"] == "error"
        assert result["message"]["text"]
        assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
    r1 = next(r for r in results if r["ruleId"] == "R1")
    location = r1["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/core/walker.py"
    assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
    assert location["region"]["startLine"] >= 1


def test_sarif_clean_tree_exits_zero_with_empty_results(lint_tree, tmp_path):
    project = lint_tree()
    out = tmp_path / "lint.sarif"
    code = main(
        ["--root", str(project.root), "--format", "sarif", "--output", str(out)]
    )
    assert code == 0
    assert read_sarif(out)["runs"][0]["results"] == []


def test_sarif_location_shapes_for_file_and_project_findings(
    lint_tree, tmp_path
):
    # A tree producing all three location shapes at once: a line-level
    # finding (undeclared REPRO read), a file-level one (missing manifest,
    # line 0 → no region), and a project-level one (missing registry →
    # no locations at all).
    project = lint_tree(
        {
            READER_MODULE: """
                import os

                def read():
                    return os.environ.get("REPRO_JOBS")
                """
        },
        with_manifest=False,
    )
    out = tmp_path / "lint.sarif"
    assert (
        main(
            [
                "--root",
                str(project.root),
                "--format",
                "sarif",
                "--output",
                str(out),
            ]
        )
        == 1
    )
    results = read_sarif(out)["runs"][0]["results"]
    by_shape = {"line": 0, "file": 0, "project": 0}
    for result in results:
        locations = result.get("locations")
        if locations is None:
            by_shape["project"] += 1
            continue
        physical = locations[0]["physicalLocation"]
        if "region" in physical:
            assert physical["region"]["startLine"] >= 1
            by_shape["line"] += 1
        else:
            by_shape["file"] += 1
    assert all(count > 0 for count in by_shape.values()), by_shape


def test_sarif_validates_against_minimal_schema(lint_tree, tmp_path):
    jsonschema = pytest.importorskip("jsonschema")
    project = lint_tree(R1_VIOLATION)
    out = tmp_path / "lint.sarif"
    main(["--root", str(project.root), "--format", "sarif", "--output", str(out)])
    jsonschema.validate(read_sarif(out), SARIF_MIN_SCHEMA)


# --------------------------------------------------------------------- #
# --fix
# --------------------------------------------------------------------- #


def test_fix_repairs_a_literal_env_read(lint_tree, capsys):
    project = lint_tree(
        {REGISTRY_MODULE: REGISTRY_OK, READER_MODULE: FIXABLE_READER}
    )
    assert main(["--root", str(project.root)]) == 1
    capsys.readouterr()
    assert main(["--root", str(project.root), "--fix"]) == 0
    out = capsys.readouterr().out
    assert f"fixed 1 violation(s) in {READER_MODULE}" in out
    repaired = project.path(READER_MODULE).read_text(encoding="utf-8")
    assert "from repro.envvars import REPRO_JOBS" in repaired
    assert '"REPRO_JOBS"' not in repaired
    assert main(["--root", str(project.root)]) == 0


def test_fix_is_scoped_to_the_named_files(lint_tree, capsys):
    other = "src/repro/eval/other_report.py"
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            READER_MODULE: FIXABLE_READER,
            other: FIXABLE_READER,
        }
    )
    # pre-commit semantics: only the named file is fixed *and* reported.
    code = main(
        ["--root", str(project.root), "--fix", str(project.path(READER_MODULE))]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert f"fixed 1 violation(s) in {READER_MODULE}" in out
    assert other not in out
    assert '"REPRO_JOBS"' in project.path(other).read_text(encoding="utf-8")
    # the unscoped run still sees the untouched file's violation.
    assert main(["--root", str(project.root)]) == 1


def test_report_scoping_filters_clean_files_to_exit_zero(lint_tree, capsys):
    project = lint_tree(R1_VIOLATION)
    clean_file = project.path("src/repro/core/engine.py")
    assert main(["--root", str(project.root), str(clean_file)]) == 0
    assert main(["--root", str(project.root)]) == 1
    capsys.readouterr()


def test_file_outside_the_root_is_an_error(lint_tree, tmp_path, capsys):
    project = lint_tree()  # rooted at tmp_path itself
    stray = tmp_path.parent / f"{tmp_path.name}_stray.py"
    stray.write_text("x = 1\n", encoding="utf-8")
    assert main(["--root", str(project.root), str(stray)]) == 1
    assert "outside the project root" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# incremental facts cache
# --------------------------------------------------------------------- #


def test_cache_is_written_and_warm_runs_stay_correct(lint_tree):
    project = lint_tree()
    cache_path = project.path(CACHE_REL_PATH)
    assert main(["--root", str(project.root)]) == 0
    assert cache_path.is_file()
    # warm run, unchanged tree: still clean.
    assert main(["--root", str(project.root)]) == 0
    # an edit must invalidate its entry (content-hash keying): the new
    # violation shows even though every other file is served from cache.
    write_tree_file(project.root, "src/repro/core/walker.py", "import random\n")
    assert main(["--root", str(project.root)]) == 1


def test_no_cache_flag_skips_the_cache_file(lint_tree):
    project = lint_tree()
    assert main(["--root", str(project.root), "--no-cache"]) == 0
    assert not project.path(CACHE_REL_PATH).exists()


def test_corrupt_cache_degrades_to_reanalysis(lint_tree):
    project = lint_tree()
    cache_path = project.path(CACHE_REL_PATH)
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    cache_path.write_text("{not json", encoding="utf-8")
    assert main(["--root", str(project.root)]) == 0


# --------------------------------------------------------------------- #
# odds and ends
# --------------------------------------------------------------------- #


def test_broken_tree_reports_a_parse_error(lint_tree, capsys):
    project = lint_tree({"src/repro/core/broken.py": "def broken(:\n"})
    assert main(["--root", str(project.root)]) == 1
    assert "cannot parse" in capsys.readouterr().err


def test_text_output_goes_to_the_named_file(lint_tree, tmp_path):
    project = lint_tree()
    out = tmp_path / "report.txt"
    assert main(["--root", str(project.root), "--output", str(out)]) == 0
    assert "repro.lint: OK" in out.read_text(encoding="utf-8")


def test_update_manifest_reports_backend_pairs(lint_tree, monkeypatch, capsys):
    monkeypatch.setattr(manifest_mod, "PAIRS", (PAIR,))
    project = lint_tree(
        {
            PAIR.ref_module: ENGINE_V1,
            manifest_mod.VECTORIZED_MODULE: VEC_V1,
        },
        with_manifest=False,
    )
    assert main(["--root", str(project.root), "--update-manifest"]) == 0
    assert "1 backend pairs" in capsys.readouterr().out
