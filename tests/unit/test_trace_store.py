"""Unit tests for the compiled-trace binary format and on-disk store.

The store's contract is "never serve a wrong trace, never crash on a bad
file": corruption, truncation, stale schema and mislabeled files must all
read as misses that the caller answers by recompiling.
"""

import os

import pytest

from repro.eval.runner import (
    clear_trace_cache,
    get_compiled_traces,
    get_traces,
)
from repro.trace import store
from repro.trace.compiled import (
    TRACE_SCHEMA_VERSION,
    CompiledTrace,
    CompiledTraceError,
)
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace


KEY = dict(workload="manual", seed=3, core=0, n_instructions=500)


def make_compiled(line_size=64, **overrides):
    params = dict(KEY)
    params.update(overrides)
    events = [
        BlockEvent(0x1000, 16, 0, (0x9000, 0x9008)),
        BlockEvent(0x1040, 40, 2, ()),
        BlockEvent(0x1040, 4, 0, (0x9010,)),
    ]
    trace = Trace("manual", 77, events)
    return CompiledTrace.compile(trace, line_size, **params)


class TestBinaryFormat:
    def test_roundtrip(self):
        compiled = make_compiled()
        loaded = CompiledTrace.from_bytes(compiled.to_bytes())
        assert list(loaded.iter_visits()) == list(compiled.iter_visits())
        assert loaded.workload == "manual"
        assert loaded.seed == 3
        assert loaded.name == "manual"

    def test_truncation_raises(self):
        blob = make_compiled().to_bytes()
        for cut in (0, 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CompiledTraceError):
                CompiledTrace.from_bytes(blob[:cut])

    def test_trailing_garbage_raises(self):
        blob = make_compiled().to_bytes()
        with pytest.raises(CompiledTraceError):
            CompiledTrace.from_bytes(blob + b"\x00")

    def test_payload_corruption_raises(self):
        blob = bytearray(make_compiled().to_bytes())
        blob[-3] ^= 0xFF  # flip bits inside the data column
        with pytest.raises(CompiledTraceError, match="checksum"):
            CompiledTrace.from_bytes(bytes(blob))

    def test_bad_magic_raises(self):
        blob = bytearray(make_compiled().to_bytes())
        blob[0] ^= 0xFF
        with pytest.raises(CompiledTraceError, match="magic"):
            CompiledTrace.from_bytes(bytes(blob))

    def test_stale_schema_raises(self):
        blob = bytearray(make_compiled().to_bytes())
        assert blob[8] == TRACE_SCHEMA_VERSION  # little-endian u32 at offset 8
        blob[8] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(CompiledTraceError, match="schema"):
            CompiledTrace.from_bytes(bytes(blob))


class TestStore:
    def test_store_then_load(self):
        compiled = make_compiled()
        assert store.store(compiled)
        loaded = store.load(**KEY, line_size=64)
        assert loaded is not None
        assert list(loaded.iter_visits()) == list(compiled.iter_visits())
        assert store.entry_count() == 1

    def test_missing_file_is_a_miss(self):
        assert store.load("nosuch", 1, 0, 100, 64) is None

    def test_corrupt_file_is_a_miss_not_a_crash(self):
        compiled = make_compiled()
        store.store(compiled)
        path = store.path_for(line_size=64, **KEY)
        path.write_bytes(path.read_bytes()[:-5])
        assert store.load(**KEY, line_size=64) is None

    def test_mislabeled_file_is_a_miss(self):
        # Internally consistent file filed under a different key (renamed).
        compiled = make_compiled()
        store.store(compiled)
        src = store.path_for(line_size=64, **KEY)
        dst = store.path_for("other", 3, 0, 500, 64)
        os.replace(src, dst)
        assert store.load("other", 3, 0, 500, 64) is None

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv(store.DISABLE_ENV, "0")
        assert not store.store(make_compiled())
        assert store.load(**KEY, line_size=64) is None
        assert not store.enabled()

    def test_clear(self):
        store.store(make_compiled())
        assert store.clear() == 1
        assert store.entry_count() == 0

    def test_trace_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store.TRACE_DIR_ENV, str(tmp_path / "override"))
        assert store.trace_dir() == tmp_path / "override"
        monkeypatch.delenv(store.TRACE_DIR_ENV)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert store.trace_dir() == tmp_path / "cache" / "traces"


class TestRunnerIntegration:
    """get_compiled_traces resolves memo → store → synthesize+compile."""

    def setup_method(self):
        clear_trace_cache()

    def test_compile_populates_store_and_warm_load_skips_synthesis(self):
        first = get_compiled_traces("db", 1, 20_000, seed=11, line_size=64)
        assert store.entry_count() == 1
        clear_trace_cache()
        again = get_compiled_traces("db", 1, 20_000, seed=11, line_size=64)
        assert list(again[0].lines) == list(first[0].lines)
        assert list(again[0].data) == list(first[0].data)

    def test_store_keys_include_line_size(self):
        get_compiled_traces("db", 1, 20_000, seed=11, line_size=32)
        get_compiled_traces("db", 1, 20_000, seed=11, line_size=128)
        assert store.entry_count() == 2

    def test_corrupt_store_entry_recompiles(self):
        get_compiled_traces("db", 1, 20_000, seed=11, line_size=64)
        path = store.path_for("db", 11, 0, 20_000, 64)
        path.write_bytes(b"garbage")
        clear_trace_cache()
        traces = get_compiled_traces("db", 1, 20_000, seed=11, line_size=64)
        assert traces[0].visit_count > 0
        # The bad entry was overwritten with a good one.
        assert store.load("db", 11, 0, 20_000, 64) is not None

    def test_compiled_matches_live_lowering(self):
        compiled = get_compiled_traces("db", 1, 20_000, seed=11, line_size=64)[0]
        raw = get_traces("db", 1, 20_000, seed=11)[0]
        from repro.trace.compiled import visits_equal

        equal, mismatch = visits_equal(compiled, raw)
        assert equal, f"first mismatch at visit {mismatch}"
