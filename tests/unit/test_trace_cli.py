"""Unit tests for the repro-trace command-line tool."""

import pytest

from repro.trace.cli import main
from repro.trace.io import read_trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "web.trc"
    code = main(["generate", "web", str(path), "--instructions", "5000", "--seed", "3"])
    assert code == 0
    return path


class TestGenerate:
    def test_generates_valid_file(self, trace_file):
        trace = read_trace(trace_file)
        assert trace.name == "web"
        assert trace.total_instructions >= 5000

    def test_deterministic(self, tmp_path, trace_file):
        other = tmp_path / "web2.trc"
        main(["generate", "web", str(other), "--instructions", "5000", "--seed", "3"])
        assert other.read_bytes() == trace_file.read_bytes()

    def test_core_changes_walk(self, tmp_path, trace_file):
        other = tmp_path / "web2.trc"
        main(
            ["generate", "web", str(other), "--instructions", "5000", "--seed", "3",
             "--core", "1"]
        )
        assert other.read_bytes() != trace_file.read_bytes()

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["generate", "oracle", "x.trc"])


class TestInfo:
    def test_prints_summary(self, trace_file, capsys):
        assert main(["info", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "web" in out
        assert "Sequential" in out
        assert "Call" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.trc")]) == 1
        assert "error" in capsys.readouterr().err

    def test_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.trc"
        bad.write_bytes(b"garbage bytes here definitely not a trace")
        assert main(["info", str(bad)]) == 1


class TestHead:
    def test_prints_events(self, trace_file, capsys):
        assert main(["head", str(trace_file), "--count", "5"]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.strip()]
        assert len(lines) == 5
        assert "instr" in lines[0]
