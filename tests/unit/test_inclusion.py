"""Unit tests for the inclusive-L2 back-invalidation option."""

from repro.caches.config import CacheConfig, HierarchyConfig
from repro.cmp.system import System, SystemConfig
from repro.isa.kinds import TransitionKind
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace
from repro.util.units import KB

SEQ = int(TransitionKind.SEQUENTIAL)

#: a tiny hierarchy so the L2 thrashes quickly.
SMALL = HierarchyConfig(
    l1i=CacheConfig(2 * KB, 4, 64),
    l1d=CacheConfig(2 * KB, 4, 64),
    l2=CacheConfig(8 * KB, 4, 64),
)


def seq_trace(n_lines, start=0x10000, name="t", seed=0):
    events = [BlockEvent(start + i * 64, 16, SEQ, ()) for i in range(n_lines)]
    return Trace(name, seed, events)


def thrash_trace():
    """Walk far more distinct lines than the 8KB L2 holds, twice."""
    events = []
    for rep in range(3):
        for i in range(300):  # 300 lines ≫ 128-line L2
            events.append(BlockEvent(0x100000 + i * 64, 16, SEQ, ()))
    return Trace("thrash", 0, events)


class TestInclusion:
    def test_hook_wired_when_inclusive(self):
        system = System(
            SystemConfig(n_cores=2, hierarchy=SMALL, l2_inclusive=True),
            [seq_trace(4), seq_trace(4, start=0x90000)],
        )
        assert all(engine.l2_eviction_hook is not None for engine in system.engines)

    def test_hook_absent_by_default(self):
        system = System(
            SystemConfig(n_cores=1, hierarchy=SMALL), [seq_trace(4)]
        )
        assert system.engines[0].l2_eviction_hook is None

    def test_back_invalidation_increases_l1_misses(self):
        base = System(
            SystemConfig(n_cores=1, hierarchy=SMALL), [thrash_trace()]
        ).run()
        inclusive = System(
            SystemConfig(n_cores=1, hierarchy=SMALL, l2_inclusive=True),
            [thrash_trace()],
        ).run()
        # Under L2 thrash, inclusion can only add L1I misses.
        assert inclusive.cores[0].l1i_misses >= base.cores[0].l1i_misses

    def test_inclusion_property_holds_at_end(self):
        system = System(
            SystemConfig(n_cores=1, hierarchy=SMALL, l2_inclusive=True),
            [thrash_trace()],
        )
        system.run()
        l2_lines = {line for line, _ in system.l2.resident_lines()}
        for engine in system.engines:
            for line, _ in engine.l1i.resident_lines():
                assert line in l2_lines, f"L1I line {line:#x} not in L2"

    def _data_thrash_trace(self):
        """One hot code line + data traffic that floods the tiny L2."""
        events = [BlockEvent(0x100000, 16, SEQ, ())]
        for i in range(400):
            data = tuple(0x4000000 + (i * 8 + j) * 64 for j in range(8))
            events.append(BlockEvent(0x100000, 16, SEQ, data))
        return Trace("datathrash", 0, events)

    def test_non_inclusive_violates_inclusion_under_data_thrash(self):
        # Sanity check that inclusion is a real constraint: without the
        # hook, data traffic evicts the hot code line from the L2 while
        # the L1I (which the data never touches) retains it.
        system = System(
            SystemConfig(n_cores=1, hierarchy=SMALL), [self._data_thrash_trace()]
        )
        system.run()
        hot_line = 0x100000 >> 6
        assert system.engines[0].l1i.probe(hot_line) is not None
        assert system.l2.probe(hot_line) is None

    def test_inclusive_invalidates_hot_line_under_data_thrash(self):
        system = System(
            SystemConfig(n_cores=1, hierarchy=SMALL, l2_inclusive=True),
            [self._data_thrash_trace()],
        )
        system.run()
        hot_line = 0x100000 >> 6
        if system.l2.probe(hot_line) is None:
            assert system.engines[0].l1i.probe(hot_line) is None

    def test_cross_core_back_invalidation(self):
        # Core 0 and core 1 share one line; core 1's thrash evicts it from
        # the L2, which must invalidate core 0's L1I copy too.
        shared = seq_trace(1, start=0x100000, name="a")
        thrasher = Trace(
            "b",
            0,
            [BlockEvent(0x200000 + i * 64, 16, SEQ, ()) for i in range(300)],
        )
        system = System(
            SystemConfig(n_cores=2, hierarchy=SMALL, l2_inclusive=True),
            [shared, thrasher],
        )
        system.run()
        shared_line = 0x100000 >> 6
        if system.l2.probe(shared_line) is None:
            assert system.engines[0].l1i.probe(shared_line) is None
