"""Unit tests for the §2.4 used-bit re-prefetch filter."""

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.cmp.link import OffChipLink
from repro.core.engine import CoreEngine, EngineConfig
from repro.core.l2policy import NORMAL_INSTALL
from repro.isa.kinds import TransitionKind
from repro.prefetch.queue import PrefetchQueue
from repro.prefetch.registry import create_prefetcher
from repro.timing.params import TimingParams
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace

SEQ = int(TransitionKind.SEQUENTIAL)
CALL = int(TransitionKind.CALL)

TIMING = TimingParams(
    memory_latency=100,
    base_cpi_overhead=0.0,
    fetch_stall_exposed_fraction=1.0,
    prefetch_slot_rate=1.0,
)


def build(events, hint_filter):
    return CoreEngine(
        EngineConfig(l2_policy=NORMAL_INSTALL, useless_hint_filter=hint_filter),
        Trace("t", 0, [BlockEvent(*event) for event in events]),
        64,
        SetAssociativeCache("L1I", CacheConfig(1024, 4, 64)),
        SetAssociativeCache("L1D", CacheConfig(8 * 1024, 4, 64)),
        SetAssociativeCache("L2", CacheConfig(64 * 1024, 4, 64)),
        OffChipLink(64.0, 64),
        create_prefetcher("next-4-line"),
        PrefetchQueue(),
        TIMING,
    )


def wasteful_trace(repeats=6):
    """A pattern whose over-run prefetches are repeatedly useless.

    Each iteration runs a 2-line burst then jumps far away; next-4-line
    always over-runs past the burst, and the same useless lines get
    re-prefetched every iteration.  L1I thrash between visits evicts them
    unused, and the thrash region is made large enough (40+ distinct
    prefetch candidates) to rotate the 32-entry prefetch queue's filter
    memory — otherwise the queue's duplicate suppression would hide the
    re-prefetches from the L2 hint filter.
    """
    events = []
    for rep in range(repeats):
        events.append((0x10000, 16, CALL, ()))
        events.append((0x10040, 16, SEQ, ()))
        # Far-away thrash region: 40 lines mapping over the whole L1I.
        for i in range(40):
            events.append((0x80000 + i * 64, 16, CALL if i == 0 else SEQ, ()))
    return events


class TestUselessHintFilter:
    def test_filter_drops_re_prefetches(self):
        engine = build(wasteful_trace(), hint_filter=True)
        stats = engine.run()
        assert stats.prefetch.dropped_useless_hint > 0

    def test_no_filter_no_drops(self):
        engine = build(wasteful_trace(), hint_filter=False)
        stats = engine.run()
        assert stats.prefetch.dropped_useless_hint == 0

    def test_filter_reduces_issued_prefetches(self):
        with_filter = build(wasteful_trace(), hint_filter=True).run()
        without = build(wasteful_trace(), hint_filter=False).run()
        assert with_filter.prefetch.issued < without.prefetch.issued

    def test_demand_use_clears_hint(self):
        engine = build(wasteful_trace(), hint_filter=True)
        engine.run()
        # Any line that was demand-fetched must not carry the hint.
        demanded = {0x10000 >> 6, 0x10040 >> 6}
        for line in demanded:
            state = engine.l2.probe(line)
            if state is not None:
                assert not state.useless_hint

    def test_useful_prefetches_unaffected(self):
        # A long sequential run: every prefetch is useful, so the filter
        # must never fire and coverage must match the unfiltered engine.
        events = [(0x10000 + i * 64, 16, SEQ, ()) for i in range(40)]
        with_filter = build(events, hint_filter=True).run()
        without = build(events, hint_filter=False).run()
        assert with_filter.prefetch.dropped_useless_hint == 0
        assert with_filter.prefetch.useful == without.prefetch.useful
