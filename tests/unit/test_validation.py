"""Unit tests for repro.util.validation."""

import pytest

from repro.util.validation import check_positive, check_power_of_two, check_probability


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_nonpositive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 64, 8192])
    def test_accepts_powers(self, value):
        check_power_of_two("x", value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValueError, match="x"):
            check_power_of_two("x", value)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", value)
