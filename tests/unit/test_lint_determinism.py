"""R1 (determinism): ambient randomness and wall-clock reads are rejected,
and the seeded violation passes once the fix-it hint is applied."""

from __future__ import annotations

from repro.lint.rules import DeterminismRule
from tests.unit.conftest import write_tree_file

BAD_WALKER = """
    import random
    import time
    from os import urandom
    from datetime import datetime


    def jitter():
        datetime.now()
        return random.random() + time.time() + urandom(1)[0]
    """

#: the same module after applying R1's hint: explicit seeded streams from
#: repro.util.rng, no clock, no OS entropy.
FIXED_WALKER = """
    from repro.util.rng import SplitMix64


    def jitter(seed):
        return SplitMix64(seed).random()
    """


def test_base_tree_is_clean(lint_tree):
    assert DeterminismRule().check(lint_tree()) == []


def test_all_forbidden_forms_are_reported(lint_tree):
    project = lint_tree({"src/repro/core/walker.py": BAD_WALKER})
    violations = DeterminismRule().check(project)
    messages = [violation.message for violation in violations]
    assert any("'random'" in message for message in messages)
    assert any("'os.urandom'" in message for message in messages)
    assert any("'datetime.datetime.now'" in message for message in messages)
    assert any("'time.time'" in message for message in messages)
    assert any("'random.random'" in message for message in messages)
    assert all(
        violation.path == "src/repro/core/walker.py" for violation in violations
    )
    assert all("repro.util.rng" in violation.hint for violation in violations)


def test_fix_it_hint_resolves_the_violation(lint_tree):
    project = lint_tree({"src/repro/core/walker.py": BAD_WALKER})
    assert DeterminismRule().check(project) != []
    project = write_tree_file(project.root, "src/repro/core/walker.py", FIXED_WALKER)
    assert DeterminismRule().check(project) == []


def test_aliased_imports_are_still_caught(lint_tree):
    project = lint_tree(
        {
            "src/repro/core/walker.py": """
            import time as clock


            def stamp():
                return clock.time()
            """
        }
    )
    violations = DeterminismRule().check(project)
    assert len(violations) == 1
    assert "time.time" in violations[0].message


def test_allowlist_exempts_a_module_explicitly(lint_tree):
    project = lint_tree({"src/repro/core/walker.py": BAD_WALKER})
    rule = DeterminismRule(
        allowlist={"src/repro/core/walker.py": "test exemption with a reason"}
    )
    assert rule.check(project) == []
    # The exemption is narrow: a second bad module still fails.
    project = write_tree_file(
        project.root, "src/repro/core/other.py", "import random\n"
    )
    assert rule.check(project) != []


def test_benign_time_and_os_uses_pass(lint_tree):
    project = lint_tree(
        {
            "src/repro/core/walker.py": """
            import os
            import time


            def configure():
                time.sleep(0)
                return os.environ.get("REPRO_PROFILE")
            """
        }
    )
    assert DeterminismRule().check(project) == []


def test_numpy_random_forbidden_but_numpy_allowed(lint_tree):
    """Vectorized engine code may use numpy freely — except numpy.random."""
    project = lint_tree(
        {
            "src/repro/core/vectorized.py": """
            import numpy as np


            def decode(buffer):
                return np.frombuffer(buffer, dtype=np.int64).tolist()
            """
        }
    )
    assert DeterminismRule().check(project) == []


def test_numpy_random_import_forms_are_reported(lint_tree):
    project = lint_tree(
        {
            "src/repro/core/vectorized.py": """
            import numpy as np
            import numpy.random
            from numpy.random import default_rng


            def sample():
                return np.random.default_rng().random() + default_rng().random()
            """
        }
    )
    violations = DeterminismRule().check(project)
    messages = [violation.message for violation in violations]
    assert any("numpy.random" in message and "import" in message for message in messages)
    assert any("'numpy.random.default_rng'" in message for message in messages)
    # three import-time findings + the attribute use
    assert len(violations) >= 3
