"""R7 (env registry): every ``REPRO_*`` environment read routes through a
declared ``repro.envvars`` constant, and the docs table matches the
registry.  Also covers the attached autofix end to end."""

from __future__ import annotations

from repro.lint.engine import Project
from repro.lint.fixes import apply_fixes
from repro.lint.rules import (
    R7_TABLE_BEGIN,
    R7_TABLE_END,
    EnvRegistryRule,
    _render_env_table,
)

REGISTRY_MODULE = "src/repro/envvars.py"
READER_MODULE = "src/repro/eval/report.py"

REGISTRY_OK = """
    from typing import NamedTuple, Tuple

    REPRO_PROFILE = "REPRO_PROFILE"
    REPRO_JOBS = "REPRO_JOBS"


    class EnvVar(NamedTuple):
        name: str
        default: str
        description: str


    REGISTRY: Tuple[EnvVar, ...] = (
        EnvVar(REPRO_PROFILE, "`default`", "Experiment scale."),
        EnvVar(REPRO_JOBS, "CPU count", "Worker processes."),
    )
    """

#: the rows REGISTRY_OK statically extracts to — used by the docs tests.
REGISTRY_OK_ROWS = (
    ("REPRO_PROFILE", "`default`", "Experiment scale."),
    ("REPRO_JOBS", "CPU count", "Worker processes."),
)

CLEAN_READER = """
    import os

    from repro.envvars import REPRO_PROFILE


    def scale():
        return os.environ.get(REPRO_PROFILE, "default")
    """


def check(project: Project):
    return EnvRegistryRule().check(project)


def docs_with_table(table: str) -> str:
    return f"# Performance\n\n{R7_TABLE_BEGIN}\n{table}\n{R7_TABLE_END}\n"


def test_clean_registry_and_constant_routed_access(lint_tree):
    project = lint_tree(
        {REGISTRY_MODULE: REGISTRY_OK, READER_MODULE: CLEAN_READER}
    )
    assert check(project) == []


def test_undeclared_literal_key_is_flagged_without_a_fix(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            READER_MODULE: """
                import os

                def flag():
                    return os.environ.get("REPRO_NOPE", "")
                """,
        }
    )
    violations = check(project)
    assert len(violations) == 1
    assert violations[0].path == READER_MODULE
    assert "'REPRO_NOPE'" in violations[0].message
    assert "not declared" in violations[0].message
    assert violations[0].fix is None  # nothing mechanical to rewrite to


def test_declared_literal_key_carries_an_autofix(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            READER_MODULE: """
                import os

                def jobs():
                    return os.environ.get("REPRO_JOBS", "1")
                """,
        }
    )
    violations = check(project)
    assert len(violations) == 1
    finding = violations[0]
    assert "string literal instead of its registry constant" in finding.message
    assert finding.fix is not None
    assert finding.fix.imports == ("from repro.envvars import REPRO_JOBS",)

    applied = apply_fixes(project, violations)
    assert applied == {READER_MODULE: 1}
    repaired = project.source(READER_MODULE)
    assert "from repro.envvars import REPRO_JOBS" in repaired
    assert 'os.environ.get(REPRO_JOBS, "1")' in repaired
    assert '"REPRO_JOBS"' not in repaired
    assert check(Project(project.root)) == []


def test_environ_subscript_and_membership_are_covered(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            READER_MODULE: """
                import os

                def jobs():
                    if "REPRO_JOBS" in os.environ:
                        return os.environ["REPRO_PROFILE"]
                    return ""
                """,
        }
    )
    violations = check(project)
    assert len(violations) == 2
    assert all("string literal" in v.message for v in violations)
    assert all(v.fix is not None for v in violations)
    apply_fixes(project, violations)
    assert check(Project(project.root)) == []


def test_foreign_alias_key_is_flagged(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            READER_MODULE: """
                import os

                from repro.other import KNOB


                def read():
                    return os.environ.get(KNOB)
                """,
        }
    )
    violations = check(project)
    assert len(violations) == 1
    assert "resolves to 'repro.other.KNOB'" in violations[0].message


def test_dynamic_key_is_flagged(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            READER_MODULE: """
                import os

                def read(suffix):
                    return os.environ.get("REPRO_" + suffix)
                """,
        }
    )
    violations = check(project)
    assert len(violations) == 1
    assert "dynamic expression" in violations[0].message


def test_unresolvable_name_key_is_flagged(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            READER_MODULE: """
                import os

                def read(key):
                    return os.environ.get(key)
                """,
        }
    )
    violations = check(project)
    assert len(violations) == 1
    assert "cannot be statically resolved" in violations[0].message


def test_module_constant_spelling_is_flagged(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            READER_MODULE: """
                import os

                PROFILE_ENV = "REPRO_PROFILE"


                def read():
                    return os.environ.get(PROFILE_ENV)
                """,
        }
    )
    violations = check(project)
    assert len(violations) == 1
    assert "'PROFILE_ENV'" in violations[0].message
    assert "spells environment variable 'REPRO_PROFILE'" in violations[0].message
    # the repair pattern (alias the registry constant) stays clean:
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            READER_MODULE: """
                import os

                from repro.envvars import REPRO_PROFILE

                PROFILE_ENV = REPRO_PROFILE


                def read():
                    return os.environ.get(PROFILE_ENV)
                """,
        }
    )
    assert check(project) == []


def test_repro_reads_without_a_registry_module_fail_project_wide(lint_tree):
    project = lint_tree(
        {
            READER_MODULE: """
                import os

                def read():
                    return os.environ.get("REPRO_JOBS")
                """,
        }
    )
    violations = check(project)
    assert any(
        v.path == "" and "does not exist" in v.message for v in violations
    )


def test_non_repro_variables_are_out_of_scope(lint_tree):
    project = lint_tree(
        {
            READER_MODULE: """
                import os

                def read():
                    return os.environ.get("HOME", "/")
                """,
        }
    )
    # no registry module, no REPRO_* reads: nothing for R7 anywhere.
    assert check(project) == []


# --------------------------------------------------------------------- #
# registry-module structural checks
# --------------------------------------------------------------------- #


def test_constant_value_must_equal_its_name(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: """
                REPRO_JOBS = "REPRO_JOB"

                REGISTRY = ()
                """
        }
    )
    violations = check(project)
    assert any(
        "equal to its own name" in v.message and v.path == REGISTRY_MODULE
        for v in violations
    )


def test_registry_tuple_must_exist(lint_tree):
    project = lint_tree(
        {REGISTRY_MODULE: 'REPRO_JOBS = "REPRO_JOBS"\n'}
    )
    violations = check(project)
    assert any("no literal REGISTRY tuple" in v.message for v in violations)


def test_entry_without_constant_is_flagged(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: """
                REGISTRY = (
                    EnvVar("REPRO_GONE", "unset", "orphaned entry"),
                )
                """
        }
    )
    violations = check(project)
    assert any(
        "REGISTRY entry 'REPRO_GONE' has no matching module constant"
        in v.message
        for v in violations
    )


def test_constant_without_entry_is_flagged(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: """
                REPRO_JOBS = "REPRO_JOBS"

                REGISTRY = ()
                """
        }
    )
    violations = check(project)
    assert any(
        "registry constant 'REPRO_JOBS' has no REGISTRY metadata entry"
        in v.message
        for v in violations
    )


def test_duplicate_entry_is_flagged(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: """
                REPRO_JOBS = "REPRO_JOBS"

                REGISTRY = (
                    EnvVar(REPRO_JOBS, "1", "first"),
                    EnvVar(REPRO_JOBS, "1", "second"),
                )
                """
        }
    )
    violations = check(project)
    assert any("declares 'REPRO_JOBS' twice" in v.message for v in violations)


def test_non_literal_metadata_is_flagged(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: """
                REPRO_JOBS = "REPRO_JOBS"

                DEFAULT = "1"

                REGISTRY = (
                    EnvVar(REPRO_JOBS, DEFAULT, "worker count"),
                )
                """
        }
    )
    violations = check(project)
    assert any(
        "must be string literals" in v.message for v in violations
    )


# --------------------------------------------------------------------- #
# docs table sync
# --------------------------------------------------------------------- #


def test_docs_table_in_sync_passes(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            "docs/performance.md": docs_with_table(
                _render_env_table(REGISTRY_OK_ROWS)
            ),
        }
    )
    assert check(project) == []


def test_docs_table_out_of_sync_fails(lint_tree):
    stale = _render_env_table(
        (("REPRO_PROFILE", "`default`", "Experiment scale."),)
    )
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            "docs/performance.md": docs_with_table(stale),
        }
    )
    violations = check(project)
    assert len(violations) == 1
    assert violations[0].path == "docs/performance.md"
    assert "out of sync" in violations[0].message
    assert "gen_env_docs" in violations[0].hint


def test_docs_without_markers_fail(lint_tree):
    project = lint_tree(
        {
            REGISTRY_MODULE: REGISTRY_OK,
            "docs/performance.md": "# Performance\n\nno table here\n",
        }
    )
    violations = check(project)
    assert len(violations) == 1
    assert "markers are missing" in violations[0].message


def test_structural_violations_gate_the_docs_check(lint_tree):
    # A broken registry reports its own problem; the (meaningless) table
    # comparison is suppressed rather than piling on.
    project = lint_tree(
        {
            REGISTRY_MODULE: 'REPRO_JOBS = "REPRO_JOBS"\n',
            "docs/performance.md": "# Performance\n\nno table here\n",
        }
    )
    violations = check(project)
    assert all(v.path == REGISTRY_MODULE for v in violations)


def test_live_registry_matches_live_docs():
    """Acceptance: the real registry, docs table and lint agree."""
    from pathlib import Path

    project = Project(Path(__file__).resolve().parents[2])
    assert EnvRegistryRule().check(project) == []
