"""Unit tests for the data-access stream (repro.trace.synth.datagen)."""

import pytest

from repro.trace.synth.datagen import DATA_BASE, DataStream
from repro.trace.synth.params import WorkloadProfile


@pytest.fixture
def profile():
    return WorkloadProfile(
        name="d",
        data_rate=0.5,
        p_reuse=0.8,
        reuse_window_lines=64,
        hot_bytes=64 * 1024,
        cold_bytes=1024 * 1024,
        p_cold=0.2,
    )


class TestDataStream:
    def test_rate_matches_profile(self, profile):
        stream = DataStream(profile, seed=1)
        total = sum(len(stream.accesses_for_block(10)) for _ in range(2000))
        rate = total / 20000
        assert 0.45 < rate < 0.55

    def test_deterministic(self, profile):
        a = DataStream(profile, seed=9)
        b = DataStream(profile, seed=9)
        for _ in range(100):
            assert a.accesses_for_block(8) == b.accesses_for_block(8)

    def test_seed_changes_stream(self, profile):
        a = DataStream(profile, seed=9)
        b = DataStream(profile, seed=10)
        streams = [a.accesses_for_block(8) for _ in range(50)], [
            b.accesses_for_block(8) for _ in range(50)
        ]
        assert streams[0] != streams[1]

    def test_addresses_above_data_base(self, profile):
        stream = DataStream(profile, seed=2)
        for _ in range(500):
            for addr in stream.accesses_for_block(10):
                assert addr >= DATA_BASE

    def test_addresses_within_declared_regions(self, profile):
        stream = DataStream(profile, seed=3)
        summary = stream.region_summary()
        regions = [
            (summary["hot_base"], summary["hot_base"] + summary["hot_bytes"] + 64),
            (summary["cold_base"], summary["cold_base"] + summary["cold_bytes"] + 64),
            (
                summary["cold_private_base"],
                summary["cold_private_base"] + summary["cold_private_bytes"] + 64,
            ),
        ]
        for _ in range(1000):
            for addr in stream.accesses_for_block(10):
                assert any(lo <= addr < hi for lo, hi in regions)

    def test_private_cold_region_distinct_per_core(self, profile):
        a = DataStream(profile, seed=3, core=0).region_summary()
        b = DataStream(profile, seed=3, core=1).region_summary()
        assert a["cold_private_base"] != b["cold_private_base"]
        assert a["cold_base"] == b["cold_base"]  # buffer pool shared
        assert a["hot_base"] != b["hot_base"]  # session data private

    def test_reuse_produces_repeats(self, profile):
        stream = DataStream(profile, seed=4)
        lines = []
        for _ in range(2000):
            lines.extend(addr >> 6 for addr in stream.accesses_for_block(10))
        distinct = len(set(lines))
        # With p_reuse=0.8, distinct lines should be far fewer than accesses.
        assert distinct < len(lines) * 0.45

    def test_zero_instruction_block_possible(self, profile):
        stream = DataStream(profile, seed=5)
        # A 1-instruction block at rate 0.5 often yields no accesses.
        counts = {len(stream.accesses_for_block(1)) for _ in range(200)}
        assert 0 in counts

    def test_region_summary_keys(self, profile):
        summary = DataStream(profile, seed=6).region_summary()
        assert set(summary) == {
            "hot_base",
            "hot_bytes",
            "cold_base",
            "cold_bytes",
            "cold_private_base",
            "cold_private_bytes",
            "reuse_window_lines",
        }

    def test_cold_fraction_respected(self, profile):
        stream = DataStream(profile, seed=7)
        summary = stream.region_summary()
        cold_lo = summary["cold_base"]
        total = 0
        cold = 0
        for _ in range(4000):
            for addr in stream.accesses_for_block(10):
                total += 1
                if addr >= cold_lo:
                    cold += 1
        # Fresh accesses are 20% of the stream; of those 20% are cold, but
        # reused cold lines inflate the total. Just check it is a modest
        # minority and nonzero.
        assert 0 < cold / total < 0.5
