"""R8 (determinism taint): values originating at forbidden sources must
never flow into RunSpec-keyed state.

These tests exercise the def-use dataflow in :mod:`repro.lint.dataflow`
through the rule: direct tainted arguments, taint carried through
assignments, sanitizers, unordered-set iteration, and loop back-edges.
"""

from __future__ import annotations

from repro.lint.rules import DeterminismTaintRule

TAINTED_MODULE = "src/repro/eval/driver.py"


def check(project):
    return DeterminismTaintRule().check(project)


def one(violations):
    assert len(violations) == 1, [v.format() for v in violations]
    return violations[0]


def test_base_tree_is_taint_free(lint_tree):
    assert check(lint_tree()) == []


def test_clock_value_through_a_variable_reaches_runspec(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                import time

                from repro.eval.runspec import RunSpec


                def make_spec(workload):
                    seed = int(time.time())
                    return RunSpec(workload=workload, n_cores=1, seed=seed)
                """
        }
    )
    finding = one(check(project))
    assert finding.path == TAINTED_MODULE
    assert "value from time.time()" in finding.message
    assert "flows into RunSpec(...)" in finding.message
    assert "via 'seed'" in finding.message
    assert "nondeterministic" in finding.message


def test_direct_tainted_argument_is_flagged(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                import time

                from repro.eval.runspec import RunSpec


                def make_spec(workload):
                    return RunSpec(workload=workload, n_cores=1,
                                   seed=time.time_ns())
                """
        }
    )
    finding = one(check(project))
    assert "time.time_ns()" in finding.message
    assert "via" not in finding.message  # no variable carried it


def test_random_module_call_reaches_derive_seed(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                import random

                from repro.util.rng import derive_seed


                def pick(base):
                    draw = random.randint(0, 10)
                    return derive_seed(base, draw)
                """
        }
    )
    finding = one(check(project))
    assert "random.randint()" in finding.message
    assert "derive_seed(...)" in finding.message


def test_set_iteration_reaches_run_system(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                from repro.eval.runner import run_system


                def sweep():
                    workloads = {"db", "web"}
                    results = []
                    for workload in workloads:
                        results.append(run_system(workload, 1))
                    return results
                """
        }
    )
    finding = one(check(project))
    assert "iteration over an unordered set" in finding.message
    assert "run_system(...)" in finding.message
    assert "via 'workload'" in finding.message


def test_sorted_sanitizes_set_iteration(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                from repro.eval.runner import run_system


                def sweep():
                    workloads = {"db", "web"}
                    results = []
                    for workload in sorted(workloads):
                        results.append(run_system(workload, 1))
                    return results
                """
        }
    )
    assert check(project) == []


def test_sanitizer_launders_clock_taint(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                import time

                from repro.eval.runspec import RunSpec


                def make_spec(samples):
                    noisy = [time.time() for _ in samples]
                    count = len(noisy)
                    return RunSpec(workload="db", n_cores=1, seed=count)
                """
        }
    )
    assert check(project) == []


def test_reassignment_clears_taint(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                import time

                from repro.eval.runspec import RunSpec


                def make_spec():
                    seed = int(time.time())
                    seed = 7
                    return RunSpec(workload="db", n_cores=1, seed=seed)
                """
        }
    )
    assert check(project) == []


def test_loop_carried_taint_is_found_on_the_second_pass(lint_tree):
    # ``seed`` is tainted *after* the sink in source order; only the
    # second walk (with the first walk's taint state) sees the back-edge.
    project = lint_tree(
        {
            TAINTED_MODULE: """
                import time

                from repro.eval.runspec import RunSpec


                def loop(n, seed):
                    spec = None
                    for _ in range(n):
                        spec = RunSpec(workload="db", n_cores=1, seed=seed)
                        seed = int(time.time())
                    return spec
                """
        }
    )
    finding = one(check(project))
    assert "time.time()" in finding.message
    assert "via 'seed'" in finding.message


def test_reinitialized_loop_variable_is_clean(lint_tree):
    # Re-initializing before the loop cuts the back-edge: the second
    # pass re-clears ``seed`` at the top, so no flow survives.
    project = lint_tree(
        {
            TAINTED_MODULE: """
                import time

                from repro.eval.runspec import RunSpec


                def loop(n):
                    seed = 0
                    spec = None
                    for _ in range(n):
                        spec = RunSpec(workload="db", n_cores=1, seed=seed)
                        seed = int(time.time())
                        seed = 0
                    return spec
                """
        }
    )
    assert check(project) == []


def test_module_level_flows_are_scanned(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                import time

                from repro.eval.runspec import RunSpec

                BOOT_SEED = int(time.time())
                SPEC = RunSpec(workload="db", n_cores=1, seed=BOOT_SEED)
                """
        }
    )
    finding = one(check(project))
    assert "via 'BOOT_SEED'" in finding.message


def test_allowlist_suppresses_a_file(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                import time

                from repro.eval.runspec import RunSpec


                def make_spec():
                    return RunSpec(workload="db", n_cores=1,
                                   seed=time.time_ns())
                """
        }
    )
    assert check(project) != []
    allowing = DeterminismTaintRule(
        allowlist={TAINTED_MODULE: "fixture exception"}
    )
    assert allowing.check(project) == []


def test_untainted_spec_construction_is_clean(lint_tree):
    project = lint_tree(
        {
            TAINTED_MODULE: """
                from repro.eval.runspec import RunSpec
                from repro.util.rng import derive_seed


                def make_spec(workload, base_seed, core):
                    return RunSpec(workload=workload, n_cores=1,
                                   seed=derive_seed(base_seed, core))
                """
        }
    )
    assert check(project) == []
