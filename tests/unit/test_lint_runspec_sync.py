"""R3 (RunSpec sync): run_system parameters must be carried by RunSpec, and
every RunSpec field must feed the cache hash via canonical_dict."""

from __future__ import annotations

from repro.lint.rules import RunSpecSyncRule
from tests.unit.conftest import write_tree_file

RUNNER_WITH_NEW_PARAM = """
    def run_system(workload, n_cores, prefetcher="none", seed=0,
                   l2_latency=11, prefetcher_factory=None):
        return (workload, n_cores, prefetcher, seed, l2_latency,
                prefetcher_factory)
    """

#: the fix R3's hint asks for: a matching field plus a canonical_dict entry.
RUNSPEC_WITH_NEW_FIELD = """
    class RunSpec:
        workload: str
        n_cores: int
        prefetcher: str = "none"
        seed: int = 0
        l2_latency: int = 11

        def canonical_dict(self):
            return {
                "workload": self.workload,
                "n_cores": self.n_cores,
                "prefetcher": self.prefetcher,
                "seed": self.seed,
                "l2_latency": self.l2_latency,
            }
    """

RUNSPEC_FIELD_NOT_HASHED = """
    class RunSpec:
        workload: str
        n_cores: int
        prefetcher: str = "none"
        seed: int = 0

        def canonical_dict(self):
            return {
                "workload": self.workload,
                "n_cores": self.n_cores,
                "prefetcher": self.prefetcher,
            }
    """


def test_base_tree_is_clean(lint_tree):
    assert RunSpecSyncRule().check(lint_tree()) == []


def test_new_run_system_parameter_fails(lint_tree):
    project = lint_tree({"src/repro/eval/runner.py": RUNNER_WITH_NEW_PARAM})
    violations = RunSpecSyncRule().check(project)
    assert len(violations) == 1
    assert "'l2_latency'" in violations[0].message
    assert "no RunSpec field" in violations[0].message
    assert "add a 'l2_latency' field" in violations[0].hint


def test_fix_it_hint_resolves_the_violation(lint_tree):
    project = lint_tree({"src/repro/eval/runner.py": RUNNER_WITH_NEW_PARAM})
    assert RunSpecSyncRule().check(project) != []
    project = write_tree_file(
        project.root, "src/repro/eval/runspec.py", RUNSPEC_WITH_NEW_FIELD
    )
    assert RunSpecSyncRule().check(project) == []


def test_field_missing_from_canonical_dict_fails(lint_tree):
    project = lint_tree({"src/repro/eval/runspec.py": RUNSPEC_FIELD_NOT_HASHED})
    violations = RunSpecSyncRule().check(project)
    assert len(violations) == 1
    assert "'seed'" in violations[0].message
    assert "canonical_dict" in violations[0].message
    assert "collide" in violations[0].message


def test_prefetcher_factory_hole_is_an_explicit_allowlist(lint_tree):
    project = lint_tree()
    # Default allowlist carries the documented hole...
    assert RunSpecSyncRule().check(project) == []
    # ...and removing it makes the hole visible again.
    violations = RunSpecSyncRule(allowlist={}).check(project)
    assert len(violations) == 1
    assert "'prefetcher_factory'" in violations[0].message


RUNNER_WITH_BACKEND = """
    def run_system(workload, n_cores, prefetcher="none", seed=0,
                   prefetcher_factory=None, engine_backend="auto"):
        return (workload, n_cores, prefetcher, seed, prefetcher_factory,
                engine_backend)
    """

#: carries the field but deliberately leaves it out of canonical_dict —
#: the real tree's shape for result-neutral execution knobs.
RUNSPEC_WITH_NON_KEYED_BACKEND = """
    class RunSpec:
        workload: str
        n_cores: int
        prefetcher: str = "none"
        seed: int = 0
        engine_backend: str = "auto"

        def canonical_dict(self):
            return {
                "workload": self.workload,
                "n_cores": self.n_cores,
                "prefetcher": self.prefetcher,
                "seed": self.seed,
            }
    """


def test_non_keyed_allowlist_exempts_engine_backend(lint_tree):
    """engine_backend may skip canonical_dict — identical results must
    share one cache entry across backends."""
    project = lint_tree(
        {
            "src/repro/eval/runner.py": RUNNER_WITH_BACKEND,
            "src/repro/eval/runspec.py": RUNSPEC_WITH_NON_KEYED_BACKEND,
        }
    )
    assert RunSpecSyncRule().check(project) == []


def test_non_keyed_exemption_is_an_explicit_allowlist(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/runner.py": RUNNER_WITH_BACKEND,
            "src/repro/eval/runspec.py": RUNSPEC_WITH_NON_KEYED_BACKEND,
        }
    )
    violations = RunSpecSyncRule(non_keyed_allowlist={}).check(project)
    assert len(violations) == 1
    assert "'engine_backend'" in violations[0].message
    assert "canonical_dict" in violations[0].message


def test_non_keyed_allowlist_is_narrow(lint_tree):
    """The exemption names engine_backend only; other unhashed fields
    still fail."""
    project = lint_tree({"src/repro/eval/runspec.py": RUNSPEC_FIELD_NOT_HASHED})
    violations = RunSpecSyncRule().check(project)
    assert len(violations) == 1
    assert "'seed'" in violations[0].message
