"""Unit tests for the fetch-stream analysis (repro.trace.analysis)."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.trace.analysis import analyze_stream
from repro.trace.record import BlockEvent

SEQ = int(TransitionKind.SEQUENTIAL)
TF = int(TransitionKind.COND_TAKEN_FWD)
CALL = int(TransitionKind.CALL)


def events(*specs):
    return [BlockEvent(addr, ninstr, kind, ()) for addr, ninstr, kind in specs]


class TestTfDistances:
    def test_distance_histogram(self):
        trace = events(
            (0x1000, 16, SEQ),
            (0x1080, 16, TF),   # +2 lines
            (0x1200, 16, TF),   # +6 lines
        )
        analysis = analyze_stream(trace)
        assert analysis.tf_distance_histogram == {2: 1, 6: 1}

    def test_tf_within(self):
        trace = events(
            (0x1000, 16, SEQ),
            (0x1080, 16, TF),   # +2
            (0x1200, 16, TF),   # +6
            (0x1280, 16, TF),   # +2
        )
        analysis = analyze_stream(trace)
        assert analysis.tf_within(4) == pytest.approx(2 / 3)
        assert analysis.tf_within(16) == pytest.approx(1.0)

    def test_distances_clipped_at_16(self):
        trace = events((0x1000, 16, SEQ), (0x9000, 16, TF))
        analysis = analyze_stream(trace)
        assert analysis.tf_distance_histogram == {16: 1}


class TestDiscontinuities:
    def test_counts_distinct_pairs_and_sources(self):
        trace = events(
            (0x1000, 16, SEQ),
            (0x8000, 16, CALL),  # source 0x40, target 0x200
            (0x1000, 16, TF),    # backward... source 0x200 -> 0x40
            (0x8000, 16, CALL),  # repeat of the first pair
        )
        analysis = analyze_stream(trace)
        assert analysis.discontinuities == 3
        assert analysis.distinct_sources == 2
        assert analysis.distinct_discontinuity_pairs == 2

    def test_monomorphic_detection(self):
        trace = events(
            (0x1000, 16, SEQ),
            (0x8000, 16, CALL),
            (0x1000, 16, CALL),
            (0x8000, 16, CALL),
        )
        analysis = analyze_stream(trace)
        assert analysis.monomorphic_fraction == 1.0
        assert analysis.dominant_target_fraction == 1.0

    def test_polymorphic_source(self):
        # Source line 0x40 goes to two different distant targets equally.
        trace = events(
            (0x1000, 16, SEQ),
            (0x8000, 16, CALL),
            (0x1000, 16, CALL),
            (0x9000, 16, CALL),
            (0x1000, 16, CALL),
            (0x8000, 16, CALL),
            (0x1000, 16, CALL),
            (0x9000, 16, CALL),
        )
        analysis = analyze_stream(trace)
        # Source 0x1000>>6 alternates between two targets: not monomorphic.
        assert analysis.monomorphic_fraction < 1.0

    def test_sequential_transitions_not_discontinuities(self):
        trace = events((0x1000, 16, SEQ), (0x1040, 16, SEQ), (0x1080, 16, SEQ))
        analysis = analyze_stream(trace)
        assert analysis.discontinuities == 0


class TestRunLengths:
    def test_run_length_histogram(self):
        trace = events(
            (0x1000, 16, SEQ),
            (0x1040, 16, SEQ),
            (0x1080, 16, SEQ),   # run of 2 (+1 transitions)
            (0x8000, 16, CALL),
            (0x8040, 16, SEQ),   # run of 1
        )
        analysis = analyze_stream(trace)
        assert analysis.run_length_histogram == {2: 1, 1: 1}
        assert analysis.mean_run_length == pytest.approx(1.5)

    def test_summary_renders(self):
        trace = events((0x1000, 16, SEQ), (0x8000, 16, CALL))
        text = analyze_stream(trace).summary()
        assert "discontinuities" in text
        assert "monomorphic" in text


class TestPaperClaimsOnSyntheticWorkloads:
    """The two §4/§5 stream claims, verified on the shipped workloads."""

    @pytest.fixture(scope="class")
    def analysis(self):
        from repro.trace.synth.workloads import generate_trace

        trace = generate_trace("db", seed=7, n_instructions=150_000)
        return analyze_stream(trace.events)

    def test_most_tf_targets_within_4_lines(self, analysis):
        assert analysis.tf_within(4) > 0.5

    def test_majority_of_discontinuities_single_target(self, analysis):
        assert analysis.monomorphic_fraction > 0.5
        assert analysis.dominant_target_fraction > 0.6
