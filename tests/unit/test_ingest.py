"""External PC-stream ingestion: parsing, classification, persistence and
round-trip bit-identity through the compiled-trace store."""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa.kinds import TransitionKind
from repro.trace import ingest
from repro.trace import store as trace_store
from repro.trace.compiled import CompiledTrace
from repro.trace.io import read_trace

SEQ = int(TransitionKind.SEQUENTIAL)
CALL = int(TransitionKind.CALL)
RET = int(TransitionKind.RETURN)
COND_FWD = int(TransitionKind.COND_TAKEN_FWD)
COND_BWD = int(TransitionKind.COND_TAKEN_BWD)
JUMP = int(TransitionKind.JUMP)


@pytest.fixture(autouse=True)
def isolated_dirs(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EXTERNAL_TRACES", str(tmp_path / "external"))
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))


class TestParsing:
    def test_text_accepts_prefixes_comments_and_blanks(self):
        lines = ["0x1000", "", "# header", "1004  # inline", "  0x1008  "]
        assert ingest.parse_text(lines) == [0x1000, 0x1004, 0x1008]

    def test_text_bad_token_names_the_line(self):
        with pytest.raises(ingest.IngestError, match="line 2.*'zz'"):
            ingest.parse_text(["0x1000", "zz"])

    def test_text_rejects_out_of_range_pc(self):
        with pytest.raises(ingest.IngestError, match="u64 range"):
            ingest.parse_text(["1" + "0" * 16])

    def test_binary_roundtrip(self):
        pcs = [0x1000, 0x1004, 0xFFFF_FFFF_FFFF_FFFF]
        blob = struct.pack(f"<{len(pcs)}Q", *pcs)
        assert ingest.parse_binary(blob) == pcs

    def test_binary_rejects_ragged_length(self):
        with pytest.raises(ingest.IngestError, match="multiple of 8"):
            ingest.parse_binary(b"\x00" * 12)

    def test_empty_stream_rejected(self):
        with pytest.raises(ingest.IngestError, match="empty"):
            ingest.events_from_pcs([])

    def test_invalid_name_rejected(self):
        with pytest.raises(ingest.IngestError, match="invalid external trace name"):
            ingest.validate_name("../evil")


class TestClassification:
    def test_sequential_run_collapses_to_one_block(self):
        events = ingest.events_from_pcs([0x1000 + 4 * i for i in range(10)])
        assert len(events) == 1
        assert events[0].addr == 0x1000
        assert events[0].ninstr == 10
        assert events[0].kind == SEQ

    def test_call_and_return(self):
        pcs = [0x1000, 0x1004, 0x9000, 0x9004, 0x1008, 0x100C]
        events = ingest.events_from_pcs(pcs)
        assert [(e.addr, e.ninstr, e.kind) for e in events] == [
            (0x1000, 2, SEQ),
            (0x9000, 2, CALL),
            (0x1008, 2, RET),
        ]

    def test_short_forward_branch_is_conditional(self):
        events = ingest.events_from_pcs([0x1000, 0x1100])
        assert events[1].kind == COND_FWD

    def test_backward_branch_is_loop(self):
        events = ingest.events_from_pcs([0x1000, 0x1004, 0x1000])
        assert events[1].kind == COND_BWD

    def test_far_backward_transfer_is_jump(self):
        events = ingest.events_from_pcs([0x90000, 0x1000])
        assert events[1].kind == JUMP

    def test_instruction_count_is_preserved(self):
        pcs = [0x1000, 0x1004, 0x9000, 0x1008, 0x2000, 0x2004]
        events = ingest.events_from_pcs(pcs)
        assert sum(e.ninstr for e in events) == len(pcs)


class TestPersistence:
    def test_ingest_file_writes_trace_and_manifest(self, tmp_path):
        stream = tmp_path / "s.txt"
        stream.write_text("0x1000\n0x1004\n0x9000\n")
        manifest = ingest.ingest_file(stream, name="s")
        assert manifest["n_pcs"] == 3
        assert manifest["format"] == "text"
        assert ingest.external_exists("s")
        assert ingest.available_external() == ["s"]
        on_disk = json.loads(ingest.manifest_path("s").read_text())
        assert on_disk["sha256"] == manifest["sha256"]

    def test_reingest_unchanged_is_noop(self, tmp_path):
        stream = tmp_path / "s.txt"
        stream.write_text("0x1000\n")
        first = ingest.ingest_file(stream, name="s")
        again = ingest.ingest_file(stream, name="s")
        assert "unchanged" not in first
        assert again["unchanged"] is True

    def test_changed_source_reingests(self, tmp_path):
        stream = tmp_path / "s.txt"
        stream.write_text("0x1000\n")
        first = ingest.ingest_file(stream, name="s")
        stream.write_text("0x2000\n0x2004\n")
        second = ingest.ingest_file(stream, name="s")
        assert second["sha256"] != first["sha256"]
        assert "unchanged" not in second
        assert ingest.load_external("s").events[0].addr == 0x2000

    def test_load_missing_raises(self):
        with pytest.raises(ingest.IngestError, match="not ingested"):
            ingest.load_external("ghost")


# A plausible PC-stream shape: short sequential runs stitched by taken
# branches of every distance class (the absolute PCs stay within u64).
_pc_runs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**40),  # run start
        st.integers(min_value=1, max_value=20),  # run length
    ),
    min_size=1,
    max_size=30,
)


@st.composite
def pc_streams(draw):
    pcs = []
    for start, length in draw(_pc_runs):
        pcs.extend(start + 4 * i for i in range(length))
    return pcs


class TestRoundTrip:
    # the autouse env-isolation fixture is function-scoped by design; the
    # store path is collision-safe across examples (atomic overwrite).
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(stream=pc_streams())
    def test_text_to_store_and_back_is_bit_identical(self, tmp_path_factory, stream):
        """text → Trace → RPTRACE1 → CompiledTrace → store → load preserves
        every field bit-for-bit."""
        text = "\n".join(hex(pc) for pc in stream)
        trace, _ = ingest.ingest_bytes("rt", text.encode("utf-8"))
        assert sum(e.ninstr for e in trace.events) == len(stream)

        # RPTRACE1 round-trip
        path = tmp_path_factory.mktemp("rt") / "rt.trc"
        from repro.trace.io import write_trace

        write_trace(trace, path)
        loaded = read_trace(path)
        assert list(loaded.events) == list(trace.events)
        assert (loaded.name, loaded.seed) == (trace.name, trace.seed)

        # compiled + store round-trip
        budget = max(1, len(stream) // 2)
        compiled = CompiledTrace.compile(
            trace, 64, workload="external:rt", seed=1, core=0, n_instructions=budget
        )
        assert trace_store.store(compiled)
        reloaded = trace_store.load("external:rt", 1, 0, budget, 64)
        assert reloaded is not None
        for field in ("lines", "kinds", "ninstr", "data", "offsets", "disc"):
            assert getattr(reloaded, field) == getattr(compiled, field), field

    def test_compile_external_matches_direct_compilation(self, tmp_path):
        stream = tmp_path / "s.txt"
        stream.write_text("\n".join(hex(0x4000 + 4 * (i % 32)) for i in range(256)))
        ingest.ingest_file(stream, name="s")
        assert ingest.compile_external("s", 2, 500) == 2
        for core, trace in enumerate(ingest.external_traces("s", 2, 500)):
            direct = CompiledTrace.compile(
                trace, 64, workload="external:s", seed=1337, core=core, n_instructions=500
            )
            stored = trace_store.load("external:s", 1337, core, 500, 64)
            assert stored is not None
            assert stored.lines == direct.lines
            assert stored.ninstr == direct.ninstr
