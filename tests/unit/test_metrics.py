"""Unit tests for CoreStats / PrefetchStats derived metrics."""

import pytest

from repro.core.metrics import CoreStats, PrefetchStats
from repro.isa.kinds import TransitionKind


class TestPrefetchStats:
    def test_accuracy(self):
        stats = PrefetchStats(issued=10, useful=4)
        assert stats.accuracy == pytest.approx(0.4)

    def test_accuracy_no_issues(self):
        assert PrefetchStats().accuracy == 0.0

    def test_reset(self):
        stats = PrefetchStats(issued=5, useful=2, useless_evicted=1)
        stats.reset()
        assert stats.issued == 0
        assert stats.useful == 0
        assert stats.useless_evicted == 0


class TestCoreStats:
    def test_ipc(self):
        stats = CoreStats(instructions=300, cycles=100.0)
        assert stats.ipc == pytest.approx(3.0)

    def test_ipc_zero_cycles(self):
        assert CoreStats(instructions=10, cycles=0.0).ipc == 0.0

    def test_miss_rates_per_instruction(self):
        stats = CoreStats(instructions=1000, l1i_misses=20, l2i_demand_misses=5, l2d_misses=3)
        assert stats.l1i_miss_rate_per_instruction == pytest.approx(0.02)
        assert stats.l2i_miss_rate_per_instruction == pytest.approx(0.005)
        assert stats.l2d_miss_rate_per_instruction == pytest.approx(0.003)

    def test_rates_zero_instructions(self):
        stats = CoreStats()
        assert stats.l1i_miss_rate_per_instruction == 0.0
        assert stats.l2i_miss_rate_per_instruction == 0.0

    def test_l1i_coverage(self):
        stats = CoreStats(l1i_misses=20)
        stats.prefetch.useful = 80
        assert stats.l1i_coverage == pytest.approx(0.8)

    def test_l1i_coverage_empty(self):
        assert CoreStats().l1i_coverage == 0.0

    def test_l2i_coverage_uses_memory_sourced(self):
        stats = CoreStats(l2i_demand_misses=10)
        stats.prefetch.useful = 100
        stats.prefetch.useful_from_memory = 30
        assert stats.l2i_coverage == pytest.approx(0.75)

    def test_reset_clears_everything(self):
        stats = CoreStats(instructions=10, cycles=5.0, l1i_misses=2)
        stats.l1i_breakdown.record(int(TransitionKind.CALL))
        stats.prefetch.issued = 3
        stats.reset()
        assert stats.instructions == 0
        assert stats.cycles == 0.0
        assert stats.l1i_misses == 0
        assert stats.l1i_breakdown.total == 0
        assert stats.prefetch.issued == 0

    def test_summary_mentions_key_metrics(self):
        stats = CoreStats(instructions=100, cycles=50.0, l1i_misses=2)
        summary = stats.summary()
        assert "IPC" in summary
        assert "L1I miss rate" in summary
