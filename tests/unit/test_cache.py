"""Unit tests for the set-associative cache (repro.caches.cache)."""

import pytest

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.caches.line import LineState


def make_cache(capacity=512, assoc=2, line=64, policy="lru"):
    return SetAssociativeCache(
        "c", CacheConfig(capacity_bytes=capacity, associativity=assoc, line_size=line),
        policy=policy,
    )


class TestGeometry:
    def test_sets_and_lines(self):
        cache = make_cache()
        assert cache.config.n_lines == 8
        assert cache.config.n_sets == 4

    def test_direct_mapped(self):
        cache = make_cache(assoc=1)
        assert cache.config.n_sets == 8

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError, match="policy"):
            make_cache(policy="clock")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=500, associativity=2, line_size=64)
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=512, associativity=3, line_size=64)
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=512, associativity=2, line_size=60)


class TestLookupInstall:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(100) is None
        cache.install(100, LineState(used=True))
        state = cache.lookup(100)
        assert state is not None
        assert state.used

    def test_stats_counted(self):
        cache = make_cache()
        cache.lookup(1)
        cache.install(1, LineState())
        cache.lookup(1)
        assert cache.stats.lookups == 2
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.installs == 1

    def test_miss_ratio(self):
        cache = make_cache()
        cache.lookup(1)
        cache.install(1, LineState())
        cache.lookup(1)
        assert cache.stats.miss_ratio == pytest.approx(0.5)

    def test_install_returns_victim_when_set_full(self):
        cache = make_cache()  # 4 sets, 2-way: lines 0, 4, 8 share set 0
        assert cache.install(0, LineState()) is None
        assert cache.install(4, LineState()) is None
        victim = cache.install(8, LineState())
        assert victim is not None
        victim_line, _ = victim
        assert victim_line == 0  # LRU

    def test_lru_order_updated_by_lookup(self):
        cache = make_cache()
        cache.install(0, LineState())
        cache.install(4, LineState())
        cache.lookup(0)  # 0 becomes MRU; 4 is now LRU
        victim_line, _ = cache.install(8, LineState())
        assert victim_line == 4

    def test_lookup_without_recency_update(self):
        cache = make_cache()
        cache.install(0, LineState())
        cache.install(4, LineState())
        cache.lookup(0, update_recency=False)  # 0 stays LRU
        victim_line, _ = cache.install(8, LineState())
        assert victim_line == 0

    def test_reinstall_refreshes_without_eviction(self):
        cache = make_cache()
        cache.install(0, LineState())
        cache.install(4, LineState())
        new_state = LineState(prefetched=True)
        assert cache.install(0, new_state) is None
        assert cache.lookup(0) is new_state
        assert len(cache) == 2

    def test_different_sets_do_not_interfere(self):
        cache = make_cache()
        for line in range(4):  # lines 0..3 map to sets 0..3
            cache.install(line, LineState())
        assert len(cache) == 4
        assert all(line in cache for line in range(4))


class TestProbeTouchInvalidate:
    def test_probe_no_side_effects(self):
        cache = make_cache()
        cache.install(0, LineState())
        cache.install(4, LineState())
        lookups_before = cache.stats.lookups
        assert cache.probe(0) is not None
        assert cache.probe(8) is None
        assert cache.stats.lookups == lookups_before
        # Probe must not refresh recency: 0 is still LRU.
        victim_line, _ = cache.install(8, LineState())
        assert victim_line == 0

    def test_touch_refreshes_recency(self):
        cache = make_cache()
        cache.install(0, LineState())
        cache.install(4, LineState())
        cache.touch(0)
        victim_line, _ = cache.install(8, LineState())
        assert victim_line == 4

    def test_touch_missing_line_noop(self):
        cache = make_cache()
        cache.touch(123)  # must not raise
        assert 123 not in cache

    def test_invalidate(self):
        cache = make_cache()
        state = LineState(used=True)
        cache.install(0, state)
        assert cache.invalidate(0) is state
        assert cache.invalidate(0) is None
        assert 0 not in cache


class TestRandomPolicy:
    def test_random_eviction_stays_within_set(self):
        cache = make_cache(policy="random")
        cache.install(0, LineState())
        cache.install(4, LineState())
        victim = cache.install(8, LineState())
        assert victim is not None
        assert victim[0] in (0, 4)
        assert 8 in cache

    def test_capacity_never_exceeded(self):
        cache = make_cache(policy="random")
        for line in range(64):
            cache.install(line, LineState())
        assert len(cache) <= cache.config.n_lines
        assert cache.set_occupancy(0) <= 2


class TestIntrospection:
    def test_resident_lines(self):
        cache = make_cache()
        cache.install(0, LineState())
        cache.install(5, LineState())
        resident = dict(cache.resident_lines())
        assert set(resident) == {0, 5}

    def test_flush(self):
        cache = make_cache()
        cache.install(0, LineState())
        cache.flush()
        assert len(cache) == 0
        assert cache.stats.installs == 1  # stats preserved

    def test_stats_reset(self):
        cache = make_cache()
        cache.lookup(0)
        cache.stats.reset()
        assert cache.stats.lookups == 0
