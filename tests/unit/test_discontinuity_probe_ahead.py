"""Unit tests for the probe-ahead configuration of the discontinuity
prefetcher (ablation surface)."""

from repro.isa.kinds import TransitionKind
from repro.prefetch.discontinuity import DiscontinuityPrefetcher
from repro.prefetch.registry import create_prefetcher

SEQ = int(TransitionKind.SEQUENTIAL)


class TestProbeAheadToggle:
    def test_no_probe_ahead_only_probes_current_line(self):
        pf = DiscontinuityPrefetcher(table_entries=64, prefetch_ahead=4, probe_ahead=False)
        pf.on_discontinuity(12, 500, caused_miss=True)  # two lines ahead of 10
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        # Sequential window only: the entry at 12 must not be found.
        assert [c.line for c in candidates] == [11, 12, 13, 14]

    def test_no_probe_ahead_still_finds_current_line_entry(self):
        pf = DiscontinuityPrefetcher(table_entries=64, prefetch_ahead=4, probe_ahead=False)
        pf.on_discontinuity(10, 500, caused_miss=True)
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        assert 500 in [c.line for c in candidates]

    def test_probe_ahead_default_on(self):
        assert DiscontinuityPrefetcher().probe_ahead is True

    def test_name_reflects_variant(self):
        pf = DiscontinuityPrefetcher(probe_ahead=False)
        assert pf.name == "discontinuity-noprobeahead"

    def test_registry_variant(self):
        pf = create_prefetcher("discontinuity-noprobeahead", table_entries=128)
        assert isinstance(pf, DiscontinuityPrefetcher)
        assert pf.probe_ahead is False
        assert pf.table.entries == 128
