"""Unit tests for software prefetching (analysis + runtime)."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.swpf.analysis import PrefetchPlan, build_prefetch_plan
from repro.swpf.prefetcher import SoftwarePrefetcher, software_prefetcher_for
from repro.trace.synth.params import WorkloadProfile
from repro.trace.synth.program import build_program

SEQ = int(TransitionKind.SEQUENTIAL)


@pytest.fixture(scope="module")
def program():
    profile = WorkloadProfile(
        name="tiny",
        n_functions=60,
        fn_median_instr=60,
        fn_max_instr=400,
        block_mean_instr=5.0,
        entry_fraction=0.3,
        max_call_depth=8,
        max_transaction_instr=2_000,
    )
    return build_program(profile, seed=17)


class TestBuildPrefetchPlan:
    def test_produces_sites(self, program):
        plan = build_prefetch_plan(program)
        assert plan.n_sites > 0
        assert plan.n_targets >= plan.n_sites

    def test_targets_are_distant(self, program):
        plan = build_prefetch_plan(program, sequential_window=4)
        for line in range(0, 1 << 16):
            targets = plan.targets_for(line)
            for target in targets:
                # Within the sequential window the HW prefetcher covers it.
                assert not (0 <= target - line <= 4)
            if targets:
                break  # checked at least one populated site

    def test_probability_threshold_prunes(self, program):
        permissive = build_prefetch_plan(program, min_probability=0.05)
        strict = build_prefetch_plan(program, min_probability=0.6)
        assert strict.n_targets < permissive.n_targets

    def test_distance_window_validated(self, program):
        with pytest.raises(ValueError):
            build_prefetch_plan(program, min_distance=100, max_distance=50)
        with pytest.raises(ValueError):
            build_prefetch_plan(program, min_probability=0.0)

    def test_deterministic(self, program):
        a = build_prefetch_plan(program)
        b = build_prefetch_plan(program)
        for line in range(0, 1 << 14):
            assert a.targets_for(line) == b.targets_for(line)

    def test_rebased_shifts_private_lines(self, program):
        plan = build_prefetch_plan(program)
        boundary = 1 << 40  # nothing above: rebasing is a no-op
        same = plan.rebased(boundary, 100)
        assert same.n_targets == plan.n_targets
        moved = plan.rebased(0, 100)  # everything shifts
        for line in range(0, 1 << 14):
            targets = plan.targets_for(line)
            if targets:
                assert moved.targets_for(line + 100) == tuple(
                    t + 100 for t in targets
                )
                break


class TestSoftwarePrefetcher:
    def test_fires_plan_on_any_fetch(self):
        plan = PrefetchPlan(6, {100: (500, 900)})
        pf = SoftwarePrefetcher(plan, sequential_degree=0)
        # Software prefetches execute with the code: hit or miss.
        lines = [c.line for c in pf.on_demand_fetch(100, False, False, SEQ)]
        assert lines == [500, 900]

    def test_sequential_component_on_trigger(self):
        plan = PrefetchPlan(6, {})
        pf = SoftwarePrefetcher(plan, sequential_degree=2)
        assert [c.line for c in pf.on_demand_fetch(10, True, False, SEQ)] == [11, 12]
        assert pf.on_demand_fetch(10, False, False, SEQ) == []

    def test_overhead_accrues_and_resets(self):
        plan = PrefetchPlan(6, {100: (500, 900)})
        pf = SoftwarePrefetcher(plan, sequential_degree=0, instruction_overhead_cycles=0.5)
        pf.on_demand_fetch(100, False, False, SEQ)
        assert pf.consume_overhead_cycles() == pytest.approx(1.0)
        assert pf.consume_overhead_cycles() == 0.0
        assert pf.overhead_cycles == pytest.approx(1.0)

    def test_validation(self):
        plan = PrefetchPlan(6, {})
        with pytest.raises(ValueError):
            SoftwarePrefetcher(plan, sequential_degree=-1)
        with pytest.raises(ValueError):
            SoftwarePrefetcher(plan, instruction_overhead_cycles=-0.1)


class TestFactory:
    def test_builds_matching_plan(self):
        pf = software_prefetcher_for("web", seed=1337, core=0)
        assert pf.plan.n_sites > 100

    def test_core_rebasing_changes_lines(self):
        base = software_prefetcher_for("web", seed=1337, core=0)
        shifted = software_prefetcher_for("web", seed=1337, core=1)
        assert base.plan.n_sites == shifted.plan.n_sites
        assert base.plan.n_targets == shifted.plan.n_targets
