"""Unit tests for the history-based target prefetcher baseline."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.prefetch.target import TargetPrefetcher

SEQ = int(TransitionKind.SEQUENTIAL)


class TestTargetPrefetcher:
    def test_learns_transition(self):
        pf = TargetPrefetcher(capacity=8)
        pf.on_discontinuity(10, 500, caused_miss=True)
        candidates = pf.on_demand_fetch(10, False, False, SEQ)
        assert [c.line for c in candidates] == [500]

    def test_learns_even_without_miss(self):
        pf = TargetPrefetcher(capacity=8)
        pf.on_discontinuity(10, 500, caused_miss=False)
        assert [c.line for c in pf.on_demand_fetch(10, False, False, SEQ)] == [500]

    def test_probes_current_line_only(self):
        pf = TargetPrefetcher(capacity=8)
        pf.on_discontinuity(12, 500, caused_miss=True)
        # Fetching line 10 must NOT find the entry for 12 (no probe-ahead).
        assert pf.on_demand_fetch(10, True, False, SEQ) == []

    def test_updates_existing_entry(self):
        pf = TargetPrefetcher(capacity=8)
        pf.on_discontinuity(10, 500, caused_miss=True)
        pf.on_discontinuity(10, 600, caused_miss=True)
        assert [c.line for c in pf.on_demand_fetch(10, False, False, SEQ)] == [600]

    def test_lru_capacity_eviction(self):
        pf = TargetPrefetcher(capacity=2)
        pf.on_discontinuity(1, 100, caused_miss=True)
        pf.on_discontinuity(2, 200, caused_miss=True)
        pf.on_discontinuity(3, 300, caused_miss=True)  # evicts 1
        assert pf.on_demand_fetch(1, False, False, SEQ) == []
        assert [c.line for c in pf.on_demand_fetch(3, False, False, SEQ)] == [300]

    def test_probe_refreshes_lru(self):
        pf = TargetPrefetcher(capacity=2)
        pf.on_discontinuity(1, 100, caused_miss=True)
        pf.on_discontinuity(2, 200, caused_miss=True)
        pf.on_demand_fetch(1, False, False, SEQ)  # touch 1
        pf.on_discontinuity(3, 300, caused_miss=True)  # evicts 2
        assert [c.line for c in pf.on_demand_fetch(1, False, False, SEQ)] == [100]
        assert pf.on_demand_fetch(2, False, False, SEQ) == []

    def test_degree_extends_run(self):
        pf = TargetPrefetcher(capacity=8, degree=3)
        pf.on_discontinuity(10, 500, caused_miss=True)
        assert [c.line for c in pf.on_demand_fetch(10, False, False, SEQ)] == [500, 501, 502]

    def test_provenance(self):
        pf = TargetPrefetcher(capacity=8)
        pf.on_discontinuity(10, 500, caused_miss=True)
        candidate = pf.on_demand_fetch(10, False, False, SEQ)[0]
        assert candidate.provenance == ("tgt", 10)

    def test_reset(self):
        pf = TargetPrefetcher(capacity=8)
        pf.on_discontinuity(10, 500, caused_miss=True)
        pf.reset()
        assert pf.on_demand_fetch(10, False, False, SEQ) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetPrefetcher(capacity=0)
        with pytest.raises(ValueError):
            TargetPrefetcher(degree=0)
