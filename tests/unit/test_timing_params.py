"""Unit tests for TimingParams."""

import dataclasses

import pytest

from repro.timing.params import DEFAULT_TIMING, TimingParams


class TestTimingParams:
    def test_paper_defaults(self):
        assert DEFAULT_TIMING.issue_width == 3.0
        assert DEFAULT_TIMING.l2_latency == 25
        assert DEFAULT_TIMING.memory_latency == 400
        assert DEFAULT_TIMING.clock_ghz == 3.0

    def test_bytes_per_cycle(self):
        assert DEFAULT_TIMING.bytes_per_cycle(10.0) == pytest.approx(10.0 / 3.0)
        assert DEFAULT_TIMING.bytes_per_cycle(20.0) == pytest.approx(20.0 / 3.0)

    def test_bytes_per_cycle_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING.bytes_per_cycle(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingParams(issue_width=0)
        with pytest.raises(ValueError):
            TimingParams(l2_latency=0)
        with pytest.raises(ValueError):
            TimingParams(data_l2_exposed_fraction=1.5)
        with pytest.raises(ValueError):
            TimingParams(prefetch_mshr_capacity=0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_TIMING.l2_latency = 30

    def test_custom_values(self):
        timing = TimingParams(memory_latency=200, issue_width=4.0)
        assert timing.memory_latency == 200
        assert timing.issue_width == 4.0
