"""Unit tests for the FTQ-driven shadow-branch prefetcher."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.prefetch.shadow import ShadowBranchPrefetcher, ShadowTargetBuffer

SEQ = int(TransitionKind.SEQUENTIAL)


class TestShadowTargetBuffer:
    def test_observe_and_lookup(self):
        stb = ShadowTargetBuffer(entries=64, assoc=4)
        stb.observe(10, 500)
        assert stb.lookup(10) == 500
        assert stb.lookup(11) is None

    def test_reobserve_updates_target(self):
        stb = ShadowTargetBuffer(entries=64, assoc=4)
        stb.observe(10, 500)
        stb.observe(10, 700)
        assert stb.lookup(10) == 700
        assert stb.occupancy() == 1

    def test_eviction_prefers_lowest_confidence(self):
        # entries=4/assoc=2 -> 2 sets; even lines share set 0.
        stb = ShadowTargetBuffer(entries=4, assoc=2)
        stb.observe(0, 100)
        stb.observe(2, 200)
        stb.credit(0)  # reinforce 0 so 2 becomes the victim
        stb.observe(4, 400)
        assert stb.lookup(0) == 100
        assert stb.lookup(2) is None
        assert stb.lookup(4) == 400

    def test_reset(self):
        stb = ShadowTargetBuffer(entries=64, assoc=4)
        stb.observe(10, 500)
        stb.reset()
        assert stb.lookup(10) is None
        assert stb.occupancy() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShadowTargetBuffer(entries=48)
        with pytest.raises(ValueError):
            ShadowTargetBuffer(entries=4, assoc=8)


class TestShadowTargetDiscovery:
    def make(self, **overrides):
        kwargs = dict(
            btb_entries=64,
            gshare_entries=64,
            lookahead=8,
            history_bits=0,
            shadow_entries=64,
        )
        kwargs.update(overrides)
        return ShadowBranchPrefetcher(**kwargs)

    def test_untrained_matches_sequential_fdp_path(self):
        pf = self.make()
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        assert [c.line for c in candidates] == list(range(11, 19))
        assert pf.shadow_discoveries == 0

    def test_predecode_discovers_shadow_target_on_sequential_path(self):
        pf = self.make(shadow_degree=2)
        # The predecoder saw a branch in line 15 targeting 900, but the
        # direction predictor (untrained: not-taken) never follows it.
        pf.on_discontinuity(15, 900, caused_miss=False)
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        lines = [c.line for c in candidates]
        # The predicted path is still sequential, but draining the FTQ
        # predecodes line 15 and injects the shadow target plus its next
        # shadow_degree-1 lines right behind it.
        assert lines == [11, 12, 13, 14, 15, 900, 901, 16, 17, 18]
        assert pf.shadow_discoveries == 1
        shadow = [c for c in candidates if c.provenance[0] == "shadow"]
        assert all(c.provenance == ("shadow", 15) for c in shadow)

    def test_fall_through_target_is_not_a_discovery(self):
        pf = self.make()
        pf.on_discontinuity(15, 16, caused_miss=False)  # target == line + 1
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        assert [c.line for c in candidates] == list(range(11, 19))
        assert pf.shadow_discoveries == 0

    def test_ftq_bounds_the_walk(self):
        pf = self.make(lookahead=8, ftq_entries=3)
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        assert [c.line for c in candidates] == [11, 12, 13]

    def test_taken_exit_skips_predecode(self):
        # A line the walk leaves via a predicted-taken branch is not a
        # shadow site: the predictor already followed its branch.
        pf = self.make(lookahead=2)
        pf.gshare.update(11, taken=True)
        pf.gshare.update(11, taken=True)
        pf.btb.update(11, 500)
        pf.on_discontinuity(11, 900, caused_miss=False)  # stale STB edge
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        lines = [c.line for c in candidates]
        assert lines == [11, 500]
        assert pf.shadow_discoveries == 0

    def test_credit_reinforces_stb_entry(self):
        pf = self.make()
        pf.on_discontinuity(15, 900, caused_miss=False)
        pf.credit(("shadow", 15))
        # Reinforced entry survives an eviction contest (see STB tests);
        # here just confirm the foreign-provenance path is a no-op too.
        pf.credit(("fdp",))
        assert pf.stb.lookup(15) == 900

    def test_state_bytes_adds_stb_and_ftq(self):
        pf = self.make(shadow_entries=64, ftq_entries=16)
        base = (64 * 32 + 64 * 2 + pf.ras.capacity * 32) // 8
        assert pf.state_bytes() == base + (64 * (32 + 32 + 2) + 16 * 32) // 8

    def test_reset_clears_shadow_state(self):
        pf = self.make()
        pf.on_discontinuity(15, 900, caused_miss=False)
        pf.on_demand_fetch(10, True, False, SEQ)
        pf.reset()
        assert pf.shadow_discoveries == 0
        assert pf.stb.lookup(15) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(ftq_entries=0)
        with pytest.raises(ValueError):
            self.make(shadow_degree=0)

    def test_name(self):
        assert self.make(shadow_entries=256).name == "shadow-256stb"
