"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import GB, KB, MB, format_size, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("32KB", 32 * KB),
            ("2MB", 2 * MB),
            ("1GB", GB),
            ("64", 64),
            ("64B", 64),
            ("32kb", 32 * KB),
            (" 2 MB ", 2 * MB),
            ("4K", 4 * KB),
            ("3M", 3 * MB),
            ("1G", GB),
            ("1.5KB", 1536),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["KB", "", "abcMB", "12QB"])
    def test_invalid_raises(self, text):
        with pytest.raises(ValueError):
            parse_size(text)


class TestFormatSize:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (32 * KB, "32KB"),
            (2 * MB, "2MB"),
            (3 * GB, "3GB"),
            (100, "100B"),
            (1536, "1536B"),  # not an exact KB multiple
        ],
    )
    def test_format(self, nbytes, expected):
        assert format_size(nbytes) == expected

    def test_roundtrip(self):
        for nbytes in (64, 16 * KB, 2 * MB, GB):
            assert parse_size(format_size(nbytes)) == nbytes
