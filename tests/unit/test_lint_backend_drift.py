"""R6 (backend drift): fingerprinted reference hot paths must move in
lockstep with their vectorized counterparts.

The tests pin the rule to a single synthetic pair (monkeypatching
``manifest.PAIRS`` so ``update_manifest`` records it) rather than the real
fifteen, so fixture trees need only one tiny engine/vectorized module each.
"""

from __future__ import annotations

import pytest

from repro.lint import manifest as manifest_mod
from repro.lint.engine import Project
from repro.lint.rules import BackendDriftRule
from tests.unit.conftest import write_tree_file

PAIR = manifest_mod.Pair(
    ref_module="src/repro/core/engine.py",
    ref_qualname="CoreEngine._process_visit",
    vec_qualname="VectorizedCoreEngine._fast_span",
)

ENGINE_V1 = """
    class CoreEngine:
        def _process_visit(self, visit):
            return visit + 1
    """

#: structurally identical to ENGINE_V1 — docstring, comment and blank-line
#: churn only, which the fingerprint must ignore.
ENGINE_V1_RESTYLED = '''
    class CoreEngine:

        def _process_visit(self, visit):
            """Process one visit (documentation never moves fingerprints)."""
            # neither do comments or whitespace
            return visit + 1
    '''

ENGINE_V2 = """
    class CoreEngine:
        def _process_visit(self, visit):
            return visit + 2
    """

VEC_V1 = """
    class VectorizedCoreEngine:
        def _fast_span(self, span):
            return span + 1
    """

VEC_V2 = """
    class VectorizedCoreEngine:
        def _fast_span(self, span):
            return span + 2
    """


def rule() -> BackendDriftRule:
    return BackendDriftRule(pairs=(PAIR,))


@pytest.fixture
def drift_tree(lint_tree, monkeypatch):
    """Build the base tree with the synthetic pair installed."""

    def build(engine=ENGINE_V1, vectorized=VEC_V1, with_manifest=True):
        monkeypatch.setattr(manifest_mod, "PAIRS", (PAIR,))
        overrides = {"src/repro/core/engine.py": engine}
        if vectorized is not None:
            overrides[manifest_mod.VECTORIZED_MODULE] = vectorized
        return lint_tree(overrides, with_manifest=with_manifest)

    return build


def test_clean_tree_passes(drift_tree):
    assert rule().check(drift_tree()) == []


def test_rule_is_inactive_without_the_vectorized_module(drift_tree):
    project = drift_tree(vectorized=None)
    # Even a behavioural reference edit stays silent: fixture trees
    # without backends are out of R6's scope by design.
    project = write_tree_file(project.root, PAIR.ref_module, ENGINE_V2)
    assert rule().check(project) == []


def test_docstring_and_formatting_edits_do_not_drift(drift_tree):
    project = drift_tree()
    project = write_tree_file(project.root, PAIR.ref_module, ENGINE_V1_RESTYLED)
    assert rule().check(project) == []


def test_reference_only_edit_names_both_sites(drift_tree):
    project = drift_tree()
    project = write_tree_file(project.root, PAIR.ref_module, ENGINE_V2)
    violations = rule().check(project)
    assert len(violations) == 1
    finding = violations[0]
    assert finding.path == PAIR.ref_module
    assert finding.line > 0
    assert "'CoreEngine._process_visit'" in finding.message
    assert "'VectorizedCoreEngine._fast_span'" in finding.message
    assert "bit-identical" in finding.message
    # the hint names the exact counterpart site and both escape hatches.
    assert f"{manifest_mod.VECTORIZED_MODULE}::{PAIR.vec_qualname}" in finding.hint
    assert "test_backend_parity" in finding.hint
    assert "--update-manifest" in finding.hint


def test_update_manifest_acks_reference_only_drift(drift_tree):
    project = drift_tree()
    project = write_tree_file(project.root, PAIR.ref_module, ENGINE_V2)
    assert rule().check(project) != []
    manifest_mod.update_manifest(project)
    assert rule().check(Project(project.root)) == []


def test_both_sides_edited_reports_stale_fingerprints(drift_tree):
    project = drift_tree()
    project = write_tree_file(project.root, PAIR.ref_module, ENGINE_V2)
    project = write_tree_file(project.root, manifest_mod.VECTORIZED_MODULE, VEC_V2)
    violations = rule().check(project)
    # both moved together: no divergence warning, one stale entry per side.
    assert len(violations) == 2
    assert all("stale in the manifest" in v.message for v in violations)
    assert {v.path for v in violations} == {
        PAIR.ref_module,
        manifest_mod.VECTORIZED_MODULE,
    }
    manifest_mod.update_manifest(project)
    assert rule().check(Project(project.root)) == []


def test_vectorized_only_edit_asks_for_a_refresh(drift_tree):
    project = drift_tree()
    project = write_tree_file(project.root, manifest_mod.VECTORIZED_MODULE, VEC_V2)
    violations = rule().check(project)
    assert len(violations) == 1
    assert violations[0].path == manifest_mod.VECTORIZED_MODULE
    assert "stale in the manifest" in violations[0].message


def test_missing_manifest_is_reported(drift_tree):
    project = drift_tree(with_manifest=False)
    violations = rule().check(project)
    assert len(violations) == 1
    assert violations[0].path == manifest_mod.MANIFEST_PATH
    assert "manifest is missing" in violations[0].message


def test_manifest_without_pairs_section_is_reported(drift_tree):
    # Manifest recorded while the tree had no vectorized backend; adding
    # the backend afterwards must demand a refresh, not pass silently.
    project = drift_tree(vectorized=None)
    project = write_tree_file(project.root, manifest_mod.VECTORIZED_MODULE, VEC_V1)
    violations = rule().check(project)
    assert len(violations) == 1
    assert "no pair-fingerprint section" in violations[0].message
    assert "--update-manifest" in violations[0].hint


def test_missing_reference_function_is_reported(drift_tree):
    project = drift_tree()
    project = write_tree_file(
        project.root,
        PAIR.ref_module,
        """
        class CoreEngine:
            def renamed(self, visit):
                return visit + 1
        """,
    )
    violations = rule().check(project)
    assert len(violations) == 1
    assert violations[0].path == PAIR.ref_module
    assert "'CoreEngine._process_visit'" in violations[0].message
    assert "is missing" in violations[0].message


def test_missing_vectorized_counterpart_is_reported(drift_tree):
    project = drift_tree()
    project = write_tree_file(
        project.root,
        manifest_mod.VECTORIZED_MODULE,
        """
        class VectorizedCoreEngine:
            def renamed(self, span):
                return span + 1
        """,
    )
    violations = rule().check(project)
    assert len(violations) == 1
    assert violations[0].path == manifest_mod.VECTORIZED_MODULE
    assert "'VectorizedCoreEngine._fast_span'" in violations[0].message
    assert "is missing" in violations[0].message


REF_ONLY_PAIR = manifest_mod.Pair(
    ref_module="src/repro/core/engine.py",
    ref_qualname="CoreEngine._process_visit",
)


@pytest.fixture
def ref_only_tree(lint_tree, monkeypatch):
    """Tree whose synthetic pair has no vectorized counterpart."""

    def build(engine=ENGINE_V1):
        monkeypatch.setattr(manifest_mod, "PAIRS", (REF_ONLY_PAIR,))
        return lint_tree(
            {
                "src/repro/core/engine.py": engine,
                manifest_mod.VECTORIZED_MODULE: VEC_V1,
            }
        )

    return build


class TestReferenceOnlyPairs:
    def rule(self):
        return BackendDriftRule(pairs=(REF_ONLY_PAIR,))

    def test_clean_tree_passes(self, ref_only_tree):
        assert self.rule().check(ref_only_tree()) == []

    def test_drift_is_stale_never_divergent(self, ref_only_tree):
        # A reference-only pair covers code both backends share by
        # inheritance, so an edit can only ever need a manifest refresh —
        # the divergence ("port the change") message must not appear.
        project = ref_only_tree()
        project = write_tree_file(project.root, REF_ONLY_PAIR.ref_module, ENGINE_V2)
        violations = self.rule().check(project)
        assert len(violations) == 1
        assert violations[0].path == REF_ONLY_PAIR.ref_module
        assert "stale in the manifest" in violations[0].message
        assert "--update-manifest" in violations[0].hint

    def test_update_manifest_clears_the_stale_entry(self, ref_only_tree):
        project = ref_only_tree()
        project = write_tree_file(project.root, REF_ONLY_PAIR.ref_module, ENGINE_V2)
        assert self.rule().check(project) != []
        manifest_mod.update_manifest(project)
        assert self.rule().check(Project(project.root)) == []

    def test_fingerprints_record_a_null_vec_side(self, ref_only_tree):
        project = ref_only_tree()
        fingerprints = manifest_mod.pair_fingerprints(project)
        (sides,) = fingerprints.values()
        assert sides["ref"] is not None
        assert sides["vec"] is None

    def test_missing_reference_function_still_reported(self, ref_only_tree):
        project = ref_only_tree()
        project = write_tree_file(
            project.root,
            REF_ONLY_PAIR.ref_module,
            """
            class CoreEngine:
                def renamed(self, visit):
                    return visit + 1
            """,
        )
        violations = self.rule().check(project)
        assert len(violations) == 1
        assert "is missing" in violations[0].message


UNPAIRED_PREFETCHER = """
    class CustomPrefetcher:
        def on_demand_fetch(self, line, was_miss, first_use, kind):
            return []
    """


class TestUnpairedPrefetcherCompleteness:
    def test_unpaired_prefetch_module_fails(self, drift_tree):
        project = drift_tree()
        project = write_tree_file(
            project.root, "src/repro/prefetch/custom.py", UNPAIRED_PREFETCHER
        )
        violations = rule().check(project)
        assert len(violations) == 1
        finding = violations[0]
        assert finding.path == "src/repro/prefetch/custom.py"
        assert "'CustomPrefetcher.on_demand_fetch'" in finding.message
        assert "drift checking" in finding.message
        assert "Pair(" in finding.hint
        assert "--update-manifest" in finding.hint

    def test_fingerprinting_the_hook_satisfies_the_check(
        self, lint_tree, monkeypatch
    ):
        custom_pair = manifest_mod.Pair(
            ref_module="src/repro/prefetch/custom.py",
            ref_qualname="CustomPrefetcher.on_demand_fetch",
        )
        monkeypatch.setattr(manifest_mod, "PAIRS", (PAIR, custom_pair))
        project = lint_tree(
            {
                "src/repro/core/engine.py": ENGINE_V1,
                manifest_mod.VECTORIZED_MODULE: VEC_V1,
                "src/repro/prefetch/custom.py": UNPAIRED_PREFETCHER,
            }
        )
        assert BackendDriftRule(pairs=(PAIR, custom_pair)).check(project) == []

    def test_module_without_demand_hook_is_exempt(self, drift_tree):
        project = drift_tree()
        project = write_tree_file(
            project.root,
            "src/repro/prefetch/util.py",
            """
            def helper(line):
                return line + 1
            """,
        )
        assert rule().check(project) == []

    def test_base_module_is_allowlisted(self, drift_tree):
        project = drift_tree()
        project = write_tree_file(
            project.root,
            "src/repro/prefetch/base.py",
            """
            class Prefetcher:
                def on_demand_fetch(self, line, was_miss, first_use, kind):
                    return []
            """,
        )
        assert rule().check(project) == []


JIT_PAIR = manifest_mod.Pair(
    ref_module="src/repro/core/engine.py",
    ref_qualname="CoreEngine._process_visit",
    vec_qualname="VectorizedCoreEngine._fast_span",
    jit_qualname="kernel_source",
)

JIT_V1 = """
    def kernel_source():
        return "void repro_run(void) { }"
    """

JIT_V2 = """
    def kernel_source():
        return "void repro_run(void) { /* changed */ } int x;"
    """


class TestJitCounterpart:
    """Pairs with a jit side must track the C kernel string too."""

    def rule(self):
        return BackendDriftRule(pairs=(JIT_PAIR,))

    @pytest.fixture
    def jit_tree(self, lint_tree, monkeypatch):
        def build(engine=ENGINE_V1, vectorized=VEC_V1, jitted=JIT_V1):
            monkeypatch.setattr(manifest_mod, "PAIRS", (JIT_PAIR,))
            return lint_tree(
                {
                    "src/repro/core/engine.py": engine,
                    manifest_mod.VECTORIZED_MODULE: vectorized,
                    manifest_mod.JITTED_MODULE: jitted,
                }
            )

        return build

    def test_clean_tree_passes(self, jit_tree):
        assert self.rule().check(jit_tree()) == []

    def test_fingerprints_record_the_jit_side(self, jit_tree):
        fingerprints = manifest_mod.pair_fingerprints(jit_tree())
        (sides,) = fingerprints.values()
        assert sides["ref"] is not None
        assert sides["vec"] is not None
        assert sides["jit"] is not None

    def test_reference_edit_without_either_twin_names_both(self, jit_tree):
        project = jit_tree()
        project = write_tree_file(project.root, JIT_PAIR.ref_module, ENGINE_V2)
        violations = self.rule().check(project)
        assert len(violations) == 2
        messages = "\n".join(v.message for v in violations)
        assert "vectorized counterpart" in messages or "_fast_span" in messages
        assert "'kernel_source'" in messages
        hints = "\n".join(v.hint for v in violations)
        assert f"{manifest_mod.JITTED_MODULE}::kernel_source" in hints

    def test_vec_ported_but_jit_not_still_fails(self, jit_tree):
        # The dangerous middle state: the reference and vectorized sides
        # moved together but the C kernel stood still.
        project = jit_tree()
        project = write_tree_file(project.root, JIT_PAIR.ref_module, ENGINE_V2)
        project = write_tree_file(
            project.root, manifest_mod.VECTORIZED_MODULE, VEC_V2
        )
        violations = self.rule().check(project)
        divergent = [v for v in violations if "bit-identical" in v.message]
        assert len(divergent) == 1
        assert "jit counterpart 'kernel_source'" in divergent[0].message

    def test_all_three_sides_moved_is_stale_only(self, jit_tree):
        project = jit_tree()
        project = write_tree_file(project.root, JIT_PAIR.ref_module, ENGINE_V2)
        project = write_tree_file(
            project.root, manifest_mod.VECTORIZED_MODULE, VEC_V2
        )
        project = write_tree_file(project.root, manifest_mod.JITTED_MODULE, JIT_V2)
        violations = self.rule().check(project)
        assert violations and all(
            "stale in the manifest" in v.message for v in violations
        )
        manifest_mod.update_manifest(project)
        assert self.rule().check(Project(project.root)) == []

    def test_missing_jit_counterpart_is_reported(self, jit_tree):
        project = jit_tree(
            jitted="""
            def renamed():
                return ""
            """
        )
        violations = self.rule().check(project)
        assert len(violations) == 1
        assert violations[0].path == manifest_mod.JITTED_MODULE
        assert "jit counterpart 'kernel_source'" in violations[0].message


def test_real_pairs_all_point_at_existing_functions():
    """Every entry of the real PAIRS table resolves in the live tree."""
    from pathlib import Path

    project = Project(Path(__file__).resolve().parents[2])
    fingerprints = manifest_mod.pair_fingerprints(project)
    assert len(fingerprints) == len(manifest_mod.PAIRS)
    by_id = {manifest_mod.pair_id(pair): pair for pair in manifest_mod.PAIRS}
    for pair_id, sides in fingerprints.items():
        assert sides["ref"] is not None, f"{pair_id}: reference side missing"
        if by_id[pair_id].vec_qualname is None:
            # No vectorized counterpart: that backend runs the reference
            # code, so no vectorized fingerprint exists by construction.
            assert sides["vec"] is None, f"{pair_id}: unexpected vec side"
        else:
            assert sides["vec"] is not None, f"{pair_id}: vectorized side missing"
        if by_id[pair_id].jit_qualname is None:
            assert sides["jit"] is None, f"{pair_id}: unexpected jit side"
        else:
            assert sides["jit"] is not None, f"{pair_id}: jit side missing"
