"""Unit tests for the discontinuity table and prefetcher (paper §4)."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.prefetch.discontinuity import (
    COUNTER_MAX,
    DiscontinuityPrefetcher,
    DiscontinuityTable,
)

SEQ = int(TransitionKind.SEQUENTIAL)


class TestTableAllocation:
    def test_insert_and_predict(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)
        assert table.predict(5) == 100
        assert table.predict(6) is None

    def test_insert_sets_counter_to_max(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)
        _, _, counter = table.entry(table.index_of(5))
        assert counter == COUNTER_MAX

    def test_direct_mapping_conflict(self):
        table = DiscontinuityTable(entries=16)
        assert table.index_of(5) == table.index_of(21)  # 5 and 5+16 collide

    def test_occupancy(self):
        table = DiscontinuityTable(entries=16)
        table.observe(1, 100)
        table.observe(2, 200)
        assert table.occupancy() == 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            DiscontinuityTable(entries=100)

    def test_rejects_negative_counter_max(self):
        with pytest.raises(ValueError):
            DiscontinuityTable(entries=16, counter_max=-1)


class TestTableReplacement:
    def test_eviction_counter_protects_entry(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)
        # A conflicting discontinuity (same index, different source) must
        # decrement the counter COUNTER_MAX times before replacing.
        for _ in range(COUNTER_MAX):
            table.observe(21, 300)
            assert table.predict(5) == 100
        table.observe(21, 300)  # counter now 0 -> replaced
        assert table.predict(5) is None
        assert table.predict(21) == 300

    def test_credit_resists_replacement(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)
        for _ in range(COUNTER_MAX):
            table.observe(21, 300)
        # Reinforce before the final displacing observation.
        table.credit(table.index_of(5), 5)
        table.observe(21, 300)
        assert table.predict(5) == 100  # survived thanks to the credit

    def test_credit_saturates(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)
        index = table.index_of(5)
        for _ in range(10):
            table.credit(index, 5)
        assert table.entry(index)[2] == COUNTER_MAX

    def test_credit_ignores_stale_provenance(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)
        index = table.index_of(5)
        table.credit(index, 21)  # source mismatch: entry belongs to 5
        assert table.stats.credits == 0

    def test_target_update_same_source(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)
        # Same source with a new target competes via the counter too.
        for _ in range(COUNTER_MAX):
            table.observe(5, 200)
            assert table.predict(5) == 100
        table.observe(5, 200)
        assert table.predict(5) == 200

    def test_re_observing_same_pair_is_noop(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)
        counter_before = table.entry(table.index_of(5))[2]
        table.observe(5, 100)
        assert table.entry(table.index_of(5))[2] == counter_before

    def test_counter_max_zero_always_replaces(self):
        table = DiscontinuityTable(entries=16, counter_max=0)
        table.observe(5, 100)
        table.observe(21, 300)
        assert table.predict(21) == 300
        assert table.predict(5) is None

    def test_stats_track_events(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)  # allocation
        table.observe(21, 300)  # denied
        assert table.stats.allocations == 1
        assert table.stats.replacement_denied == 1

    def test_reset(self):
        table = DiscontinuityTable(entries=16)
        table.observe(5, 100)
        table.reset()
        assert table.occupancy() == 0
        assert table.stats.allocations == 0


class TestDiscontinuityPrefetcher:
    def test_sequential_candidates_on_miss(self):
        pf = DiscontinuityPrefetcher(table_entries=64, prefetch_ahead=4)
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        assert [c.line for c in candidates] == [11, 12, 13, 14]

    def test_no_trigger_without_miss_or_first_use(self):
        pf = DiscontinuityPrefetcher(table_entries=64)
        assert pf.on_demand_fetch(10, False, False, SEQ) == []

    def test_probe_ahead_finds_discontinuity(self):
        pf = DiscontinuityPrefetcher(table_entries=64, prefetch_ahead=4)
        pf.on_discontinuity(12, 500, caused_miss=True)
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        # Sequential window plus target and remainder: probe offset of 12
        # from line 10 is 2, remainder = 4 - 2 = 2 -> 500, 501, 502.
        assert [c.line for c in candidates] == [11, 12, 13, 14, 500, 501, 502]

    def test_discontinuity_at_current_line(self):
        pf = DiscontinuityPrefetcher(table_entries=64, prefetch_ahead=2)
        pf.on_discontinuity(10, 500, caused_miss=True)
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        # Probe offset 0 -> full remainder window past the target.
        assert [c.line for c in candidates] == [11, 12, 500, 501, 502]

    def test_discontinuity_provenance_carries_table_entry(self):
        pf = DiscontinuityPrefetcher(table_entries=64, prefetch_ahead=1)
        pf.on_discontinuity(11, 500, caused_miss=True)
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        disc = [c for c in candidates if c.line >= 500]
        assert disc
        for candidate in disc:
            tag, index, source = candidate.provenance
            assert tag == "disc"
            assert source == 11
            assert index == pf.table.index_of(11)

    def test_no_allocation_without_miss(self):
        pf = DiscontinuityPrefetcher(table_entries=64)
        pf.on_discontinuity(10, 500, caused_miss=False)
        assert pf.table.predict(10) is None

    def test_credit_path(self):
        pf = DiscontinuityPrefetcher(table_entries=64)
        pf.on_discontinuity(10, 500, caused_miss=True)
        index = pf.table.index_of(10)
        # Knock the counter down, then credit through the prefetcher API.
        pf.table.observe(10 + 64, 900)
        before = pf.table.entry(index)[2]
        pf.credit(("disc", index, 10))
        assert pf.table.entry(index)[2] == before + 1

    def test_credit_ignores_sequential_provenance(self):
        pf = DiscontinuityPrefetcher(table_entries=64)
        pf.credit(("seq",))  # must not raise

    def test_names(self):
        assert DiscontinuityPrefetcher(prefetch_ahead=4).name == "discontinuity"
        assert DiscontinuityPrefetcher(prefetch_ahead=2).name == "discontinuity-2nl"

    def test_rejects_bad_prefetch_ahead(self):
        with pytest.raises(ValueError):
            DiscontinuityPrefetcher(prefetch_ahead=0)

    def test_reset_clears_table(self):
        pf = DiscontinuityPrefetcher(table_entries=64)
        pf.on_discontinuity(10, 500, caused_miss=True)
        pf.reset()
        assert pf.table.occupancy() == 0
