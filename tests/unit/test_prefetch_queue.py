"""Unit tests for the prefetch queue + filtering (paper §4.1)."""

import pytest

from repro.prefetch.base import PrefetchCandidate
from repro.prefetch.queue import PrefetchQueue, QueueState


def cand(line, provenance=("seq",)):
    return PrefetchCandidate(line, provenance)


class TestOfferAndPop:
    def test_accept_and_pop(self):
        queue = PrefetchQueue(capacity=4)
        assert queue.offer(cand(10))
        entry = queue.pop_ready()
        assert entry.line == 10
        assert entry.state == QueueState.ISSUED

    def test_lifo_order(self):
        queue = PrefetchQueue(capacity=4)
        for line in (1, 2, 3):
            queue.offer(cand(line))
        assert queue.pop_ready().line == 3
        assert queue.pop_ready().line == 2
        assert queue.pop_ready().line == 1
        assert queue.pop_ready() is None

    def test_fifo_mode(self):
        queue = PrefetchQueue(capacity=4, lifo=False)
        for line in (1, 2, 3):
            queue.offer(cand(line))
        assert queue.pop_ready().line == 1

    def test_issued_entry_stays_as_filter_memory(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(10))
        queue.pop_ready()
        assert len(queue) == 1
        assert queue.state_of(10) == QueueState.ISSUED

    def test_overflow_drops_oldest(self):
        queue = PrefetchQueue(capacity=2)
        queue.offer(cand(1))
        queue.offer(cand(2))
        queue.offer(cand(3))
        assert queue.state_of(1) is None
        assert len(queue) == 2
        assert queue.stats.overflow_drops == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PrefetchQueue(capacity=0)


class TestFiltering:
    def test_recent_demand_fetch_drops_candidate(self):
        queue = PrefetchQueue(capacity=4, recent_capacity=4)
        queue.note_demand_fetch(10)
        assert not queue.offer(cand(10))
        assert queue.stats.dropped_recent_demand == 1

    def test_recent_list_bounded(self):
        queue = PrefetchQueue(capacity=8, recent_capacity=2)
        queue.note_demand_fetch(1)
        queue.note_demand_fetch(2)
        queue.note_demand_fetch(3)  # 1 falls out
        assert queue.offer(cand(1))
        assert not queue.offer(cand(3))

    def test_duplicate_waiting_hoists(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.offer(cand(2))
        assert not queue.offer(cand(1))  # duplicate -> hoist, not re-add
        assert queue.stats.hoisted == 1
        assert queue.pop_ready().line == 1  # hoisted to head

    def test_duplicate_of_issued_dropped(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.pop_ready()
        assert not queue.offer(cand(1))
        assert queue.stats.dropped_dup_issued == 1

    def test_duplicate_of_invalidated_dropped(self):
        # Use a tiny recent list so the invalidated line ages out of it
        # and the duplicate is caught by the queue record, not the
        # recent-demand filter.
        queue = PrefetchQueue(capacity=8, recent_capacity=1)
        queue.offer(cand(1))
        queue.note_demand_fetch(1)  # invalidates the waiting entry
        assert queue.stats.invalidated_by_demand == 1
        queue.note_demand_fetch(2)  # pushes 1 out of the recent list
        assert not queue.offer(cand(1))
        assert queue.stats.dropped_dup_invalid == 1

    def test_demand_fetch_invalidates_waiting(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(5))
        queue.note_demand_fetch(5)
        assert queue.state_of(5) == QueueState.INVALID
        assert queue.pop_ready() is None

    def test_demand_fetch_does_not_invalidate_issued(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(5))
        queue.pop_ready()
        queue.note_demand_fetch(5)
        assert queue.state_of(5) == QueueState.ISSUED


class TestUnfilteredMode:
    def test_duplicates_allowed(self):
        queue = PrefetchQueue(capacity=4, filtering=False)
        assert queue.offer(cand(1))
        assert queue.offer(cand(1))
        assert len(queue) == 2

    def test_recent_demands_ignored(self):
        queue = PrefetchQueue(capacity=4, filtering=False)
        queue.note_demand_fetch(1)
        assert queue.offer(cand(1))

    def test_capacity_still_enforced(self):
        queue = PrefetchQueue(capacity=2, filtering=False)
        for line in range(5):
            queue.offer(cand(line))
        assert len(queue) == 2

    def test_state_of_sees_unfiltered_entries(self):
        # Regression: _append_unfiltered used to skip the _by_line index,
        # so state_of() reported None for queued lines.
        queue = PrefetchQueue(capacity=4, filtering=False)
        queue.offer(cand(1))
        assert queue.state_of(1) == QueueState.WAITING
        queue.pop_ready()
        assert queue.state_of(1) == QueueState.ISSUED

    def test_overflow_eviction_keeps_index_consistent(self):
        queue = PrefetchQueue(capacity=2, filtering=False)
        queue.offer(cand(1))
        queue.offer(cand(2))
        queue.offer(cand(3))  # evicts 1
        assert queue.state_of(1) is None
        assert queue.state_of(2) == QueueState.WAITING
        assert queue.state_of(3) == QueueState.WAITING

    def test_evicting_an_old_duplicate_keeps_the_newer_mapping(self):
        queue = PrefetchQueue(capacity=2, filtering=False)
        queue.offer(cand(1))
        queue.offer(cand(1))  # duplicate; index tracks the newer entry
        queue.offer(cand(2))  # evicts the *older* duplicate of line 1
        assert queue.state_of(1) == QueueState.WAITING
        assert queue.state_of(2) == QueueState.WAITING

    def test_flush_clears_unfiltered_index(self):
        queue = PrefetchQueue(capacity=4, filtering=False)
        queue.offer(cand(1))
        queue.flush()
        assert queue.state_of(1) is None


class TestFilteredIndexInvariants:
    """Regression guard for the filtered-mode ``_by_line`` index.

    In filtered mode every line has at most one entry, so the index must
    stay a bijection with the entry list and ``waiting`` must equal the
    number of WAITING entries — including across overflow evictions,
    demand invalidations, pops and requeues.  (The unfiltered path has
    its own newest-wins tests above.)
    """

    @staticmethod
    def check_invariants(queue):
        entries = queue._entries
        by_line = queue._by_line
        # Bijection: one index slot per entry, mapping to that entry.
        assert len(by_line) == len(entries)
        for entry in entries:
            assert by_line[entry.line] is entry
        # Maintained waiting counter matches a full recount.
        recount = sum(1 for e in entries if e.state == QueueState.WAITING)
        assert queue.waiting == recount
        # state_of is truthful for every resident line.
        for entry in entries:
            assert queue.state_of(entry.line) == QueueState(entry.state)

    def test_overflow_evicting_waiting_entry_decrements_waiting(self):
        queue = PrefetchQueue(capacity=2, recent_capacity=2)
        queue.offer(cand(1))
        queue.offer(cand(2))
        assert queue.waiting == 2
        queue.offer(cand(3))  # evicts waiting entry 1
        assert queue.waiting == 2
        self.check_invariants(queue)

    def test_overflow_evicting_issued_entry_keeps_waiting(self):
        queue = PrefetchQueue(capacity=2, recent_capacity=2, lifo=False)
        queue.offer(cand(1))
        queue.pop_ready()  # 1 becomes ISSUED filter memory (oldest)
        queue.offer(cand(2))
        queue.offer(cand(3))  # evicts the issued record, not a waiting one
        assert queue.state_of(1) is None
        assert queue.waiting == 2
        self.check_invariants(queue)

    def test_randomized_workload_preserves_index_bijection(self):
        import random

        rng = random.Random(0x5EED)
        queue = PrefetchQueue(capacity=8, recent_capacity=4)
        issued = []
        for _ in range(2000):
            op = rng.random()
            line = rng.randrange(24)  # small space forces duplicates
            if op < 0.55:
                queue.offer(cand(line))
            elif op < 0.75:
                queue.note_demand_fetch(line)
            elif op < 0.92:
                entry = queue.pop_ready()
                if entry is not None:
                    issued.append(entry)
            elif issued and op < 0.97:
                # MSHR-full put-back of a previously issued entry, but only
                # if it is still resident (requeue of an evicted record
                # would resurrect a ghost — the engine never does that).
                entry = issued.pop(rng.randrange(len(issued)))
                if queue._by_line.get(entry.line) is entry:
                    queue.requeue(entry)
            else:
                queue.flush()
                issued.clear()
            self.check_invariants(queue)
        # The workload must actually have exercised the interesting paths.
        assert queue.stats.overflow_drops > 0
        assert queue.stats.invalidated_by_demand > 0
        assert queue.stats.hoisted > 0


class TestIntrospection:
    def test_waiting_count(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.offer(cand(2))
        queue.pop_ready()
        assert queue.waiting_count() == 1

    def test_has_ready(self):
        queue = PrefetchQueue(capacity=4)
        assert not queue.has_ready()
        queue.offer(cand(1))
        assert queue.has_ready()
        queue.pop_ready()
        assert not queue.has_ready()

    def test_flush(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.note_demand_fetch(9)
        queue.flush()
        assert len(queue) == 0
        assert queue.offer(cand(9))  # recent list cleared too

    def test_stats_reset(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.stats.reset()
        assert queue.stats.offered == 0
        assert queue.stats.accepted == 0

    def test_capacity_property(self):
        assert PrefetchQueue(capacity=7).capacity == 7
