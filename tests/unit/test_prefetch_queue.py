"""Unit tests for the prefetch queue + filtering (paper §4.1)."""

import pytest

from repro.prefetch.base import PrefetchCandidate
from repro.prefetch.queue import PrefetchQueue, QueueState


def cand(line, provenance=("seq",)):
    return PrefetchCandidate(line, provenance)


class TestOfferAndPop:
    def test_accept_and_pop(self):
        queue = PrefetchQueue(capacity=4)
        assert queue.offer(cand(10))
        entry = queue.pop_ready()
        assert entry.line == 10
        assert entry.state == QueueState.ISSUED

    def test_lifo_order(self):
        queue = PrefetchQueue(capacity=4)
        for line in (1, 2, 3):
            queue.offer(cand(line))
        assert queue.pop_ready().line == 3
        assert queue.pop_ready().line == 2
        assert queue.pop_ready().line == 1
        assert queue.pop_ready() is None

    def test_fifo_mode(self):
        queue = PrefetchQueue(capacity=4, lifo=False)
        for line in (1, 2, 3):
            queue.offer(cand(line))
        assert queue.pop_ready().line == 1

    def test_issued_entry_stays_as_filter_memory(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(10))
        queue.pop_ready()
        assert len(queue) == 1
        assert queue.state_of(10) == QueueState.ISSUED

    def test_overflow_drops_oldest(self):
        queue = PrefetchQueue(capacity=2)
        queue.offer(cand(1))
        queue.offer(cand(2))
        queue.offer(cand(3))
        assert queue.state_of(1) is None
        assert len(queue) == 2
        assert queue.stats.overflow_drops == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PrefetchQueue(capacity=0)


class TestFiltering:
    def test_recent_demand_fetch_drops_candidate(self):
        queue = PrefetchQueue(capacity=4, recent_capacity=4)
        queue.note_demand_fetch(10)
        assert not queue.offer(cand(10))
        assert queue.stats.dropped_recent_demand == 1

    def test_recent_list_bounded(self):
        queue = PrefetchQueue(capacity=8, recent_capacity=2)
        queue.note_demand_fetch(1)
        queue.note_demand_fetch(2)
        queue.note_demand_fetch(3)  # 1 falls out
        assert queue.offer(cand(1))
        assert not queue.offer(cand(3))

    def test_duplicate_waiting_hoists(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.offer(cand(2))
        assert not queue.offer(cand(1))  # duplicate -> hoist, not re-add
        assert queue.stats.hoisted == 1
        assert queue.pop_ready().line == 1  # hoisted to head

    def test_duplicate_of_issued_dropped(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.pop_ready()
        assert not queue.offer(cand(1))
        assert queue.stats.dropped_dup_issued == 1

    def test_duplicate_of_invalidated_dropped(self):
        # Use a tiny recent list so the invalidated line ages out of it
        # and the duplicate is caught by the queue record, not the
        # recent-demand filter.
        queue = PrefetchQueue(capacity=8, recent_capacity=1)
        queue.offer(cand(1))
        queue.note_demand_fetch(1)  # invalidates the waiting entry
        assert queue.stats.invalidated_by_demand == 1
        queue.note_demand_fetch(2)  # pushes 1 out of the recent list
        assert not queue.offer(cand(1))
        assert queue.stats.dropped_dup_invalid == 1

    def test_demand_fetch_invalidates_waiting(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(5))
        queue.note_demand_fetch(5)
        assert queue.state_of(5) == QueueState.INVALID
        assert queue.pop_ready() is None

    def test_demand_fetch_does_not_invalidate_issued(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(5))
        queue.pop_ready()
        queue.note_demand_fetch(5)
        assert queue.state_of(5) == QueueState.ISSUED


class TestUnfilteredMode:
    def test_duplicates_allowed(self):
        queue = PrefetchQueue(capacity=4, filtering=False)
        assert queue.offer(cand(1))
        assert queue.offer(cand(1))
        assert len(queue) == 2

    def test_recent_demands_ignored(self):
        queue = PrefetchQueue(capacity=4, filtering=False)
        queue.note_demand_fetch(1)
        assert queue.offer(cand(1))

    def test_capacity_still_enforced(self):
        queue = PrefetchQueue(capacity=2, filtering=False)
        for line in range(5):
            queue.offer(cand(line))
        assert len(queue) == 2

    def test_state_of_sees_unfiltered_entries(self):
        # Regression: _append_unfiltered used to skip the _by_line index,
        # so state_of() reported None for queued lines.
        queue = PrefetchQueue(capacity=4, filtering=False)
        queue.offer(cand(1))
        assert queue.state_of(1) == QueueState.WAITING
        queue.pop_ready()
        assert queue.state_of(1) == QueueState.ISSUED

    def test_overflow_eviction_keeps_index_consistent(self):
        queue = PrefetchQueue(capacity=2, filtering=False)
        queue.offer(cand(1))
        queue.offer(cand(2))
        queue.offer(cand(3))  # evicts 1
        assert queue.state_of(1) is None
        assert queue.state_of(2) == QueueState.WAITING
        assert queue.state_of(3) == QueueState.WAITING

    def test_evicting_an_old_duplicate_keeps_the_newer_mapping(self):
        queue = PrefetchQueue(capacity=2, filtering=False)
        queue.offer(cand(1))
        queue.offer(cand(1))  # duplicate; index tracks the newer entry
        queue.offer(cand(2))  # evicts the *older* duplicate of line 1
        assert queue.state_of(1) == QueueState.WAITING
        assert queue.state_of(2) == QueueState.WAITING

    def test_flush_clears_unfiltered_index(self):
        queue = PrefetchQueue(capacity=4, filtering=False)
        queue.offer(cand(1))
        queue.flush()
        assert queue.state_of(1) is None


class TestIntrospection:
    def test_waiting_count(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.offer(cand(2))
        queue.pop_ready()
        assert queue.waiting_count() == 1

    def test_has_ready(self):
        queue = PrefetchQueue(capacity=4)
        assert not queue.has_ready()
        queue.offer(cand(1))
        assert queue.has_ready()
        queue.pop_ready()
        assert not queue.has_ready()

    def test_flush(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.note_demand_fetch(9)
        queue.flush()
        assert len(queue) == 0
        assert queue.offer(cand(9))  # recent list cleared too

    def test_stats_reset(self):
        queue = PrefetchQueue(capacity=4)
        queue.offer(cand(1))
        queue.stats.reset()
        assert queue.stats.offered == 0
        assert queue.stats.accepted == 0

    def test_capacity_property(self):
        assert PrefetchQueue(capacity=7).capacity == 7
