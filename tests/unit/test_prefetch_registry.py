"""Unit tests for the prefetcher registry."""

import pytest

from repro.prefetch.base import NullPrefetcher, Prefetcher
from repro.prefetch.discontinuity import DiscontinuityPrefetcher
from repro.prefetch.registry import (
    PREFETCHER_NAMES,
    create_prefetcher,
    prefetcher_display_name,
)
from repro.prefetch.sequential import NextNLineTagged


class TestRegistry:
    def test_all_names_constructible(self):
        for name in PREFETCHER_NAMES:
            assert isinstance(create_prefetcher(name), Prefetcher)

    def test_none_is_null(self):
        assert isinstance(create_prefetcher("none"), NullPrefetcher)

    def test_paper_scheme_set_present(self):
        for name in (
            "next-line-on-miss",
            "next-line-tagged",
            "next-4-line",
            "discontinuity",
            "discontinuity-2nl",
        ):
            assert name in PREFETCHER_NAMES

    def test_discontinuity_overrides(self):
        pf = create_prefetcher("discontinuity", table_entries=256, prefetch_ahead=3)
        assert isinstance(pf, DiscontinuityPrefetcher)
        assert pf.table.entries == 256
        assert pf.prefetch_ahead == 3

    def test_2nl_variant_pins_prefetch_ahead(self):
        pf = create_prefetcher("discontinuity-2nl", table_entries=512)
        assert pf.prefetch_ahead == 2
        assert pf.table.entries == 512

    def test_next_4_line(self):
        pf = create_prefetcher("next-4-line")
        assert isinstance(pf, NextNLineTagged)
        assert pf.degree == 4

    def test_irrelevant_overrides_ignored(self):
        pf = create_prefetcher("next-line-tagged", table_entries=64)
        assert pf.name == "next-line-tagged"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown prefetcher"):
            create_prefetcher("stride-gcc")

    def test_instances_are_fresh(self):
        a = create_prefetcher("discontinuity")
        b = create_prefetcher("discontinuity")
        assert a is not b
        assert a.table is not b.table

    def test_display_names(self):
        assert prefetcher_display_name("next-line-on-miss") == "Next-line (on miss)"
        assert prefetcher_display_name("discontinuity-2nl") == "Discont (2NL)"
        assert prefetcher_display_name("unregistered") == "unregistered"
