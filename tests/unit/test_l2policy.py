"""Unit tests for the L2 install policies."""

import pytest

from repro.core.l2policy import BYPASS_INSTALL, NORMAL_INSTALL, get_policy


class TestPolicies:
    def test_normal_installs_fills(self):
        assert NORMAL_INSTALL.install_prefetch_fills
        assert NORMAL_INSTALL.promote_on_prefetch_hit
        assert not NORMAL_INSTALL.install_used_on_eviction

    def test_bypass_defers_installs(self):
        assert not BYPASS_INSTALL.install_prefetch_fills
        assert not BYPASS_INSTALL.promote_on_prefetch_hit
        assert BYPASS_INSTALL.install_used_on_eviction

    def test_get_policy(self):
        assert get_policy("normal") is NORMAL_INSTALL
        assert get_policy("bypass") is BYPASS_INSTALL

    def test_get_policy_unknown(self):
        with pytest.raises(KeyError, match="unknown L2 install policy"):
            get_policy("writeback")
