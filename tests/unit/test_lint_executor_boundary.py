"""R4 (executor boundary): worker-payload builders may only construct
JSON-safe plain data."""

from __future__ import annotations

from repro.lint.rules import ExecutorBoundaryRule
from tests.unit.conftest import write_tree_file

DISKCACHE_WITH_SET = """
    SCHEMA_VERSION = 1


    def _config_to_dict(config):
        return {"n_cores": config.n_cores}


    def _core_to_dict(core):
        return {"instructions": core.instructions,
                "classes": set(core.classes)}


    def _link_to_dict(link):
        return {"requests": link.requests}


    def result_to_payload(result, spec=None):
        return {
            "schema": SCHEMA_VERSION,
            "config": _config_to_dict(result.config),
            "cores": [_core_to_dict(core) for core in result.cores],
            "link": _link_to_dict(result.link),
        }
    """

#: the fix R4's hint asks for: sets become sorted lists.
DISKCACHE_FIXED = DISKCACHE_WITH_SET.replace(
    "set(core.classes)", "sorted(core.classes)"
)


def test_base_tree_is_clean(lint_tree):
    assert ExecutorBoundaryRule().check(lint_tree()) == []


def test_set_in_payload_builder_fails(lint_tree):
    project = lint_tree({"src/repro/eval/diskcache.py": DISKCACHE_WITH_SET})
    violations = ExecutorBoundaryRule().check(project)
    assert len(violations) == 1
    assert "set()" in violations[0].message
    assert "'_core_to_dict'" in violations[0].message
    assert "sorted lists" in violations[0].hint


def test_fix_it_hint_resolves_the_violation(lint_tree):
    project = lint_tree({"src/repro/eval/diskcache.py": DISKCACHE_WITH_SET})
    assert ExecutorBoundaryRule().check(project) != []
    project = write_tree_file(
        project.root, "src/repro/eval/diskcache.py", DISKCACHE_FIXED
    )
    assert ExecutorBoundaryRule().check(project) == []


def test_lambda_and_set_literal_in_worker_fail(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/executor.py": """
            from repro.eval import diskcache


            def _worker(spec):
                tags = {spec.workload}
                thunk = lambda: diskcache.result_to_payload(spec.simulate(), spec)
                return {"payload": thunk(), "tags": tags}
            """
        }
    )
    messages = [v.message for v in ExecutorBoundaryRule().check(project)]
    assert any("lambda" in message for message in messages)
    assert any("set constructed" in message for message in messages)


def test_class_instance_in_payload_fails_unless_allowlisted(lint_tree):
    overrides = {
        "src/repro/eval/executor.py": """
        from repro.eval import diskcache
        from repro.eval.wrapper import Payload


        def _worker(spec):
            return Payload(diskcache.result_to_payload(spec.simulate(), spec))


        def report_to_summary(report):
            return {"event": "sweep", "total": report.total}
        """
    }
    project = lint_tree(overrides)
    violations = ExecutorBoundaryRule().check(project)
    assert len(violations) == 1
    assert "Payload()" in violations[0].message

    allowing = ExecutorBoundaryRule(
        allowed_calls={"Payload": "returns a plain dict, verified in review"}
    )
    assert allowing.check(project) == []


def test_sweep_summary_builder_is_guarded(lint_tree):
    """report_to_summary is an R4 target: non-plain data in it fails lint."""
    project = lint_tree(
        {
            "src/repro/eval/executor.py": """
            from repro.eval import diskcache


            def _worker(spec):
                return diskcache.result_to_payload(spec.simulate(), spec)


            def report_to_summary(report):
                return {"event": "sweep", "labels": set(report.labels)}
            """
        }
    )
    violations = ExecutorBoundaryRule().check(project)
    assert len(violations) == 1
    assert "'report_to_summary'" in violations[0].message
    assert "set()" in violations[0].message


def test_renamed_builder_is_reported(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/executor.py": """
            from repro.eval import diskcache


            def _worker_v2(spec):
                return diskcache.result_to_payload(spec.simulate(), spec)


            def report_to_summary(report):
                return {"event": "sweep", "total": report.total}
            """
        }
    )
    violations = ExecutorBoundaryRule().check(project)
    assert len(violations) == 1
    assert "'_worker' not found" in violations[0].message
    assert "DEFAULT_TARGETS" in violations[0].hint


def test_numpy_scalar_in_payload_builder_fails(lint_tree):
    """np.int64/np.float64 leaking into a payload is rejected statically."""
    project = lint_tree(
        {
            "src/repro/eval/diskcache.py": """
            import numpy as np

            SCHEMA_VERSION = 1


            def _config_to_dict(config):
                return {"n_cores": config.n_cores}


            def _core_to_dict(core):
                return {"instructions": np.int64(core.instructions),
                        "cycles": np.float64(core.cycles)}


            def _link_to_dict(link):
                return {"requests": link.requests}


            def result_to_payload(result, spec=None):
                return {
                    "schema": SCHEMA_VERSION,
                    "config": _config_to_dict(result.config),
                    "cores": [_core_to_dict(core) for core in result.cores],
                    "link": _link_to_dict(result.link),
                }
            """
        }
    )
    violations = ExecutorBoundaryRule().check(project)
    messages = [violation.message for violation in violations]
    assert any("np.int64" in message for message in messages)
    assert any("np.float64" in message for message in messages)
    assert all("_core_to_dict" in message for message in messages)
    assert all("_plain_number" in violation.hint for violation in violations)


def test_numba_scalar_in_payload_builder_fails(lint_tree):
    """numba.int64/nb.float64 box numpy scalars; also rejected statically."""
    project = lint_tree(
        {
            "src/repro/eval/diskcache.py": """
            import numba
            import numba as nb

            SCHEMA_VERSION = 1


            def _config_to_dict(config):
                return {"n_cores": config.n_cores}


            def _core_to_dict(core):
                return {"instructions": numba.int64(core.instructions),
                        "cycles": nb.float64(core.cycles)}


            def _link_to_dict(link):
                return {"requests": link.requests}


            def result_to_payload(result, spec=None):
                return {
                    "schema": SCHEMA_VERSION,
                    "config": _config_to_dict(result.config),
                    "cores": [_core_to_dict(core) for core in result.cores],
                    "link": _link_to_dict(result.link),
                }
            """
        }
    )
    violations = ExecutorBoundaryRule().check(project)
    messages = [violation.message for violation in violations]
    assert any("numba.int64" in message for message in messages)
    assert any("nb.float64" in message for message in messages)
    assert all("_core_to_dict" in message for message in messages)
    assert all("_plain_number" in violation.hint for violation in violations)


def test_benign_numpy_use_outside_builders_passes(lint_tree):
    """The numpy-scalar check is scoped to payload builders only."""
    project = lint_tree(
        {
            "src/repro/eval/diskcache.py": """
            import numpy as np

            SCHEMA_VERSION = 1


            def decode(buffer):
                return np.frombuffer(buffer, dtype=np.int64).tolist()


            def _config_to_dict(config):
                return {"n_cores": config.n_cores}


            def _core_to_dict(core):
                return {"instructions": core.instructions}


            def _link_to_dict(link):
                return {"requests": link.requests}


            def result_to_payload(result, spec=None):
                return {
                    "schema": SCHEMA_VERSION,
                    "config": _config_to_dict(result.config),
                    "cores": [_core_to_dict(core) for core in result.cores],
                    "link": _link_to_dict(result.link),
                }
            """
        }
    )
    assert ExecutorBoundaryRule().check(project) == []
