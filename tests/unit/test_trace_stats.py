"""Unit tests for repro.trace.stats."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.trace.record import BlockEvent
from repro.trace.stats import compute_trace_stats

SEQ = int(TransitionKind.SEQUENTIAL)
CALL = int(TransitionKind.CALL)


def stats_of(events, **kwargs):
    return compute_trace_stats([BlockEvent(*event) for event in events], **kwargs)


class TestComputeTraceStats:
    def test_counts(self):
        stats = stats_of([(0, 5, SEQ, (1, 2)), (64, 7, CALL, (3,))])
        assert stats.total_instructions == 12
        assert stats.total_events == 2
        assert stats.total_data_accesses == 3

    def test_kind_counts(self):
        stats = stats_of([(0, 5, SEQ, ()), (64, 7, CALL, ()), (128, 2, CALL, ())])
        assert stats.kind_counts[TransitionKind.SEQUENTIAL] == 1
        assert stats.kind_counts[TransitionKind.CALL] == 2

    def test_kind_fraction(self):
        stats = stats_of([(0, 5, SEQ, ()), (64, 7, CALL, ())])
        assert stats.kind_fraction(TransitionKind.CALL) == pytest.approx(0.5)
        assert stats.kind_fraction(TransitionKind.TRAP) == 0.0

    def test_instruction_footprint_counts_distinct_lines(self):
        # Two blocks in the same 64B line + one in another line.
        stats = stats_of([(0, 4, SEQ, ()), (16, 4, SEQ, ()), (128, 4, SEQ, ())])
        assert stats.instruction_footprint_bytes == 2 * 64

    def test_block_spanning_lines_counts_both(self):
        stats = stats_of([(0, 32, SEQ, ())])  # 128 bytes = 2 lines
        assert stats.instruction_footprint_bytes == 2 * 64

    def test_data_footprint(self):
        stats = stats_of([(0, 4, SEQ, (0x1000, 0x1004, 0x2000))])
        assert stats.data_footprint_bytes == 2 * 64

    def test_mean_block_instructions(self):
        stats = stats_of([(0, 4, SEQ, ()), (64, 8, SEQ, ())])
        assert stats.mean_block_instructions == pytest.approx(6.0)

    def test_data_accesses_per_instruction(self):
        stats = stats_of([(0, 10, SEQ, (1, 2, 3))])
        assert stats.data_accesses_per_instruction == pytest.approx(0.3)

    def test_empty_trace(self):
        stats = stats_of([])
        assert stats.total_instructions == 0
        assert stats.mean_block_instructions == 0.0
        assert stats.data_accesses_per_instruction == 0.0

    def test_granularity_validation(self):
        with pytest.raises(ValueError):
            stats_of([(0, 1, SEQ, ())], footprint_granularity=48)
        with pytest.raises(ValueError):
            stats_of([(0, 1, SEQ, ())], footprint_granularity=0)

    def test_custom_granularity(self):
        stats = stats_of([(0, 32, SEQ, ())], footprint_granularity=32)
        assert stats.instruction_footprint_bytes == 128
