"""Unit tests for the per-core front-end engine with crafted traces.

These build tiny deterministic traces and small caches so individual
mechanisms — miss classification, fetch stalls, tagged prefetch triggers,
late-prefetch residual stalls, bypass promotion — can be asserted exactly.
"""

import pytest

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.cmp.link import OffChipLink
from repro.core.engine import CoreEngine, EngineConfig
from repro.core.l2policy import BYPASS_INSTALL, NORMAL_INSTALL
from repro.isa.classify import MissClass
from repro.isa.kinds import TransitionKind
from repro.prefetch.base import NullPrefetcher
from repro.prefetch.queue import PrefetchQueue
from repro.prefetch.registry import create_prefetcher
from repro.timing.params import TimingParams
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace

SEQ = int(TransitionKind.SEQUENTIAL)
CALL = int(TransitionKind.CALL)
TF = int(TransitionKind.COND_TAKEN_FWD)

TIMING = TimingParams(
    issue_width=4.0,
    l2_latency=20,
    memory_latency=100,
    # Zero overhead keeps cycle arithmetic exact for assertions.
    base_cpi_overhead=0.0,
    fetch_stall_exposed_fraction=1.0,
    # Generous prefetch slots so tests exercise prefetching readily.
    prefetch_slot_rate=1.0,
)


def make_trace(events):
    return Trace("manual", 0, [BlockEvent(*event) for event in events])


def make_engine(
    events,
    prefetcher=None,
    l2_policy=NORMAL_INSTALL,
    l1i_kb=1,
    l2_kb=64,
    warm=0,
    free_classes=frozenset(),
    link_bpc=64.0,
):
    """One core with a small L1I (16 lines by default) and L2."""
    trace = make_trace(events)
    l1i = SetAssociativeCache("L1I", CacheConfig(l1i_kb * 1024, 4, 64))
    l1d = SetAssociativeCache("L1D", CacheConfig(8 * 1024, 4, 64))
    l2 = SetAssociativeCache("L2", CacheConfig(l2_kb * 1024, 4, 64))
    link = OffChipLink(link_bpc, 64)
    engine = CoreEngine(
        EngineConfig(warm_instructions=warm, free_miss_classes=free_classes, l2_policy=l2_policy),
        trace,
        64,
        l1i,
        l1d,
        l2,
        link,
        prefetcher or NullPrefetcher(),
        PrefetchQueue(),
        TIMING,
    )
    return engine


def seq_events(n_lines, start=0x10000, instr_per_line=16):
    """n_lines sequential line-filling blocks."""
    return [(start + i * 64, instr_per_line, SEQ, ()) for i in range(n_lines)]


class TestBaselineFetch:
    def test_every_new_line_misses_once(self):
        engine = make_engine(seq_events(8))
        stats = engine.run()
        assert stats.l1i_fetches == 8
        assert stats.l1i_misses == 8
        assert stats.instructions == 8 * 16

    def test_revisit_hits(self):
        events = seq_events(4) + [(0x10000, 16, TF, ())] + seq_events(3, start=0x10040)
        engine = make_engine(events)
        stats = engine.run()
        # 4 cold misses; the revisits all hit.
        assert stats.l1i_misses == 4
        assert stats.l1i_fetches == 8

    def test_miss_classification(self):
        events = [
            (0x10000, 16, SEQ, ()),
            (0x20000, 16, CALL, ()),
            (0x30000, 16, TF, ()),
        ]
        stats = make_engine(events).run()
        assert stats.l1i_breakdown.count(TransitionKind.SEQUENTIAL) == 1
        assert stats.l1i_breakdown.count(TransitionKind.CALL) == 1
        assert stats.l1i_breakdown.count(TransitionKind.COND_TAKEN_FWD) == 1

    def test_cycles_include_memory_stalls(self):
        stats = make_engine(seq_events(2)).run()
        # 2 memory misses (100 cycles each) + 32 instructions at width 4.
        expected = 2 * 100 + 32 / 4.0
        assert stats.cycles == pytest.approx(expected)
        assert stats.fetch_stall_cycles == pytest.approx(200.0)
        assert stats.exec_cycles == pytest.approx(8.0)

    def test_l2_hit_costs_l2_latency(self):
        # Visit two lines, thrash L1I with 16 other lines mapping over it,
        # then revisit: L2 hit at 20 cycles.
        events = (
            seq_events(1)
            + seq_events(16, start=0x20000)
            + [(0x10000, 16, TF, ())]
        )
        stats = make_engine(events).run()
        assert stats.l2i_demand_accesses == 18
        assert stats.l2i_demand_misses == 17  # all but the final revisit
        # Final stall was an L2 hit: fetch stalls = 17 * 100 + 20.
        assert stats.fetch_stall_cycles == pytest.approx(17 * 100 + 20)

    def test_ipc_computed(self):
        stats = make_engine(seq_events(2)).run()
        assert stats.ipc == pytest.approx(32 / (200 + 8.0))


class TestFreeMissClasses:
    def test_free_sequential_waives_stall(self):
        stats = make_engine(
            seq_events(4), free_classes=frozenset({MissClass.SEQUENTIAL})
        ).run()
        assert stats.l1i_misses == 4  # still counted as misses
        assert stats.fetch_stall_cycles == 0.0

    def test_other_classes_still_charged(self):
        events = [(0x10000, 16, SEQ, ()), (0x20000, 16, CALL, ())]
        stats = make_engine(
            events, free_classes=frozenset({MissClass.SEQUENTIAL})
        ).run()
        assert stats.fetch_stall_cycles == pytest.approx(100.0)  # the CALL miss


class TestWarmup:
    def test_warm_window_excluded(self):
        engine = make_engine(seq_events(10), warm=64)  # warm = first 4 blocks
        stats = engine.run()
        assert stats.instructions == 6 * 16
        assert stats.l1i_misses == 6
        # Cycles only cover the measurement window.
        assert stats.cycles == pytest.approx(6 * 100 + 6 * 16 / 4.0)


class TestPrefetching:
    def test_next_line_tagged_covers_sequential_run(self):
        prefetcher = create_prefetcher("next-line-tagged")
        engine = make_engine(seq_events(32), prefetcher=prefetcher)
        stats = engine.run()
        # First line misses; the tagged chain should prefetch most of the
        # rest (some may arrive late but they are still not misses).
        assert stats.l1i_misses <= 3
        assert stats.prefetch.useful >= 28

    def test_late_prefetch_charges_residual_only(self):
        prefetcher = create_prefetcher("next-line-tagged")
        engine = make_engine(seq_events(8), prefetcher=prefetcher)
        stats = engine.run()
        assert stats.prefetch.useful_late > 0
        # Residual stalls are less than full misses would have been.
        assert stats.fetch_stall_cycles < 8 * 100

    def test_prefetch_accuracy_accounting(self):
        prefetcher = create_prefetcher("next-line-tagged")
        stats = make_engine(seq_events(32), prefetcher=prefetcher).run()
        assert stats.prefetch.issued >= stats.prefetch.useful
        assert 0.0 < stats.prefetch.accuracy <= 1.0

    def test_useless_prefetches_counted_on_eviction(self):
        # Fetch one line, prefetch brings the next; then jump far away and
        # thrash the L1I so the unused prefetched line is evicted.
        events = (
            seq_events(1)
            + seq_events(40, start=0x40000)
        )
        prefetcher = create_prefetcher("next-4-line")
        stats = make_engine(events, prefetcher=prefetcher, l1i_kb=1).run()
        assert stats.prefetch.useless_evicted > 0

    def test_discontinuity_learns_and_covers(self):
        # A repeated pattern: line A -> distant line B. After the first
        # miss of B, the discontinuity prefetcher should cover later visits.
        loop = [
            (0x10000, 16, TF, ()),
            (0x80000, 16, CALL, ()),
            (0x90000, 16, TF, ()),  # decoy lines to churn the L1I
        ]
        thrash = seq_events(20, start=0x200000)
        events = []
        for _ in range(6):
            events += loop + thrash
        prefetcher = create_prefetcher("discontinuity", table_entries=16384)
        stats = make_engine(events, prefetcher=prefetcher, l1i_kb=1).run()
        assert prefetcher.table.predict(0x10000 >> 6) == 0x80000 >> 6
        assert stats.prefetch.useful > 0


class TestBypassPolicy:
    def _run_policy(self, policy):
        # One spine line repeatedly revisited + a long prefetch-heavy run.
        events = []
        for rep in range(3):
            events += seq_events(30, start=0x40000)
        prefetcher = create_prefetcher("next-4-line")
        engine = make_engine(events, prefetcher=prefetcher, l2_kb=8, l2_policy=policy)
        stats = engine.run()
        return engine, stats

    def test_normal_installs_prefetches_into_l2(self):
        engine, stats = self._run_policy(NORMAL_INSTALL)
        assert stats.prefetch.issued_from_memory > 0
        assert stats.prefetch.promoted_to_l2 == 0

    def test_bypass_promotes_used_lines_on_eviction(self):
        engine, stats = self._run_policy(BYPASS_INSTALL)
        assert stats.prefetch.promoted_to_l2 > 0

    def test_bypass_keeps_useless_lines_out_of_l2(self):
        # Prefetch beyond the end of a run: those lines are never used and
        # must never appear in the L2 under bypass.
        events = seq_events(4) + [(0x80000, 16, CALL, ())]
        prefetcher = create_prefetcher("next-4-line")
        engine = make_engine(events, prefetcher=prefetcher, l2_policy=BYPASS_INSTALL)
        engine.run()
        # Lines beyond the 4-block run (e.g. base+5..7) may have been
        # prefetched; they must not be L2-resident.
        base = 0x10000 >> 6
        resident = {line for line, _ in engine.l2.resident_lines()}
        prefetched_tail = {base + 5, base + 6, base + 7}
        assert not (prefetched_tail & resident)


class TestDataPath:
    def test_data_hits_cost_nothing(self):
        # Same data line touched repeatedly: one L1D miss then hits.
        events = [(0x10000 + i * 64, 16, SEQ, (0x4000000,)) for i in range(4)]
        stats = make_engine(events).run()
        assert stats.data_accesses == 4
        assert stats.l1d_misses == 1

    def test_l2_data_misses_counted(self):
        events = [(0x10000, 16, SEQ, tuple(0x4000000 + i * 64 for i in range(8)))]
        stats = make_engine(events).run()
        assert stats.l2d_misses == 8
        assert stats.data_stall_cycles > 0

    def test_data_stalls_use_exposure_fraction(self):
        events = [(0x10000, 16, SEQ, (0x4000000,))]
        stats = make_engine(events).run()
        expected = 100 * TIMING.data_memory_exposed_fraction
        assert stats.data_stall_cycles == pytest.approx(expected)


class TestStepInterface:
    def test_step_returns_false_at_end(self):
        engine = make_engine(seq_events(2))
        assert engine.step()
        assert engine.step()
        assert not engine.step()
        assert engine.finished

    def test_run_is_idempotent_after_finish(self):
        engine = make_engine(seq_events(2))
        engine.run()
        assert not engine.step()
