"""Unit tests for the binary trace format (repro.trace.io)."""

import struct

import pytest

from repro.isa.kinds import TransitionKind
from repro.trace.io import TraceFormatError, read_trace, write_trace
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace

SEQ = int(TransitionKind.SEQUENTIAL)
CALL = int(TransitionKind.CALL)


def sample_trace() -> Trace:
    events = [
        BlockEvent(0x1000, 5, SEQ, ()),
        BlockEvent(0x2040, 12, CALL, (0x40000000, 0x40000040)),
        BlockEvent(0x1000, 3, SEQ, (0x50000000,)),
    ]
    return Trace("sample", 42, events)


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        path = tmp_path / "trace.bin"
        original = sample_trace()
        write_trace(original, path)
        loaded = read_trace(path)
        assert loaded.name == original.name
        assert loaded.seed == original.seed
        assert list(loaded.events) == list(original.events)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_trace(Trace("empty", 0, []), path)
        loaded = read_trace(path)
        assert len(loaded.events) == 0
        assert loaded.name == "empty"

    def test_unicode_name(self, tmp_path):
        path = tmp_path / "u.bin"
        write_trace(Trace("wörkload-⚙", 1, []), path)
        assert read_trace(path).name == "wörkload-⚙"

    def test_oversized_data_list_truncated(self, tmp_path):
        path = tmp_path / "big.bin"
        event = BlockEvent(0, 1, SEQ, tuple(range(300)))
        write_trace(Trace("big", 0, [event]), path)
        loaded = read_trace(path)
        assert len(loaded.events[0].data) == 255


class TestMalformedFiles:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + b"\0" * 32)
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"RP")
        with pytest.raises(TraceFormatError, match="header"):
            read_trace(path)

    def test_truncated_events(self, tmp_path):
        path = tmp_path / "trunc.bin"
        write_trace(sample_trace(), path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-6])
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_trailing_garbage(self, tmp_path):
        path = tmp_path / "extra.bin"
        write_trace(sample_trace(), path)
        path.write_bytes(path.read_bytes() + b"xx")
        with pytest.raises(TraceFormatError, match="trailing"):
            read_trace(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "kind.bin"
        header = struct.Struct("<8sQQH").pack(b"RPTRACE1", 0, 1, 0)
        event = struct.Struct("<QHBB").pack(0, 1, 200, 0)  # kind 200 invalid
        path.write_bytes(header + event)
        with pytest.raises(TraceFormatError, match="kind"):
            read_trace(path)

    def test_zero_instruction_event(self, tmp_path):
        path = tmp_path / "zero.bin"
        header = struct.Struct("<8sQQH").pack(b"RPTRACE1", 0, 1, 0)
        event = struct.Struct("<QHBB").pack(0, 0, SEQ, 0)
        path.write_bytes(header + event)
        with pytest.raises(TraceFormatError, match="zero-instruction"):
            read_trace(path)

    def test_truncated_name_field(self, tmp_path):
        path = tmp_path / "name.bin"
        # header promises a 32-byte name but only 2 bytes follow
        path.write_bytes(struct.Struct("<8sQQH").pack(b"RPTRACE1", 0, 0, 32) + b"ab")
        with pytest.raises(TraceFormatError, match="truncated name"):
            read_trace(path)

    def test_invalid_utf8_name(self, tmp_path):
        path = tmp_path / "utf8.bin"
        path.write_bytes(struct.Struct("<8sQQH").pack(b"RPTRACE1", 0, 0, 2) + b"\xff\xfe")
        with pytest.raises(TraceFormatError, match="not valid UTF-8"):
            read_trace(path)

    def test_absurd_event_count_rejected_up_front(self, tmp_path):
        path = tmp_path / "absurd.bin"
        # one real event on disk, but the header claims 2**40 — the
        # reader must reject from the byte bound, not loop to find out
        header = struct.Struct("<8sQQH").pack(b"RPTRACE1", 0, 2**40, 0)
        event = struct.Struct("<QHBB").pack(0, 1, SEQ, 0)
        path.write_bytes(header + event)
        with pytest.raises(TraceFormatError, match="header declares"):
            read_trace(path)

    def test_truncated_data_list(self, tmp_path):
        path = tmp_path / "data.bin"
        header = struct.Struct("<8sQQH").pack(b"RPTRACE1", 0, 1, 0)
        # event promises 2 data words but only one (partial) follows
        event = struct.Struct("<QHBB").pack(0, 1, SEQ, 2)
        path.write_bytes(header + event + b"\0" * 8)
        with pytest.raises(TraceFormatError, match="truncated data list"):
            read_trace(path)
