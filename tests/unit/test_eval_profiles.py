"""Unit tests for experiment scale profiles and the runner plumbing."""

import pytest

from repro.eval.profiles import ExperimentScale
from repro.eval.profiles import SCALE_ENV_VAR, SCALES, get_scale
from repro.eval.runner import (
    clear_result_cache,
    clear_trace_cache,
    get_traces,
    run_system_cached,
)


class TestScales:
    def test_three_profiles(self):
        assert set(SCALES) == {"smoke", "default", "full"}

    def test_ordering(self):
        assert (
            SCALES["smoke"].measure_instructions
            < SCALES["default"].measure_instructions
            < SCALES["full"].measure_instructions
        )

    def test_totals(self):
        scale = SCALES["smoke"]
        assert scale.single_total == scale.warm_instructions + scale.measure_instructions
        assert (
            scale.cmp_total_per_core
            == scale.cmp_warm_instructions + scale.cmp_measure_instructions
        )

    def test_cmp_warm_scaled_down(self):
        scale = SCALES["default"]
        assert scale.cmp_warm_instructions < scale.warm_instructions

    def test_get_scale_explicit(self):
        assert get_scale("smoke") is SCALES["smoke"]

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "full")
        assert get_scale() is SCALES["full"]

    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert get_scale() is SCALES["default"]

    def test_get_scale_unknown(self):
        with pytest.raises(KeyError):
            get_scale("gigantic")


TINY = ExperimentScale(
    name="tiny",
    warm_instructions=5_000,
    measure_instructions=20_000,
    cmp_measure_instructions=10_000,
)


class TestTraceCache:
    def test_traces_cached(self):
        clear_trace_cache()
        first = get_traces("web", 1, 10_000, seed=3)
        second = get_traces("web", 1, 10_000, seed=3)
        assert first is second

    def test_cache_keyed_on_args(self):
        clear_trace_cache()
        a = get_traces("web", 1, 10_000, seed=3)
        b = get_traces("web", 1, 10_000, seed=4)
        assert a is not b

    def test_clear(self):
        first = get_traces("web", 1, 10_000, seed=3)
        clear_trace_cache()
        assert get_traces("web", 1, 10_000, seed=3) is not first


class TestResultCache:
    def test_results_cached(self):
        clear_result_cache()
        first = run_system_cached("web", 1, "none", scale=TINY)
        second = run_system_cached("web", 1, "none", scale=TINY)
        assert first is second

    def test_distinct_configs_not_conflated(self):
        clear_result_cache()
        base = run_system_cached("web", 1, "none", scale=TINY)
        prefetched = run_system_cached("web", 1, "next-line-tagged", scale=TINY)
        assert base is not prefetched

    def test_overrides_in_key(self):
        clear_result_cache()
        a = run_system_cached(
            "web", 1, "discontinuity", scale=TINY,
            prefetcher_overrides={"table_entries": 256},
        )
        b = run_system_cached(
            "web", 1, "discontinuity", scale=TINY,
            prefetcher_overrides={"table_entries": 512},
        )
        assert a is not b
