"""Unit tests for WorkloadProfile validation."""

import dataclasses

import pytest

from repro.trace.synth.params import WorkloadProfile


def make(**overrides):
    return WorkloadProfile(name="p", **overrides)


class TestValidation:
    def test_defaults_valid(self):
        make()

    def test_rejects_nonpositive_functions(self):
        with pytest.raises(ValueError):
            make(n_functions=0)

    def test_rejects_bad_size_bounds(self):
        with pytest.raises(ValueError):
            make(fn_min_instr=10, fn_max_instr=5)
        with pytest.raises(ValueError):
            make(fn_min_instr=0)

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ValueError):
            make(p_cond=1.5)
        with pytest.raises(ValueError):
            make(p_cold=-0.1)

    def test_rejects_terminator_probs_exceeding_one(self):
        with pytest.raises(ValueError, match="sum"):
            make(p_cond=0.5, p_uncond=0.3, p_call=0.3)

    def test_rejects_inverted_taken_ranges(self):
        with pytest.raises(ValueError):
            make(fwd_taken_lo=0.6, fwd_taken_hi=0.4)
        with pytest.raises(ValueError):
            make(loop_taken_lo=0.9, loop_taken_hi=0.8)

    def test_rejects_nonpositive_depth_and_budget(self):
        with pytest.raises(ValueError):
            make(max_call_depth=0)
        with pytest.raises(ValueError):
            make(max_transaction_instr=0)

    def test_rejects_nonpositive_data_params(self):
        with pytest.raises(ValueError):
            make(data_rate=0)
        with pytest.raises(ValueError):
            make(hot_bytes=0)
        with pytest.raises(ValueError):
            make(reuse_window_lines=0)

    def test_frozen(self):
        profile = make()
        with pytest.raises(dataclasses.FrozenInstanceError):
            profile.n_functions = 5

    def test_footprint_estimate_positive_and_scales(self):
        small = make(n_functions=100, fn_median_instr=50)
        large = make(n_functions=1000, fn_median_instr=50)
        assert 0 < small.approx_code_footprint_bytes < large.approx_code_footprint_bytes
