"""Unit tests for cache/hierarchy configuration."""

import pytest

from repro.caches.config import DEFAULT_HIERARCHY, CacheConfig, HierarchyConfig
from repro.util.units import KB, MB


class TestCacheConfig:
    def test_paper_default_l1(self):
        config = DEFAULT_HIERARCHY.l1i
        assert config.capacity_bytes == 32 * KB
        assert config.associativity == 4
        assert config.line_size == 64
        assert config.n_sets == 128

    def test_paper_default_l2(self):
        config = DEFAULT_HIERARCHY.l2
        assert config.capacity_bytes == 2 * MB
        assert config.n_lines == 32768

    def test_line_shift(self):
        assert CacheConfig(512, 2, 64).line_shift == 6
        assert CacheConfig(512, 2, 128).line_shift == 7

    def test_describe(self):
        assert DEFAULT_HIERARCHY.l1i.describe() == "32KB 4-way 64B-line"

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=3 * 64 * 2, associativity=2, line_size=64)


class TestHierarchyConfig:
    def test_line_size_consistency_enforced(self):
        with pytest.raises(ValueError, match="line size"):
            HierarchyConfig(
                l1i=CacheConfig(32 * KB, 4, 64),
                l1d=CacheConfig(32 * KB, 4, 64),
                l2=CacheConfig(2 * MB, 4, 128),
            )

    def test_with_l1i_capacity(self):
        changed = DEFAULT_HIERARCHY.with_l1i(capacity_bytes=64 * KB)
        assert changed.l1i.capacity_bytes == 64 * KB
        assert changed.l1d == DEFAULT_HIERARCHY.l1d
        assert changed.l2 == DEFAULT_HIERARCHY.l2

    def test_with_l1i_line_size_moves_all_levels(self):
        changed = DEFAULT_HIERARCHY.with_l1i(line_size=128)
        assert changed.l1i.line_size == 128
        assert changed.l1d.line_size == 128
        assert changed.l2.line_size == 128
        assert changed.line_size == 128

    def test_with_l2(self):
        changed = DEFAULT_HIERARCHY.with_l2(capacity_bytes=4 * MB)
        assert changed.l2.capacity_bytes == 4 * MB
        assert changed.l1i == DEFAULT_HIERARCHY.l1i

    def test_default_is_immutable_value(self):
        copy = DEFAULT_HIERARCHY.with_l2(capacity_bytes=MB)
        assert DEFAULT_HIERARCHY.l2.capacity_bytes == 2 * MB
        assert copy is not DEFAULT_HIERARCHY
