"""Unit tests for repro.util.rng."""

import pytest

from repro.util.rng import SplitMix64, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "walker", 0) == derive_seed(42, "walker", 0)

    def test_labels_decorrelate(self):
        assert derive_seed(42, "walker", 0) != derive_seed(42, "walker", 1)

    def test_root_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_result_fits_in_64_bits(self):
        assert 0 <= derive_seed(2**63, "big", -5) < 2**64


class TestSplitMix64:
    def test_reproducible_stream(self):
        a = SplitMix64(123)
        b = SplitMix64(123)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert [a.next_u64() for _ in range(4)] != [b.next_u64() for _ in range(4)]

    def test_random_in_unit_interval(self):
        rng = SplitMix64(7)
        for _ in range(1000):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_randrange_bounds(self):
        rng = SplitMix64(7)
        for _ in range(500):
            assert 0 <= rng.randrange(13) < 13

    def test_randrange_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SplitMix64(1).randrange(0)

    def test_randint_inclusive(self):
        rng = SplitMix64(3)
        seen = {rng.randint(2, 4) for _ in range(200)}
        assert seen == {2, 3, 4}

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            SplitMix64(1).randint(5, 4)

    def test_choice(self):
        rng = SplitMix64(9)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(50))

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(1).choice([])

    def test_geometric_mean_one_is_constant(self):
        rng = SplitMix64(5)
        assert all(rng.geometric(1.0) == 1 for _ in range(20))

    def test_geometric_mean_approx(self):
        rng = SplitMix64(5)
        samples = [rng.geometric(6.0) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        assert 5.0 < mean < 7.0

    def test_geometric_rejects_sub_one_mean(self):
        with pytest.raises(ValueError):
            SplitMix64(1).geometric(0.5)

    def test_lognormal_int_respects_clamps(self):
        rng = SplitMix64(11)
        for _ in range(500):
            value = rng.lognormal_int(100, 1.0, 10, 400)
            assert 10 <= value <= 400

    def test_lognormal_int_median_roughly_centered(self):
        rng = SplitMix64(11)
        samples = sorted(rng.lognormal_int(100, 1.0, 1, 100000) for _ in range(5001))
        median = samples[2500]
        assert 70 <= median <= 140

    def test_zipf_index_in_range(self):
        rng = SplitMix64(13)
        for _ in range(500):
            assert 0 <= rng.zipf_index(50, 0.8) < 50

    def test_zipf_skew_concentrates_low_indices(self):
        rng = SplitMix64(13)
        skewed = sum(rng.zipf_index(1000, 1.2) for _ in range(3000))
        uniform = sum(rng.zipf_index(1000, 0.0) for _ in range(3000))
        assert skewed < uniform * 0.5

    def test_zipf_single_element(self):
        assert SplitMix64(1).zipf_index(1, 1.0) == 0

    def test_zipf_rejects_empty_support(self):
        with pytest.raises(ValueError):
            SplitMix64(1).zipf_index(0, 1.0)

    def test_weighted_index_degenerate(self):
        rng = SplitMix64(17)
        assert all(rng.weighted_index([1.0]) == 0 for _ in range(10))

    def test_weighted_index_distribution(self):
        rng = SplitMix64(17)
        counts = [0, 0]
        for _ in range(4000):
            counts[rng.weighted_index([0.25, 1.0])] += 1
        assert counts[0] < counts[1]

    def test_shuffle_is_permutation(self):
        rng = SplitMix64(19)
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_spawn_streams_independent(self):
        rng = SplitMix64(21)
        child_a = rng.spawn("a")
        child_b = rng.spawn("b")
        assert [child_a.next_u64() for _ in range(4)] != [
            child_b.next_u64() for _ in range(4)
        ]

    def test_spawn_deterministic(self):
        a = SplitMix64(21).spawn("x", 1)
        b = SplitMix64(21).spawn("x", 1)
        assert a.next_u64() == b.next_u64()
