"""Unit tests for :mod:`repro.eval.runspec`."""

import pickle

import pytest

from repro.eval.profiles import ExperimentScale, get_scale
from repro.eval.runspec import DEFAULT_SEED, RunSpec, dedupe_specs
from repro.isa.classify import MissClass


def spec(**kwargs):
    base = dict(workload="db", n_cores=1, prefetcher="discontinuity", scale="smoke")
    base.update(kwargs)
    return RunSpec.create(**base)


class TestCreate:
    def test_resolves_scale_names(self):
        assert spec(scale="smoke").scale == get_scale("smoke")
        assert spec(scale=None).scale == get_scale("")
        custom = ExperimentScale(
            name="tiny",
            warm_instructions=1_000,
            measure_instructions=2_000,
            cmp_measure_instructions=1_000,
        )
        assert spec(scale=custom).scale is custom

    def test_normalizes_overrides_to_sorted_tuple(self):
        a = spec(prefetcher_overrides={"b": 2, "a": 1})
        b = spec(prefetcher_overrides={"a": 1, "b": 2})
        assert a == b
        assert a.prefetcher_overrides == (("a", 1), ("b", 2))
        assert a.overrides == {"a": 1, "b": 2}

    def test_defaults(self):
        s = spec()
        assert s.seed == DEFAULT_SEED
        assert s.l2_policy == "normal"
        assert not s.software_prefetch
        assert s.free_miss_classes == frozenset()

    def test_hashable_and_picklable(self):
        s = spec(free_miss_classes=frozenset({MissClass.BRANCH}))
        assert hash(s) == hash(spec(free_miss_classes=frozenset({MissClass.BRANCH})))
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s
        assert clone.content_hash() == s.content_hash()


class TestContentHash:
    def test_stable_across_constructions(self):
        assert spec().content_hash() == spec().content_hash()
        assert (
            spec(prefetcher_overrides={"x": 1, "y": 2}).content_hash()
            == spec(prefetcher_overrides={"y": 2, "x": 1}).content_hash()
        )

    @pytest.mark.parametrize(
        "change",
        [
            {"workload": "web"},
            {"n_cores": 4},
            {"prefetcher": "next-2-line"},
            {"scale": "default"},
            {"l2_policy": "bypass"},
            {"prefetcher_overrides": {"table_entries": 64}},
            {"free_miss_classes": frozenset({MissClass.BRANCH})},
            {"queue_filtering": False},
            {"queue_lifo": False},
            {"useless_hint_filter": True},
            {"l2_inclusive": True},
            {"l1_replacement": "plru"},
            {"l2_replacement": "random"},
            {"offchip_gbps": 4.0},
            {"software_prefetch": True},
            {"seed": DEFAULT_SEED + 1},
        ],
    )
    def test_any_parameter_changes_the_hash(self, change):
        assert spec(**change).content_hash() != spec().content_hash()

    def test_canonical_dict_is_json_safe(self):
        import json

        blob = json.dumps(spec(free_miss_classes=frozenset(MissClass)).canonical_dict())
        assert "workload" in blob


class TestPlumbing:
    def test_run_kwargs_round_trip(self):
        s = spec(prefetcher_overrides={"table_entries": 32}, l2_policy="bypass")
        kwargs = s.run_kwargs()
        assert kwargs["workload"] == "db"
        assert kwargs["prefetcher_overrides"] == {"table_entries": 32}
        assert kwargs["l2_policy"] == "bypass"
        assert "software_prefetch" not in kwargs  # executor-built factory

    def test_trace_key_groups_same_trace_runs(self):
        assert spec().trace_key() == spec(prefetcher="none").trace_key()
        assert spec().trace_key() != spec(n_cores=4).trace_key()
        assert spec().trace_key() != spec(seed=7).trace_key()

    def test_describe_mentions_the_interesting_bits(self):
        s = spec(l2_policy="bypass", prefetcher_overrides={"table_entries": 32})
        label = s.describe()
        assert "db" in label and "bypass" in label and "table_entries=32" in label
        assert "swpf" in spec(software_prefetch=True).describe()


def test_dedupe_preserves_first_occurrence_order():
    a, b, c = spec(), spec(n_cores=4), spec(prefetcher="none")
    assert dedupe_specs([a, b, a, c, b, a]) == [a, b, c]
