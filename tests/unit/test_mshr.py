"""Unit tests for the outstanding-request tracker (repro.caches.mshr)."""

import pytest

from repro.caches.mshr import OutstandingRequestTracker


class TestOutstandingRequestTracker:
    def test_accepts_until_capacity(self):
        mshr = OutstandingRequestTracker(2)
        assert mshr.can_accept(0)
        mshr.add(1, arrival=100, now=0)
        mshr.add(2, arrival=100, now=0)
        assert not mshr.can_accept(0)

    def test_completion_frees_slots(self):
        mshr = OutstandingRequestTracker(1)
        mshr.add(1, arrival=50, now=0)
        assert not mshr.can_accept(10)
        assert mshr.can_accept(50)  # arrival <= now prunes
        mshr.add(2, arrival=80, now=50)

    def test_outstanding_count(self):
        mshr = OutstandingRequestTracker(4)
        mshr.add(1, arrival=10, now=0)
        mshr.add(2, arrival=20, now=0)
        assert mshr.outstanding(0) == 2
        assert mshr.outstanding(15) == 1
        assert mshr.outstanding(25) == 0

    def test_add_when_full_raises(self):
        mshr = OutstandingRequestTracker(1)
        mshr.add(1, arrival=100, now=0)
        with pytest.raises(RuntimeError, match="full"):
            mshr.add(2, arrival=100, now=0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            OutstandingRequestTracker(0)

    def test_capacity_property(self):
        assert OutstandingRequestTracker(16).capacity == 16
