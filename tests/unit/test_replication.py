"""Unit tests for the multi-seed replication helpers."""

import pytest

from repro.eval.profiles import ExperimentScale
from repro.eval.replication import (
    replicate_metric,
    replicate_speedup,
    summarize,
)

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=5_000,
    measure_instructions=20_000,
    cmp_measure_instructions=10_000,
)


class TestSummarize:
    def test_mean_and_std(self):
        replicate = summarize([1.0, 2.0, 3.0])
        assert replicate.mean == pytest.approx(2.0)
        assert replicate.std == pytest.approx(1.0)
        assert replicate.n == 3

    def test_single_sample(self):
        replicate = summarize([5.0])
        assert replicate.mean == 5.0
        assert replicate.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_format(self):
        assert "±" in str(summarize([1.0, 2.0]))

    def test_identical_samples_zero_std(self):
        assert summarize([2.5, 2.5, 2.5]).std == 0.0


class TestReplicateMetric:
    def test_calls_metric_per_seed(self):
        seen = []

        def metric(seed):
            seen.append(seed)
            return float(seed)

        replicate = replicate_metric(metric, seeds=(1, 2, 3))
        assert seen == [1, 2, 3]
        assert replicate.mean == pytest.approx(2.0)


class TestReplicateSpeedup:
    def test_speedup_stable_across_seeds(self):
        replicate = replicate_speedup(
            "web", 1, "next-line-tagged", scale=TINY, seeds=(1, 2)
        )
        assert replicate.n == 2
        assert replicate.mean > 1.0
        # Tiny runs are noisy, but the spread must stay bounded.
        assert replicate.std < 0.5
