"""Unit tests for the MANA-style record/replay prefetcher."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.prefetch.mana import ManaPrefetcher, ManaTable

SEQ = int(TransitionKind.SEQUENTIAL)


def feed(pf, lines):
    """Drive the recorder through a fetch-line sequence (no triggers)."""
    for line in lines:
        pf.on_demand_fetch(line, False, False, SEQ)


class TestManaTable:
    def test_commit_and_lookup(self):
        table = ManaTable(entries=64, assoc=4)
        table.commit(10, 0b101, 20)
        record = table.lookup(10)
        assert record is not None
        assert record.footprint == 0b101
        assert record.successor == 20

    def test_recommit_refreshes_footprint_and_successor(self):
        table = ManaTable(entries=64, assoc=4)
        table.commit(10, 0b1, 20)
        table.commit(10, 0b11, 40)
        record = table.lookup(10)
        assert record.footprint == 0b11
        assert record.successor == 40
        assert table.occupancy() == 1

    def test_eviction_prefers_lowest_confidence(self):
        # entries=4/assoc=2 -> 2 sets; even triggers share set 0.
        table = ManaTable(entries=4, assoc=2)
        table.commit(0, 0b1, -1)
        table.commit(2, 0b1, -1)
        table.credit(0)  # reinforce 0: confidence 2 vs 2's 1
        table.commit(4, 0b1, -1)  # set full -> evicts the weaker record 2
        assert table.lookup(0) is not None
        assert table.lookup(2) is None
        assert table.lookup(4) is not None
        assert table.stats.evictions == 1

    def test_credit_saturates(self):
        table = ManaTable(entries=64, assoc=4)
        table.commit(10, 0b1, -1)
        for _ in range(10):
            table.credit(10)
        assert table.lookup(10).confidence == 3

    def test_reset(self):
        table = ManaTable(entries=64, assoc=4)
        table.commit(10, 0b1, -1)
        table.reset()
        assert table.lookup(10) is None
        assert table.occupancy() == 0
        assert table.stats.commits == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ManaTable(entries=48)  # not a power of two
        with pytest.raises(ValueError):
            ManaTable(entries=4, assoc=8)  # assoc exceeds entries


class TestRecordReplayRoundtrip:
    def test_recorded_regions_replay_with_chaining(self):
        pf = ManaPrefetcher(table_entries=64, assoc=4, region_lines=8, replay_depth=2)
        # Region 0 footprint {0,1,3}, then region 2 {16,17}, then leave:
        # commits record(0, {0,1,3}, successor=16) and record(16, {16,17}, 32).
        feed(pf, [0, 1, 3, 16, 17, 32])
        candidates = pf.on_demand_fetch(0, True, False, SEQ)
        lines = [c.line for c in candidates]
        # Footprint of the triggering record minus the trigger itself,
        # then the chained successor record's full footprint.
        assert lines == [1, 3, 16, 17]
        assert candidates[0].provenance == ("mana", 0)
        assert candidates[2].provenance == ("mana", 16)

    def test_replay_depth_bounds_the_chain(self):
        pf = ManaPrefetcher(table_entries=64, assoc=4, region_lines=8, replay_depth=1)
        feed(pf, [0, 1, 16, 17, 32])
        lines = [c.line for c in pf.on_demand_fetch(0, True, False, SEQ)]
        # Depth 1: only the triggering record replays; 16/17 are not.
        assert lines == [1]

    def test_unknown_trigger_replays_nothing(self):
        pf = ManaPrefetcher(table_entries=64, assoc=4)
        assert pf.on_demand_fetch(999, True, False, SEQ) == []

    def test_no_trigger_no_candidates(self):
        pf = ManaPrefetcher(table_entries=64, assoc=4)
        feed(pf, [0, 1, 16])
        assert pf.on_demand_fetch(17, False, False, SEQ) == []

    def test_re_recording_updates_the_footprint(self):
        pf = ManaPrefetcher(table_entries=64, assoc=4, region_lines=8, replay_depth=1)
        feed(pf, [0, 1, 16])  # record(0, {0,1}, 16)
        feed(pf, [0, 3, 16])  # re-record: record(0, {0,3}, 16)
        lines = [c.line for c in pf.on_demand_fetch(0, True, False, SEQ)]
        assert lines == [3]

    def test_credit_reinforces_the_record(self):
        pf = ManaPrefetcher(table_entries=64, assoc=4)
        feed(pf, [0, 1, 16])
        pf.credit(("mana", 0))
        assert pf.table.lookup(0).confidence == 2
        pf.credit(("seq",))  # foreign provenance is ignored
        assert pf.table.stats.credits == 1


class TestManaPrefetcher:
    def test_not_hit_transparent(self):
        # The recorder needs every demand fetch, so the vectorized
        # backend must fall back to reference stepping.
        assert ManaPrefetcher.hit_transparent is False

    def test_state_bytes(self):
        pf = ManaPrefetcher(table_entries=64, region_lines=8)
        # 64 entries x (32 tag + 8 footprint + 32 successor + 2 conf) bits.
        assert pf.state_bytes() == 64 * (32 + 8 + 32 + 2) // 8

    def test_reset_clears_recorder_and_table(self):
        pf = ManaPrefetcher(table_entries=64, assoc=4)
        feed(pf, [0, 1, 16])
        pf.reset()
        assert pf.table.occupancy() == 0
        assert pf.on_demand_fetch(0, True, False, SEQ) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ManaPrefetcher(region_lines=6)
        with pytest.raises(ValueError):
            ManaPrefetcher(replay_depth=0)

    def test_name(self):
        assert ManaPrefetcher(table_entries=512).name == "mana-512"
