"""Spec-parity golden test for the declarative catalog refactor.

``tests/data/spec_parity_golden.json`` was generated from the
pre-refactor hand-written drivers: for every experiment, the sorted set
of deduplicated :meth:`RunSpec.content_hash` values at smoke scale.  The
catalog declarations must reproduce those sets bit-identically — that is
the proof that the refactor changed how experiments are *expressed*, not
which simulations they run (and therefore that no disk-cache
``SCHEMA_VERSION`` bump is needed).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.eval.catalog import CATALOG
from repro.eval.profiles import get_scale

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "spec_parity_golden.json"


def golden():
    return json.loads(GOLDEN_PATH.read_text())


def hashes_for(name: str, scale) -> list:
    return sorted(spec.content_hash() for spec in CATALOG[name].specs(scale=scale))


def test_golden_covers_exactly_the_catalog():
    assert set(golden()["experiments"]) == set(CATALOG)


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_catalog_reproduces_golden_spec_hashes(name):
    data = golden()
    scale = get_scale(data["scale"])
    assert hashes_for(name, scale) == sorted(data["experiments"][name]), (
        f"{name}: catalog declaration no longer expands to the pre-refactor "
        "RunSpec set; if the change is intentional, regenerate the golden "
        "file and consider a diskcache SCHEMA_VERSION review"
    )


def test_fig05_fig06_fig07_share_their_runs():
    """Figures 5, 6 and 7 read the same grid; batch submission dedupes."""
    scale = get_scale(golden()["scale"])
    assert (
        hashes_for("fig05", scale)
        == hashes_for("fig06", scale)
        == hashes_for("fig07", scale)
    )


def test_union_size_is_stable():
    data = golden()
    scale = get_scale(data["scale"])
    union = set()
    for name in CATALOG:
        union.update(hashes_for(name, scale))
    expected = set()
    for hashes in data["experiments"].values():
        expected.update(hashes)
    assert union == expected
    assert len(union) == 440
