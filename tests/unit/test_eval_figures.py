"""Unit tests for the ExperimentResult container and the CLI plumbing."""

import pytest

from repro.eval.catalog import CATALOG
from repro.eval.cli import build_parser, main
from repro.eval.experiment import Experiment
from repro.eval.figures import ExperimentResult, grid_from
from repro.eval.registry import experiment_names, get_experiment


def sample_result():
    return ExperimentResult(
        experiment="figXX",
        title="demo",
        row_labels=["a", "b"],
        col_labels=["x", "y", "z"],
        values=[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]],
        unit="things",
        notes=["a note"],
    )


class TestExperimentResult:
    def test_value_lookup(self):
        result = sample_result()
        assert result.value("b", "y") == 5.0

    def test_row_and_column(self):
        result = sample_result()
        assert result.row("a") == [1.0, 2.0, 3.0]
        assert result.column("z") == [3.0, 6.0]

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="rows"):
            ExperimentResult("e", "t", ["a"], ["x"], [[1.0], [2.0]])
        with pytest.raises(ValueError, match="columns"):
            ExperimentResult("e", "t", ["a"], ["x", "y"], [[1.0]])

    def test_unknown_row_names_experiment_and_alternatives(self):
        result = sample_result()
        with pytest.raises(KeyError) as excinfo:
            result.value("bogus", "y")
        message = str(excinfo.value)
        assert "figXX" in message
        assert "'bogus'" in message
        assert "available rows" in message
        assert "'a'" in message and "'b'" in message

    def test_unknown_column_names_experiment_and_alternatives(self):
        result = sample_result()
        with pytest.raises(KeyError) as excinfo:
            result.column("w")
        message = str(excinfo.value)
        assert "figXX" in message
        assert "'w'" in message
        assert "available columns" in message
        assert "'x'" in message and "'z'" in message

    def test_row_lookup_error_matches_value_lookup_error(self):
        result = sample_result()
        with pytest.raises(KeyError, match="available rows"):
            result.row("nope")

    def test_format_table_contains_labels_and_notes(self):
        text = sample_result().format_table()
        assert "figXX" in text
        assert "demo" in text
        assert "(things)" in text
        assert "a note" in text
        for label in ("a", "b", "x", "y", "z"):
            assert label in text

    def test_format_handles_nan(self):
        result = ExperimentResult(
            "e", "t", ["a"], ["x"], [[float("nan")]]
        )
        assert "nan" in result.format_table()

    def test_to_dict_roundtrips_values(self):
        data = sample_result().to_dict()
        assert data["values"] == [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]
        assert data["columns"] == ["x", "y", "z"]

    def test_grid_from(self):
        grid = grid_from(["r1", "r2"], ["c1"], lambda r, c: float(len(r + c)))
        assert grid == [[4.0], [4.0]]


class TestRegistry:
    def test_all_ten_figures_registered(self):
        names = experiment_names()
        for index in range(1, 11):
            assert f"fig{index:02d}" in names

    def test_ablations_registered(self):
        names = experiment_names()
        assert "ablation-filtering" in names
        assert "ablation-prefetch-ahead" in names

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_unknown_experiment_lists_alternatives(self):
        with pytest.raises(KeyError, match="fig01"):
            get_experiment("fig99")

    def test_catalog_holds_experiment_declarations(self):
        assert set(experiment_names()) == set(CATALOG)
        assert all(
            isinstance(experiment, Experiment) for experiment in CATALOG.values()
        )
        assert all(name == CATALOG[name].name for name in CATALOG)


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "fig10" in out

    def test_list_verb_shows_paper_reference(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "Figure 1" in out
        assert "replication-check" in out

    def test_describe_verb(self, capsys):
        assert main(["describe", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "panels" in out
        assert "expectations" in out

    def test_describe_unknown_experiment(self, capsys):
        assert main(["describe", "fig99"]) == 2

    def test_requires_experiment(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2

    def test_parser_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig01", "--scale", "smoke"])
        assert args.scale == "smoke"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig01", "--scale", "huge"])

    def test_parser_strict_flag_defaults_to_none(self):
        parser = build_parser()
        assert parser.parse_args(["fig01"]).strict is None
        assert parser.parse_args(["fig01", "--strict"]).strict is True
