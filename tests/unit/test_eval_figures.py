"""Unit tests for the ExperimentResult container and the CLI plumbing."""

import pytest

from repro.eval.cli import build_parser, main
from repro.eval.figures import ExperimentResult, grid_from
from repro.eval.registry import EXPERIMENTS, experiment_names, run_experiment


def sample_result():
    return ExperimentResult(
        experiment="figXX",
        title="demo",
        row_labels=["a", "b"],
        col_labels=["x", "y", "z"],
        values=[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]],
        unit="things",
        notes=["a note"],
    )


class TestExperimentResult:
    def test_value_lookup(self):
        result = sample_result()
        assert result.value("b", "y") == 5.0

    def test_row_and_column(self):
        result = sample_result()
        assert result.row("a") == [1.0, 2.0, 3.0]
        assert result.column("z") == [3.0, 6.0]

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="rows"):
            ExperimentResult("e", "t", ["a"], ["x"], [[1.0], [2.0]])
        with pytest.raises(ValueError, match="columns"):
            ExperimentResult("e", "t", ["a"], ["x", "y"], [[1.0]])

    def test_format_table_contains_labels_and_notes(self):
        text = sample_result().format_table()
        assert "figXX" in text
        assert "demo" in text
        assert "(things)" in text
        assert "a note" in text
        for label in ("a", "b", "x", "y", "z"):
            assert label in text

    def test_format_handles_nan(self):
        result = ExperimentResult(
            "e", "t", ["a"], ["x"], [[float("nan")]]
        )
        assert "nan" in result.format_table()

    def test_to_dict_roundtrips_values(self):
        data = sample_result().to_dict()
        assert data["values"] == [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]
        assert data["columns"] == ["x", "y", "z"]

    def test_grid_from(self):
        grid = grid_from(["r1", "r2"], ["c1"], lambda r, c: float(len(r + c)))
        assert grid == [[4.0], [4.0]]


class TestRegistry:
    def test_all_ten_figures_registered(self):
        names = experiment_names()
        for index in range(1, 11):
            assert f"fig{index:02d}" in names

    def test_ablations_registered(self):
        names = experiment_names()
        assert "ablation-filtering" in names
        assert "ablation-prefetch-ahead" in names

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_drivers_are_callables(self):
        assert all(callable(driver) for driver in EXPERIMENTS.values())


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "fig10" in out

    def test_requires_experiment(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2

    def test_parser_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig01", "--scale", "smoke"])
        assert args.scale == "smoke"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig01", "--scale", "huge"])
