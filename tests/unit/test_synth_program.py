"""Unit tests for the static program builder (repro.trace.synth.program)."""

import pytest

from repro.trace.record import INSTRUCTION_SIZE
from repro.trace.synth.program import (
    N_TRAP_HANDLERS,
    TermKind,
    build_program,
)


@pytest.fixture(scope="module")
def program(tiny_profile=None):
    # Build once for the module; tiny profile inline to allow scope=module.
    from repro.trace.synth.params import WorkloadProfile

    profile = WorkloadProfile(
        name="tiny",
        n_functions=80,
        fn_median_instr=40,
        fn_sigma=0.8,
        fn_max_instr=400,
        block_mean_instr=5.0,
        entry_fraction=0.25,
        max_call_depth=8,
        max_transaction_instr=2_000,
        hot_bytes=16 * 1024,
        cold_bytes=256 * 1024,
    )
    return build_program(profile, seed=99)


class TestBuildProgram:
    def test_function_count(self, program):
        assert len(program.functions) == 80 + N_TRAP_HANDLERS

    def test_deterministic(self, program):
        again = build_program(program.profile, seed=99)
        assert [fn.entry_addr for fn in again.functions] == [
            fn.entry_addr for fn in program.functions
        ]
        first = program.functions[0].blocks
        second = again.functions[0].blocks
        assert [(b.addr, b.ninstr, b.term) for b in first] == [
            (b.addr, b.ninstr, b.term) for b in second
        ]

    def test_seed_changes_structure(self, program):
        other = build_program(program.profile, seed=100)
        sizes_a = [fn.total_instructions for fn in program.functions]
        sizes_b = [fn.total_instructions for fn in other.functions]
        assert sizes_a != sizes_b

    def test_functions_do_not_overlap_and_are_aligned(self, program):
        intervals = sorted(
            (fn.entry_addr, fn.entry_addr + fn.size_bytes) for fn in program.functions
        )
        previous_end = 0
        for start, end in intervals:
            assert start >= previous_end
            assert start % program.profile.fn_align == 0
            previous_end = end

    def test_shared_and_private_text_regions(self, program):
        boundary = program.private_text_start
        shared = [
            fn for fn in program.functions
            if not fn.is_trap_handler and fn.entry_addr < boundary
        ]
        private = [
            fn for fn in program.functions
            if not fn.is_trap_handler and fn.entry_addr >= boundary
        ]
        # With text_shared_fraction strictly between 0 and 1 both regions
        # should be populated.
        assert shared and private
        # Trap handlers are kernel code: always in the shared region.
        for index in program.trap_handler_indices:
            assert program.functions[index].entry_addr < boundary

    def test_blocks_contiguous_within_function(self, program):
        for fn in program.functions[:20]:
            addr = fn.entry_addr
            for block in fn.blocks:
                assert block.addr == addr
                addr += block.ninstr * INSTRUCTION_SIZE

    def test_function_sizes_within_bounds(self, program):
        profile = program.profile
        for fn in program.functions:
            if fn.is_trap_handler:
                continue
            assert profile.fn_min_instr <= fn.total_instructions <= profile.fn_max_instr

    def test_last_block_returns(self, program):
        for fn in program.functions:
            assert fn.blocks[-1].term == TermKind.RETURN

    def test_cond_targets_valid(self, program):
        for fn in program.functions:
            nblocks = len(fn.blocks)
            for index, block in enumerate(fn.blocks):
                if block.term == TermKind.COND:
                    assert 0 <= block.target < nblocks
                    assert block.target != index  # no self-loop branches
                    assert 0.0 < block.taken_prob < 1.0

    def test_uncond_targets_forward(self, program):
        for fn in program.functions:
            for index, block in enumerate(fn.blocks):
                if block.term == TermKind.UNCOND:
                    assert block.target > index

    def test_call_targets_are_regular_functions(self, program):
        n_regular = program.profile.n_functions
        for fn in program.functions:
            for block in fn.blocks:
                if block.term == TermKind.CALL:
                    assert len(block.callees) >= 1
                    for callee in block.callees:
                        assert 0 <= callee < n_regular
                        assert callee != fn.index  # no direct self-recursion

    def test_switch_targets_forward_and_distinct(self, program):
        for fn in program.functions:
            for index, block in enumerate(fn.blocks):
                if block.term == TermKind.SWITCH:
                    assert len(set(block.switch_targets)) == len(block.switch_targets)
                    assert all(t > index for t in block.switch_targets)

    def test_entry_points_marked(self, program):
        marked = [fn.index for fn in program.functions if fn.is_entry_point]
        assert sorted(marked) == program.entry_indices
        expected = max(1, int(program.profile.n_functions * program.profile.entry_fraction))
        assert len(marked) == expected

    def test_trap_handlers_distant_and_leaf(self, program):
        boundary = program.private_text_start
        shared_end = max(
            fn.entry_addr + fn.size_bytes
            for fn in program.functions
            if not fn.is_trap_handler and fn.entry_addr < boundary
        )
        for index in program.trap_handler_indices:
            handler = program.functions[index]
            assert handler.is_trap_handler
            # Far beyond the shared text (traps are real discontinuities).
            assert handler.entry_addr > shared_end + 1_000_000
            assert len(handler.blocks) == 1
            assert handler.blocks[0].term == TermKind.RETURN

    def test_code_footprint_reported(self, program):
        assert program.code_footprint_bytes == sum(
            fn.size_bytes for fn in program.functions
        )
        assert program.end_addr > program.private_text_start
