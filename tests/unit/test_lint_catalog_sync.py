"""R5 (catalog sync): every catalog ``Experiment`` declaration is complete,
registered exactly once, and visible to the catalog."""

from __future__ import annotations

import pytest

from repro.lint.engine import LintError
from repro.lint.rules import CatalogSyncRule
from tests.unit.conftest import write_tree_file

FIGURES_WITH_UNREGISTERED = """
    from repro.eval.experiment import Band, Experiment, Grid, PanelDef

    FIG01_GRID = Grid(axes=(("workload", ("db",)),), build=None)

    FIG01 = Experiment(
        name="fig01",
        title="demo figure",
        paper="Figure 1",
        tags=("figure",),
        grid=FIG01_GRID,
        panels=(PanelDef(id="fig01", title="demo", rows=(), cols=(), cell=None),),
        expectations=(Band(panel="fig01", lo=0.0, hi=1.0),),
    )

    FIG02 = Experiment(
        name="fig02",
        title="forgotten figure",
        paper="Figure 2",
        tags=("figure",),
        grid=FIG01_GRID,
        panels=(PanelDef(id="fig02", title="demo", rows=(), cols=(), cell=None),),
        expectations=(Band(panel="fig02", lo=0.0, hi=1.0),),
    )

    EXPERIMENTS = (FIG01,)
    """

#: the fix R5's hint asks for: list the declaration in EXPERIMENTS.
FIGURES_REGISTERED = FIGURES_WITH_UNREGISTERED.replace(
    "EXPERIMENTS = (FIG01,)", "EXPERIMENTS = (FIG01, FIG02)"
)


def test_base_tree_is_clean(lint_tree):
    assert CatalogSyncRule().check(lint_tree()) == []


def test_unregistered_experiment_fails(lint_tree):
    project = lint_tree(
        {"src/repro/eval/catalog/figures.py": FIGURES_WITH_UNREGISTERED}
    )
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'FIG02'" in violations[0].message
    assert "EXPERIMENTS tuple" in violations[0].message
    assert "allowlist" in violations[0].hint


def test_fix_it_hint_resolves_the_violation(lint_tree):
    project = lint_tree(
        {"src/repro/eval/catalog/figures.py": FIGURES_WITH_UNREGISTERED}
    )
    assert CatalogSyncRule().check(project) != []
    project = write_tree_file(
        project.root, "src/repro/eval/catalog/figures.py", FIGURES_REGISTERED
    )
    assert CatalogSyncRule().check(project) == []


def test_allowlisted_experiment_may_skip_registration(lint_tree):
    project = lint_tree(
        {"src/repro/eval/catalog/figures.py": FIGURES_WITH_UNREGISTERED}
    )
    rule = CatalogSyncRule(
        allowlist={"fig02": "declared for interactive use only, by design"}
    )
    assert rule.check(project) == []


def test_shared_grid_between_experiments_is_clean(lint_tree):
    """Figures 5/6/7 share one grid object so their runs dedupe; R5 must
    not mistake the shared reference for an incomplete declaration."""
    assert FIGURES_REGISTERED.count("grid=FIG01_GRID") == 2  # shared reference
    project = lint_tree(
        {"src/repro/eval/catalog/figures.py": FIGURES_REGISTERED}
    )
    assert CatalogSyncRule().check(project) == []


def test_missing_required_keyword_fails(lint_tree):
    source = FIGURES_REGISTERED.replace('paper="Figure 2",', "")
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'FIG02'" in violations[0].message
    assert "'paper'" in violations[0].message


def test_literal_empty_expectations_fails(lint_tree):
    source = FIGURES_REGISTERED.replace(
        'expectations=(Band(panel="fig02", lo=0.0, hi=1.0),),',
        "expectations=(),",
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "literal expectations tuple is empty" in violations[0].message


def test_non_literal_expectations_not_flagged(lint_tree):
    """Expectations composed by helper functions are legal — only a
    *literal* empty tuple is statically known to assert nothing."""
    source = FIGURES_REGISTERED.replace(
        'expectations=(Band(panel="fig02", lo=0.0, hi=1.0),),',
        'expectations=_shared_bands("fig02"),',
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    assert CatalogSyncRule().check(project) == []


def test_duplicate_name_across_declarations_fails(lint_tree):
    source = FIGURES_REGISTERED.replace('name="fig02"', 'name="fig01"')
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'fig01'" in violations[0].message
    assert "already declared" in violations[0].message


def test_double_registration_fails(lint_tree):
    source = FIGURES_WITH_UNREGISTERED.replace(
        "EXPERIMENTS = (FIG01,)", "EXPERIMENTS = (FIG01, FIG02, FIG02)"
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "registered 2 times" in violations[0].message


def test_unlisted_module_fails(lint_tree):
    extras = FIGURES_REGISTERED.replace('name="fig01"', 'name="x01"').replace(
        'name="fig02"', 'name="x02"'
    )
    project = lint_tree({"src/repro/eval/catalog/extras.py": extras})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'extras'" in violations[0].message
    assert "CATALOG_MODULES" in violations[0].message


def test_underscore_module_is_plumbing(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/catalog/_helpers.py": """
            def cell(runs, row, col):
                return 0.0
            """
        }
    )
    assert CatalogSyncRule().check(project) == []


def test_stale_catalog_modules_entry_fails(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/catalog/__init__.py": """
            CATALOG_MODULES = ("figures", "ghost")
            """
        }
    )
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'ghost'" in violations[0].message
    assert "does not exist" in violations[0].message


def test_stale_experiments_entry_fails(lint_tree):
    source = FIGURES_REGISTERED.replace(
        "EXPERIMENTS = (FIG01, FIG02)", "EXPERIMENTS = (FIG01, FIG02, GHOST)"
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'GHOST'" in violations[0].message
    assert "no top-level Experiment" in violations[0].message


PREFETCH_BASE = """
    class Prefetcher:
        def on_demand_fetch(self, line, was_miss, first_use, kind):
            return []
    """

PREFETCH_CUSTOM = """
    from repro.prefetch.base import Prefetcher


    class CustomPrefetcher(Prefetcher):
        pass
    """

REGISTRY_OK = """
    from repro.prefetch.base import Prefetcher
    from repro.prefetch.custom import CustomPrefetcher

    _FACTORIES = {
        "custom": lambda **kw: CustomPrefetcher(),
    }

    _DISPLAY = {
        "custom": "Custom scheme",
    }
    """

REGISTRY_PATH = "src/repro/prefetch/registry.py"


@pytest.fixture
def registry_tree(lint_tree):
    """Base tree plus a minimal prefetch package with a synced registry."""

    def build(overrides=None):
        files = {
            "src/repro/prefetch/base.py": PREFETCH_BASE,
            "src/repro/prefetch/custom.py": PREFETCH_CUSTOM,
            REGISTRY_PATH: REGISTRY_OK,
        }
        files.update(overrides or {})
        return lint_tree(files)

    return build


class TestPrefetcherRegistrySync:
    def test_synced_registry_passes(self, registry_tree):
        assert CatalogSyncRule().check(registry_tree()) == []

    def test_inactive_without_a_registry_module(self, lint_tree):
        # Synthetic fixture trees carry no prefetch package; the
        # sub-check must not demand one.
        project = lint_tree({"src/repro/prefetch/base.py": PREFETCH_BASE})
        assert CatalogSyncRule().check(project) == []

    def test_unimported_prefetcher_module_fails(self, registry_tree):
        project = registry_tree(
            {
                "src/repro/prefetch/extra.py": """
                from repro.prefetch.base import Prefetcher


                class ExtraPrefetcher(Prefetcher):
                    pass
                """
            }
        )
        violations = CatalogSyncRule().check(project)
        assert len(violations) == 1
        finding = violations[0]
        assert finding.path == "src/repro/prefetch/extra.py"
        assert "never imports it" in finding.message
        assert "factory + display name" in finding.hint

    def test_transitive_subclass_is_detected(self, registry_tree):
        # A scheme deriving from another *concrete* prefetcher (the
        # shadow-over-fdp pattern) is still a concrete subclass.
        project = registry_tree(
            {
                "src/repro/prefetch/derived.py": """
                from repro.prefetch.custom import CustomPrefetcher


                class DerivedPrefetcher(CustomPrefetcher):
                    pass
                """
            }
        )
        violations = CatalogSyncRule().check(project)
        assert len(violations) == 1
        assert violations[0].path == "src/repro/prefetch/derived.py"

    def test_factory_without_display_label_fails(self, registry_tree):
        source = REGISTRY_OK.replace('"custom": "Custom scheme",', "")
        project = registry_tree({REGISTRY_PATH: source})
        violations = CatalogSyncRule().check(project)
        assert len(violations) == 1
        assert "no _DISPLAY label" in violations[0].message

    def test_display_label_without_factory_fails(self, registry_tree):
        source = REGISTRY_OK.replace(
            '"custom": "Custom scheme",',
            '"custom": "Custom scheme",\n        "ghost": "Ghost scheme",',
        )
        project = registry_tree({REGISTRY_PATH: source})
        violations = CatalogSyncRule().check(project)
        assert len(violations) == 1
        assert "unknown prefetcher 'ghost'" in violations[0].message

    def test_imported_but_unreferenced_concrete_class_fails(self, registry_tree):
        project = registry_tree(
            {
                "src/repro/prefetch/extra.py": """
                from repro.prefetch.base import Prefetcher


                class ExtraPrefetcher(Prefetcher):
                    pass
                """,
                REGISTRY_PATH: REGISTRY_OK.replace(
                    "from repro.prefetch.custom import CustomPrefetcher",
                    "from repro.prefetch.custom import CustomPrefetcher\n"
                    "    from repro.prefetch.extra import ExtraPrefetcher",
                ),
            }
        )
        violations = CatalogSyncRule().check(project)
        assert len(violations) == 1
        assert "'ExtraPrefetcher'" in violations[0].message
        assert "invisible to experiments" in violations[0].message

    def test_abstract_base_import_is_not_flagged(self, registry_tree):
        # The registry imports Prefetcher for type annotations only; the
        # unused-import check applies to *concrete* subclasses.
        project = registry_tree()
        assert CatalogSyncRule().check(project) == []

    def test_non_literal_factories_dict_raises(self, registry_tree):
        source = REGISTRY_OK.replace(
            "_FACTORIES = {", "_FACTORIES = dict(**{"
        ).replace("    }\n\n    _DISPLAY", "    })\n\n    _DISPLAY")
        project = registry_tree({REGISTRY_PATH: source})
        with pytest.raises(LintError, match="dict literal"):
            CatalogSyncRule().check(project)


WORKLOADS_OK = """
    WORKLOADS = {
        "db": None,
    }

    SCENARIO_WORKLOADS = {
        "interp": None,
    }

    DISPLAY_NAMES = {
        "db": "DB",
        "mix": "Mixed",
        "interp": "Interp",
    }
    """

SOURCES_OK = """
    _SOURCES = {
        "db": None,
        "mix": None,
        "interp": None,
    }
    """

SOURCE_PATH = "src/repro/trace/source.py"
WORKLOADS_PATH = "src/repro/trace/synth/workloads.py"


@pytest.fixture
def source_tree(lint_tree):
    """Base tree plus a minimal trace package with a synced source registry."""

    def build(overrides=None):
        files = {
            WORKLOADS_PATH: WORKLOADS_OK,
            SOURCE_PATH: SOURCES_OK,
        }
        files.update(overrides or {})
        return lint_tree(files)

    return build


class TestTraceSourceRegistrySync:
    def test_synced_registry_passes(self, source_tree):
        # "mix" is composite (no profile of its own) and must be exempt.
        assert CatalogSyncRule().check(source_tree()) == []

    def test_inactive_without_a_source_module(self, lint_tree):
        # Synthetic fixture trees carry no trace package; the sub-check
        # must not demand one.
        project = lint_tree({WORKLOADS_PATH: WORKLOADS_OK})
        assert CatalogSyncRule().check(project) == []

    def test_unregistered_profile_fails(self, source_tree):
        source = WORKLOADS_OK.replace(
            '"interp": None,', '"interp": None,\n        "osmix": None,'
        )
        project = source_tree({WORKLOADS_PATH: source})
        violations = CatalogSyncRule().check(project)
        # the missing _SOURCES entry, not a display-name complaint
        assert len(violations) == 1
        assert violations[0].path == WORKLOADS_PATH
        assert "'osmix'" in violations[0].message
        assert "no RunSpec can name it" in violations[0].message

    def test_source_without_profile_fails(self, source_tree):
        source = SOURCES_OK.replace(
            '"interp": None,', '"interp": None,\n        "ghost": None,'
        )
        project = source_tree({SOURCE_PATH: source})
        violations = CatalogSyncRule().check(project)
        messages = "\n".join(v.message for v in violations)
        assert "no workload profile defines it" in messages
        assert "'ghost'" in messages

    def test_source_without_display_label_fails(self, source_tree):
        workloads = WORKLOADS_OK.replace('"interp": "Interp",', "")
        project = source_tree({WORKLOADS_PATH: workloads})
        violations = CatalogSyncRule().check(project)
        assert len(violations) == 1
        assert violations[0].path == SOURCE_PATH
        assert "no DISPLAY_NAMES label" in violations[0].message

    def test_display_label_for_unknown_source_fails(self, source_tree):
        workloads = WORKLOADS_OK.replace(
            '"interp": "Interp",',
            '"interp": "Interp",\n        "ghost": "Ghost",',
        )
        project = source_tree({WORKLOADS_PATH: workloads})
        violations = CatalogSyncRule().check(project)
        assert len(violations) == 1
        assert violations[0].path == WORKLOADS_PATH
        assert "unknown trace source 'ghost'" in violations[0].message

    def test_non_literal_sources_dict_raises(self, source_tree):
        source = SOURCES_OK.replace("_SOURCES = {", "_SOURCES = dict(**{").replace(
            "    }\n    ", "    })\n    "
        )
        project = source_tree({SOURCE_PATH: source})
        with pytest.raises(LintError, match="dict literal"):
            CatalogSyncRule().check(project)


def test_non_literal_catalog_modules_raises(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/catalog/__init__.py": """
            CATALOG_MODULES = tuple(["figures"])
            """
        }
    )
    with pytest.raises(LintError, match="tuple literal"):
        CatalogSyncRule().check(project)


def test_non_literal_experiments_raises(lint_tree):
    source = FIGURES_WITH_UNREGISTERED.replace(
        "EXPERIMENTS = (FIG01,)", "EXPERIMENTS = tuple([FIG01, FIG02])"
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    with pytest.raises(LintError, match="tuple literal"):
        CatalogSyncRule().check(project)
