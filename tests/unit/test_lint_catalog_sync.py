"""R5 (catalog sync): every catalog ``Experiment`` declaration is complete,
registered exactly once, and visible to the catalog."""

from __future__ import annotations

import pytest

from repro.lint.engine import LintError
from repro.lint.rules import CatalogSyncRule
from tests.unit.conftest import write_tree_file

FIGURES_WITH_UNREGISTERED = """
    from repro.eval.experiment import Band, Experiment, Grid, PanelDef

    FIG01_GRID = Grid(axes=(("workload", ("db",)),), build=None)

    FIG01 = Experiment(
        name="fig01",
        title="demo figure",
        paper="Figure 1",
        tags=("figure",),
        grid=FIG01_GRID,
        panels=(PanelDef(id="fig01", title="demo", rows=(), cols=(), cell=None),),
        expectations=(Band(panel="fig01", lo=0.0, hi=1.0),),
    )

    FIG02 = Experiment(
        name="fig02",
        title="forgotten figure",
        paper="Figure 2",
        tags=("figure",),
        grid=FIG01_GRID,
        panels=(PanelDef(id="fig02", title="demo", rows=(), cols=(), cell=None),),
        expectations=(Band(panel="fig02", lo=0.0, hi=1.0),),
    )

    EXPERIMENTS = (FIG01,)
    """

#: the fix R5's hint asks for: list the declaration in EXPERIMENTS.
FIGURES_REGISTERED = FIGURES_WITH_UNREGISTERED.replace(
    "EXPERIMENTS = (FIG01,)", "EXPERIMENTS = (FIG01, FIG02)"
)


def test_base_tree_is_clean(lint_tree):
    assert CatalogSyncRule().check(lint_tree()) == []


def test_unregistered_experiment_fails(lint_tree):
    project = lint_tree(
        {"src/repro/eval/catalog/figures.py": FIGURES_WITH_UNREGISTERED}
    )
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'FIG02'" in violations[0].message
    assert "EXPERIMENTS tuple" in violations[0].message
    assert "allowlist" in violations[0].hint


def test_fix_it_hint_resolves_the_violation(lint_tree):
    project = lint_tree(
        {"src/repro/eval/catalog/figures.py": FIGURES_WITH_UNREGISTERED}
    )
    assert CatalogSyncRule().check(project) != []
    project = write_tree_file(
        project.root, "src/repro/eval/catalog/figures.py", FIGURES_REGISTERED
    )
    assert CatalogSyncRule().check(project) == []


def test_allowlisted_experiment_may_skip_registration(lint_tree):
    project = lint_tree(
        {"src/repro/eval/catalog/figures.py": FIGURES_WITH_UNREGISTERED}
    )
    rule = CatalogSyncRule(
        allowlist={"fig02": "declared for interactive use only, by design"}
    )
    assert rule.check(project) == []


def test_shared_grid_between_experiments_is_clean(lint_tree):
    """Figures 5/6/7 share one grid object so their runs dedupe; R5 must
    not mistake the shared reference for an incomplete declaration."""
    assert FIGURES_REGISTERED.count("grid=FIG01_GRID") == 2  # shared reference
    project = lint_tree(
        {"src/repro/eval/catalog/figures.py": FIGURES_REGISTERED}
    )
    assert CatalogSyncRule().check(project) == []


def test_missing_required_keyword_fails(lint_tree):
    source = FIGURES_REGISTERED.replace('paper="Figure 2",', "")
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'FIG02'" in violations[0].message
    assert "'paper'" in violations[0].message


def test_literal_empty_expectations_fails(lint_tree):
    source = FIGURES_REGISTERED.replace(
        'expectations=(Band(panel="fig02", lo=0.0, hi=1.0),),',
        "expectations=(),",
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "literal expectations tuple is empty" in violations[0].message


def test_non_literal_expectations_not_flagged(lint_tree):
    """Expectations composed by helper functions are legal — only a
    *literal* empty tuple is statically known to assert nothing."""
    source = FIGURES_REGISTERED.replace(
        'expectations=(Band(panel="fig02", lo=0.0, hi=1.0),),',
        'expectations=_shared_bands("fig02"),',
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    assert CatalogSyncRule().check(project) == []


def test_duplicate_name_across_declarations_fails(lint_tree):
    source = FIGURES_REGISTERED.replace('name="fig02"', 'name="fig01"')
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'fig01'" in violations[0].message
    assert "already declared" in violations[0].message


def test_double_registration_fails(lint_tree):
    source = FIGURES_WITH_UNREGISTERED.replace(
        "EXPERIMENTS = (FIG01,)", "EXPERIMENTS = (FIG01, FIG02, FIG02)"
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "registered 2 times" in violations[0].message


def test_unlisted_module_fails(lint_tree):
    extras = FIGURES_REGISTERED.replace('name="fig01"', 'name="x01"').replace(
        'name="fig02"', 'name="x02"'
    )
    project = lint_tree({"src/repro/eval/catalog/extras.py": extras})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'extras'" in violations[0].message
    assert "CATALOG_MODULES" in violations[0].message


def test_underscore_module_is_plumbing(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/catalog/_helpers.py": """
            def cell(runs, row, col):
                return 0.0
            """
        }
    )
    assert CatalogSyncRule().check(project) == []


def test_stale_catalog_modules_entry_fails(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/catalog/__init__.py": """
            CATALOG_MODULES = ("figures", "ghost")
            """
        }
    )
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'ghost'" in violations[0].message
    assert "does not exist" in violations[0].message


def test_stale_experiments_entry_fails(lint_tree):
    source = FIGURES_REGISTERED.replace(
        "EXPERIMENTS = (FIG01, FIG02)", "EXPERIMENTS = (FIG01, FIG02, GHOST)"
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    violations = CatalogSyncRule().check(project)
    assert len(violations) == 1
    assert "'GHOST'" in violations[0].message
    assert "no top-level Experiment" in violations[0].message


def test_non_literal_catalog_modules_raises(lint_tree):
    project = lint_tree(
        {
            "src/repro/eval/catalog/__init__.py": """
            CATALOG_MODULES = tuple(["figures"])
            """
        }
    )
    with pytest.raises(LintError, match="tuple literal"):
        CatalogSyncRule().check(project)


def test_non_literal_experiments_raises(lint_tree):
    source = FIGURES_WITH_UNREGISTERED.replace(
        "EXPERIMENTS = (FIG01,)", "EXPERIMENTS = tuple([FIG01, FIG02])"
    )
    project = lint_tree({"src/repro/eval/catalog/figures.py": source})
    with pytest.raises(LintError, match="tuple literal"):
        CatalogSyncRule().check(project)
