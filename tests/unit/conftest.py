"""Shared fixtures for the ``repro.lint`` unit tests.

``lint_tree`` builds a minimal-but-structurally-complete project checkout
under ``tmp_path`` — every module the R1–R5 rules parse, in its smallest
valid form — and returns a :class:`repro.lint.engine.Project` rooted there.
Tests seed violations by overriding individual files, and "apply the fix-it
hint" by overriding them again with the repaired source.
"""

from __future__ import annotations

import textwrap
from typing import Dict, Optional

import pytest

from repro.lint import manifest as manifest_mod
from repro.lint.engine import Project

#: the smallest tree on which every default rule runs and passes.
BASE_FILES: Dict[str, str] = {
    "src/repro/__init__.py": "",
    "src/repro/core/engine.py": """
        def step(state):
            return state + 1
        """,
    "src/repro/eval/runner.py": """
        def run_system(workload, n_cores, prefetcher="none", seed=0,
                       prefetcher_factory=None):
            return (workload, n_cores, prefetcher, seed, prefetcher_factory)
        """,
    "src/repro/eval/runspec.py": """
        class RunSpec:
            workload: str
            n_cores: int
            prefetcher: str = "none"
            seed: int = 0

            def canonical_dict(self):
                return {
                    "workload": self.workload,
                    "n_cores": self.n_cores,
                    "prefetcher": self.prefetcher,
                    "seed": self.seed,
                }
        """,
    "src/repro/eval/diskcache.py": """
        SCHEMA_VERSION = 1


        def _config_to_dict(config):
            return {"n_cores": config.n_cores}


        def _core_to_dict(core):
            return {"instructions": core.instructions}


        def _link_to_dict(link):
            return {"requests": link.requests}


        def result_to_payload(result, spec=None):
            return {
                "schema": SCHEMA_VERSION,
                "config": _config_to_dict(result.config),
                "cores": [_core_to_dict(core) for core in result.cores],
                "link": _link_to_dict(result.link),
            }
        """,
    "src/repro/eval/executor.py": """
        from repro.eval import diskcache


        def _worker(spec):
            return diskcache.result_to_payload(spec.simulate(), spec)


        def report_to_summary(report):
            return {"event": "sweep", "total": report.total}
        """,
    "src/repro/eval/catalog/__init__.py": """
        CATALOG_MODULES = ("figures",)
        """,
    "src/repro/eval/catalog/_util.py": """
        def workload_axis(ids):
            return tuple((w.upper(), w) for w in ids)
        """,
    "src/repro/eval/catalog/figures.py": """
        from repro.eval.experiment import Band, Experiment, Grid, PanelDef

        FIG01_GRID = Grid(axes=(("workload", ("db",)),), build=None)

        FIG01 = Experiment(
            name="fig01",
            title="demo figure",
            paper="Figure 1",
            tags=("figure",),
            grid=FIG01_GRID,
            panels=(PanelDef(id="fig01", title="demo", rows=(), cols=(), cell=None),),
            expectations=(Band(panel="fig01", lo=0.0, hi=1.0),),
        )

        EXPERIMENTS = (FIG01,)
        """,
}


def write_tree_file(root, rel: str, content: str) -> Project:
    """(Over)write one file and return a fresh Project (parses are cached)."""
    target = root / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(content), encoding="utf-8")
    return Project(root)


@pytest.fixture
def lint_tree(tmp_path):
    """Factory: build the base fixture tree, apply overrides, seed manifest."""

    def build(
        overrides: Optional[Dict[str, str]] = None, with_manifest: bool = True
    ) -> Project:
        files = dict(BASE_FILES)
        files.update(overrides or {})
        for rel, content in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(content), encoding="utf-8")
        project = Project(tmp_path)
        if with_manifest:
            manifest_mod.update_manifest(project)
            project = Project(tmp_path)
        return project

    return build
