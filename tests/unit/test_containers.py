"""Unit tests for repro.util.containers.BoundedRecentSet."""

import pytest

from repro.util.containers import BoundedRecentSet


class TestBoundedRecentSet:
    def test_contains_after_add(self):
        recent = BoundedRecentSet(4)
        recent.add(10)
        assert 10 in recent
        assert 11 not in recent

    def test_capacity_enforced(self):
        recent = BoundedRecentSet(3)
        for key in range(5):
            recent.add(key)
        assert len(recent) == 3
        assert 0 not in recent
        assert 1 not in recent
        assert all(key in recent for key in (2, 3, 4))

    def test_re_add_refreshes_recency(self):
        recent = BoundedRecentSet(3)
        recent.add(1)
        recent.add(2)
        recent.add(3)
        recent.add(1)  # refresh: now 2 is the oldest
        recent.add(4)
        assert 2 not in recent
        assert 1 in recent

    def test_keys_order_oldest_first(self):
        recent = BoundedRecentSet(3)
        for key in (7, 8, 9):
            recent.add(key)
        assert recent.keys() == [7, 8, 9]

    def test_clear(self):
        recent = BoundedRecentSet(2)
        recent.add(1)
        recent.clear()
        assert len(recent) == 0
        assert 1 not in recent

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BoundedRecentSet(0)

    def test_capacity_property(self):
        assert BoundedRecentSet(5).capacity == 5
