"""Unit tests for the trace containers and line-visit lowering."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.trace.record import BlockEvent
from repro.trace.stream import iter_line_visits
from tests.conftest import make_trace

SEQ = int(TransitionKind.SEQUENTIAL)
CALL = int(TransitionKind.CALL)
TF = int(TransitionKind.COND_TAKEN_FWD)


def visits(events, line_size=64):
    return list(iter_line_visits([BlockEvent(*event) for event in events], line_size))


class TestIterLineVisits:
    def test_single_block_single_line(self):
        result = visits([(0x1000, 4, CALL, (0x99,))])
        assert len(result) == 1
        line, kind, ninstr, data = result[0]
        assert line == 0x1000 >> 6
        assert kind == CALL
        assert ninstr == 4
        assert data == (0x99,)

    def test_merges_blocks_in_same_line(self):
        result = visits([(0x1000, 4, CALL, (1,)), (0x1010, 4, TF, (2,))])
        assert len(result) == 1
        assert result[0].ninstr == 8
        assert result[0].data == (1, 2)
        assert result[0].kind == CALL  # first entry kind wins

    def test_block_spanning_lines_splits(self):
        # 32 instructions from 0x1000 = 128 bytes = exactly 2 lines.
        result = visits([(0x1000, 32, CALL, ())])
        assert [(v.line, v.kind, v.ninstr) for v in result] == [
            (0x1000 >> 6, CALL, 16),
            ((0x1000 >> 6) + 1, SEQ, 16),
        ]

    def test_unaligned_block_split(self):
        # Start 8 instructions (32B) into a line; 24 instructions overflow
        # 16 into the next line.
        result = visits([(0x1020, 24, SEQ, ())])
        assert [v.ninstr for v in result] == [8, 16]

    def test_data_attributed_to_first_line(self):
        result = visits([(0x1000, 32, CALL, (7, 8))])
        assert result[0].data == (7, 8)
        assert result[1].data == ()

    def test_line_size_respected(self):
        events = [(0x1000, 32, CALL, ())]
        assert len(visits(events, line_size=128)) == 1
        assert len(visits(events, line_size=32)) == 4

    def test_revisit_same_line_after_leaving(self):
        # A loop: line A, line B, back to line A -> three visits.
        result = visits(
            [
                (0x1000, 16, SEQ, ()),
                (0x1040, 16, SEQ, ()),
                (0x1000, 16, TF, ()),
            ]
        )
        assert [v.line for v in result] == [64, 65, 64]
        assert result[2].kind == TF

    def test_instruction_conservation(self):
        events = [
            (0x1004, 3, CALL, ()),
            (0x1010, 40, SEQ, ()),
            (0x2000, 7, TF, ()),
        ]
        for line_size in (32, 64, 128, 256):
            total = sum(v.ninstr for v in visits(events, line_size))
            assert total == 50

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            visits([(0, 1, SEQ, ())], line_size=48)
        with pytest.raises(ValueError):
            visits([(0, 1, SEQ, ())], line_size=2)

    def test_empty_events(self):
        assert visits([]) == []


class TestTrace:
    def test_total_instructions(self):
        trace = make_trace([(0, 5, SEQ, ()), (64, 7, SEQ, ())])
        assert trace.total_instructions == 12

    def test_len_and_iter(self):
        trace = make_trace([(0, 5, SEQ, ()), (64, 7, SEQ, ())])
        assert len(trace) == 2
        assert [event.ninstr for event in trace] == [5, 7]

    def test_head_cuts_at_event_boundary(self):
        trace = make_trace([(0, 5, SEQ, ()), (64, 7, SEQ, ()), (128, 9, SEQ, ())])
        head = trace.head(11)
        assert head.total_instructions == 5  # 5+7 would exceed 11
        head = trace.head(12)
        assert head.total_instructions == 12

    def test_head_keeps_at_least_one_event(self):
        trace = make_trace([(0, 50, SEQ, ())])
        assert trace.head(1).total_instructions == 50

    def test_head_rejects_nonpositive(self):
        trace = make_trace([(0, 5, SEQ, ())])
        with pytest.raises(ValueError):
            trace.head(0)

    def test_rebased_shifts_all_addresses(self):
        trace = make_trace([(0x100, 5, SEQ, (0x900, 0x910))])
        shifted = trace.rebased(0x1000)
        event = shifted.events[0]
        assert event.addr == 0x1100
        assert event.data == (0x1900, 0x1910)
        assert shifted.total_instructions == trace.total_instructions

    def test_block_event_end_addr(self):
        event = BlockEvent(0x100, 5, SEQ, ())
        assert event.end_addr == 0x100 + 20
