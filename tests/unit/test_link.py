"""Unit tests for the off-chip link model."""

import pytest

from repro.cmp.link import OffChipLink


class TestOffChipLink:
    def test_occupancy_computed(self):
        link = OffChipLink(bytes_per_cycle=3.2, line_size=64)
        assert link.occupancy_cycles == pytest.approx(20.0)

    def test_idle_link_starts_immediately(self):
        link = OffChipLink(4.0, 64)
        assert link.request(now=100.0) == 100.0

    def test_back_to_back_requests_queue(self):
        link = OffChipLink(4.0, 64)  # 16 cycles per line
        first = link.request(0.0)
        second = link.request(0.0)
        third = link.request(0.0)
        assert first == 0.0
        assert second == 16.0
        assert third == 32.0

    def test_gap_resets_queue(self):
        link = OffChipLink(4.0, 64)
        link.request(0.0)
        assert link.request(100.0) == 100.0

    def test_partial_overlap(self):
        link = OffChipLink(4.0, 64)
        link.request(0.0)  # busy until 16
        assert link.request(10.0) == 16.0

    def test_stats(self):
        link = OffChipLink(4.0, 64)
        link.request(0.0)
        link.request(0.0)
        assert link.stats.requests == 2
        assert link.stats.busy_cycles == pytest.approx(32.0)
        assert link.stats.queue_delay_cycles == pytest.approx(16.0)

    def test_utilization(self):
        link = OffChipLink(4.0, 64)
        link.request(0.0)
        assert link.utilization(32.0) == pytest.approx(0.5)
        assert link.utilization(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OffChipLink(0.0, 64)
        with pytest.raises(ValueError):
            OffChipLink(1.0, 0)

    def test_paper_bandwidths(self):
        from repro.timing.params import DEFAULT_TIMING

        single = OffChipLink(DEFAULT_TIMING.bytes_per_cycle(10.0), 64)
        cmp4 = OffChipLink(DEFAULT_TIMING.bytes_per_cycle(20.0), 64)
        assert single.occupancy_cycles == pytest.approx(19.2)
        assert cmp4.occupancy_cycles == pytest.approx(9.6)
