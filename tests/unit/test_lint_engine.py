"""Engine plumbing, the ``python -m repro.lint`` CLI, and the live-tree
acceptance check (the actual repository must lint clean)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import manifest as manifest_mod
from repro.lint.cli import find_project_root, main
from repro.lint.engine import LintError, Project, Violation, run_rules
from repro.lint.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_violation_format_variants():
    full = Violation(rule="R1", path="src/x.py", line=3, message="bad", hint="fix it")
    assert full.format() == "src/x.py:3: [R1] bad\n    fix: fix it"
    file_level = Violation(rule="R2", path="src/x.py", line=0, message="drift")
    assert file_level.format() == "src/x.py: [R2] drift"
    project_level = Violation(rule="R2", path="", line=0, message="missing")
    assert project_level.format() == "<project>: [R2] missing"


def test_project_source_normalizes_newlines(tmp_path):
    (tmp_path / "mod.py").write_bytes(b"a = 1\r\nb = 2\r\n")
    assert Project(tmp_path).source("mod.py") == "a = 1\nb = 2\n"


def test_project_missing_file_raises(tmp_path):
    with pytest.raises(LintError, match="cannot read"):
        Project(tmp_path).source("nope.py")


def test_run_rules_rejects_unknown_names(lint_tree):
    with pytest.raises(LintError, match="unknown rule"):
        run_rules(lint_tree(), default_rules(), names=["R1", "R99"])


def test_run_rules_name_filter_runs_subset(lint_tree):
    # Tree with an R1 violation only: selecting R3 alone must stay clean.
    project = lint_tree({"src/repro/core/walker.py": "import random\n"})
    assert run_rules(project, default_rules(), names=["R3"]) == []
    assert run_rules(project, default_rules(), names=["R1"]) != []


def test_find_project_root_walks_upwards(lint_tree):
    project = lint_tree()
    nested = project.path("src/repro/core")
    assert find_project_root(str(nested)) == project.root
    with pytest.raises(LintError, match="no project root"):
        find_project_root("/")


def test_cli_clean_tree_exits_zero(lint_tree, capsys):
    project = lint_tree()
    assert main(["--root", str(project.root)]) == 0
    assert "repro.lint: OK" in capsys.readouterr().out


def test_cli_violations_exit_one_with_hints(lint_tree, capsys):
    project = lint_tree({"src/repro/core/walker.py": "import random\n"})
    assert main(["--root", str(project.root)]) == 1
    out = capsys.readouterr().out
    assert "[R1]" in out
    assert "fix:" in out
    assert "violation(s)" in out


def test_cli_rules_subset(lint_tree, capsys):
    project = lint_tree({"src/repro/core/walker.py": "import random\n"})
    assert main(["--root", str(project.root), "--rules", "R3,R5"]) == 0
    assert main(["--root", str(project.root), "--rules", "R1"]) == 1
    capsys.readouterr()


def test_cli_unknown_rule_fails(lint_tree, capsys):
    project = lint_tree()
    assert main(["--root", str(project.root), "--rules", "R99"]) == 1
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"):
        assert name in out


def test_cli_update_manifest_round_trip(lint_tree, capsys):
    project = lint_tree(with_manifest=False)
    assert main(["--root", str(project.root)]) == 1  # manifest missing
    assert main(["--root", str(project.root), "--update-manifest"]) == 0
    assert "wrote" in capsys.readouterr().out
    assert project.path(manifest_mod.MANIFEST_PATH).is_file()
    assert main(["--root", str(project.root)]) == 0


def test_cli_bad_root_exits_two(tmp_path, capsys):
    assert main(["--root", str(tmp_path)]) == 2
    assert "error" in capsys.readouterr().err


def test_real_repository_lints_clean():
    """Acceptance: `python -m repro.lint` passes on the tree.

    If this fails after editing a result-affecting module, that is R2 doing
    its job: bump SCHEMA_VERSION in src/repro/eval/diskcache.py and run
    `python -m repro.lint --update-manifest`.
    """
    violations = run_rules(Project(REPO_ROOT), default_rules())
    assert violations == [], "\n".join(v.format() for v in violations)
