"""Unit tests for the ``repro-experiment`` front end's sweep observability.

The experiment plumbing is faked out (real drivers have their own
integration suite); these tests pin the ``--progress`` narration, the
one-line JSON sweep summary, and the salvage-aware ``SweepError`` exit
path.
"""

import json

import pytest

from repro.eval import cli
from repro.eval.executor import SweepError, SweepReport
from repro.eval.profiles import ExperimentScale
from repro.eval.runspec import RunSpec

TINY = ExperimentScale(
    name="tiny",
    warm_instructions=2_000,
    measure_instructions=8_000,
    cmp_measure_instructions=4_000,
)


def spec_for(workload, prefetcher="none"):
    return RunSpec.create(workload, 1, prefetcher, scale=TINY)


class TestParser:
    def test_progress_flag(self):
        args = cli.build_parser().parse_args(["fig05", "--progress"])
        assert args.progress
        assert not cli.build_parser().parse_args(["fig05"]).progress


class TestProgressPrinter:
    def test_simulated_line_shows_duration(self, capsys):
        cli._print_progress(3, 45, spec_for("db"), "simulated", 1.234)
        out = capsys.readouterr().out
        assert "[ 3/45]" in out
        assert "db/1c/none" in out
        assert "simulated in 1.23s" in out

    def test_cache_hit_line(self, capsys):
        cli._print_progress(45, 45, spec_for("web"), "disk", 0.0)
        out = capsys.readouterr().out
        assert "[45/45]" in out
        assert "disk hit" in out


class TestAffectedExperiments:
    def test_maps_failed_specs_back_to_experiments(self):
        a, b, c = spec_for("db"), spec_for("web"), spec_for("japp")
        by_experiment = {"fig05": [a, b], "fig06": [a], "fig08": [c]}
        assert cli._affected_experiments(by_experiment, [a]) == ["fig05", "fig06"]
        assert cli._affected_experiments(by_experiment, [c]) == ["fig08"]
        assert cli._affected_experiments(by_experiment, []) == []


class FakeOutcome:
    """The slice of ExperimentOutcome the CLI's run flow reads."""

    def __init__(self, name, verdicts=()):
        self.name = name
        self.panels = []
        self.verdicts = list(verdicts)

    @property
    def failed_verdicts(self):
        return [v for v in self.verdicts if v.status == "fail"]

    def verdict_summary(self):
        return "expectations: faked"


@pytest.fixture
def fake_experiment(monkeypatch):
    """Wire one fake experiment through the CLI's registry seams."""
    spec = spec_for("db", "discontinuity")

    def fake_collect(names, scale=None, seed=None):
        return {name: [spec] for name in names}

    monkeypatch.setattr(cli, "collect_specs_by_experiment", fake_collect)
    monkeypatch.setattr(
        cli, "run_experiment_outcome", lambda name, **kwargs: FakeOutcome(name)
    )
    monkeypatch.setattr(
        cli, "experiment_names", lambda: ["fake-experiment"], raising=False
    )
    return spec


class TestMainSweepSummary:
    def test_summary_line_and_progress(self, fake_experiment, monkeypatch, capsys):
        spec = fake_experiment
        report = SweepReport(
            total=1, simulated=1, wall_seconds=0.5, label="fake-experiment"
        )
        report.durations[spec] = 0.5

        def fake_run(specs, jobs=None, progress=None, label=None):
            if progress is not None:
                progress(1, 1, spec, "simulated", 0.5)
            return {spec: object()}, report

        monkeypatch.setattr(cli, "run_specs_report", fake_run)
        assert cli.main(["fake-experiment", "--progress"]) == 0
        out = capsys.readouterr().out
        assert "[1/1] db/1c/discontinuity: simulated in 0.50s" in out
        summary_lines = [
            line for line in out.splitlines() if line.startswith("{")
        ]
        assert len(summary_lines) == 1
        summary = json.loads(summary_lines[0])
        assert summary["event"] == "sweep"
        assert summary["simulated"] == 1
        assert summary["label"] == "fake-experiment"

    def test_sweep_error_reports_salvage_and_exits_nonzero(
        self, fake_experiment, monkeypatch, capsys
    ):
        spec = fake_experiment
        report = SweepReport(total=1, failed=1, label="fake-experiment")
        error = SweepError({spec: "Traceback: boom"}, {}, report)

        def fake_run(specs, jobs=None, progress=None, label=None):
            raise error

        monkeypatch.setattr(cli, "run_specs_report", fake_run)
        assert cli.main(["fake-experiment"]) == 1
        captured = capsys.readouterr()
        assert "salvaged" in captured.err
        assert "affected experiments: fake-experiment" in captured.err
        summary = json.loads(
            [line for line in captured.out.splitlines() if line.startswith("{")][0]
        )
        assert summary["failed"] == 1


class TestStrictMode:
    """``--strict`` / $REPRO_STRICT_EXPECTATIONS turn failed verdicts into
    a non-zero exit; by default they are advisory."""

    @pytest.fixture
    def failing_run(self, fake_experiment, monkeypatch):
        from repro.eval.experiment import Verdict

        spec = fake_experiment
        report = SweepReport(total=1, simulated=1, label="fake-experiment")

        def fake_run(specs, jobs=None, progress=None, label=None):
            return {spec: object()}, report

        verdict = Verdict(
            experiment="fake-experiment",
            panel="p",
            kind="band",
            description="d",
            status="fail",
            detail="out of band",
        )
        monkeypatch.setattr(cli, "run_specs_report", fake_run)
        monkeypatch.setattr(
            cli,
            "run_experiment_outcome",
            lambda name, **kwargs: FakeOutcome(name, verdicts=[verdict]),
        )

    def test_failed_verdicts_are_advisory_by_default(
        self, failing_run, monkeypatch, capsys
    ):
        monkeypatch.delenv(cli.STRICT_ENV, raising=False)
        assert cli.main(["fake-experiment"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_strict_flag_exits_nonzero(self, failing_run, capsys):
        assert cli.main(["fake-experiment", "--strict"]) == 1
        assert "strict mode" in capsys.readouterr().err

    def test_strict_env_exits_nonzero(self, failing_run, monkeypatch, capsys):
        monkeypatch.setenv(cli.STRICT_ENV, "1")
        assert cli.main(["fake-experiment"]) == 1
        assert "strict mode" in capsys.readouterr().err

    def test_passing_verdicts_are_fine_in_strict_mode(
        self, fake_experiment, monkeypatch, capsys
    ):
        spec = fake_experiment
        report = SweepReport(total=1, simulated=1, label="fake-experiment")

        def fake_run(specs, jobs=None, progress=None, label=None):
            return {spec: object()}, report

        monkeypatch.setattr(cli, "run_specs_report", fake_run)
        assert cli.main(["fake-experiment", "--strict"]) == 0
