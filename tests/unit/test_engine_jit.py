"""Jit-backend specifics the parity sweep doesn't cover.

The bit-identity of results is proven by ``test_backend_parity`` (full
CoreStats repr equality across 15 prefetchers × 1/4 cores) and by
``profile_engine.py --verify`` (per-visit lockstep).  This module covers
the machinery around the kernel instead: the on-disk compile cache, the
graceful degradation ladder (no compiler → reference stepping inside the
same engine object), the multi-core batch runner's eligibility guard, and
the step()-driven path staying usable alongside run().
"""

from __future__ import annotations

import logging

import pytest

from repro.cmp.system import System, SystemConfig
from repro.core import jitted
from repro.core.jitted import JittedCoreEngine
from repro.eval.profiles import get_scale
from repro.eval.runner import get_compiled_traces

SMOKE = get_scale("smoke")

pytestmark = pytest.mark.skipif(
    not jitted.jit_available(), reason="no C compiler: jit kernel unbuildable"
)


def _build_system(n_cores: int = 1, **overrides) -> System:
    total = SMOKE.warm_instructions + (
        SMOKE.measure_instructions if n_cores == 1 else SMOKE.cmp_measure_instructions
    )
    config = SystemConfig(
        n_cores=n_cores,
        prefetcher=overrides.pop("prefetcher", "discontinuity"),
        warm_instructions=SMOKE.warm_instructions,
        engine_backend="jit",
        **overrides,
    )
    return System(config, get_compiled_traces("db", n_cores, total))


# --------------------------------------------------------------------- #
# Kernel build + cache
# --------------------------------------------------------------------- #


def test_kernel_source_hash_is_stable() -> None:
    assert jitted.kernel_source_hash() == jitted.kernel_source_hash()
    assert len(jitted.kernel_source_hash()) == 16


def test_kernel_cached_on_disk(tmp_path, monkeypatch) -> None:
    """The compiled shared object lands in the cache dir under the source
    hash; a second build loads it without invoking the compiler."""
    from repro.envvars import REPRO_JIT_CACHE_DIR

    monkeypatch.setenv(REPRO_JIT_CACHE_DIR, str(tmp_path))
    assert jitted._build_kernel() is not None
    so_path = tmp_path / f"repro_jit_{jitted.kernel_source_hash()}.so"
    assert so_path.exists()

    def no_compiler(*args, **kwargs):
        raise AssertionError("cache hit must not invoke the compiler")

    monkeypatch.setattr(jitted.subprocess, "run", no_compiler)
    assert jitted._build_kernel() is not None


def test_compile_seconds_reported() -> None:
    # Zero when this process loaded a cached kernel; positive when it
    # compiled.  Either way it is a number, queryable after the probe.
    assert jitted.kernel_compile_seconds() >= 0.0


# --------------------------------------------------------------------- #
# Eligibility / degradation
# --------------------------------------------------------------------- #


def test_c_path_engages_for_supported_config() -> None:
    system = _build_system(n_cores=1)
    engine = system.engines[0]
    assert isinstance(engine, JittedCoreEngine)
    assert engine._twin_ready()
    system.run()
    assert engine.finished


def test_unsupported_prefetcher_uses_reference_stepping() -> None:
    """Prefetchers without a compiled twin run through the inherited
    reference implementation — same engine object, same results."""
    system = _build_system(n_cores=1, prefetcher="markov")
    engine = system.engines[0]
    assert isinstance(engine, JittedCoreEngine)
    assert not engine._twin_ready()
    system.run()
    assert engine.finished


def test_non_lru_replacement_uses_reference_stepping() -> None:
    system = _build_system(n_cores=1, l1_replacement="fifo")
    assert not system.engines[0]._twin_ready()


def test_l2_eviction_hook_disables_c_path() -> None:
    system = _build_system(n_cores=2, l2_inclusive=True)
    assert not any(engine._twin_ready() for engine in system.engines)


# --------------------------------------------------------------------- #
# Multi-core batch runner
# --------------------------------------------------------------------- #


def test_run_multicore_runs_all_cores() -> None:
    system = _build_system(n_cores=4)
    assert JittedCoreEngine.run_multicore(system.engines) is True
    assert all(engine.finished for engine in system.engines)
    assert all(engine.stats.instructions > 0 for engine in system.engines)


def test_run_multicore_declines_mixed_eligibility() -> None:
    """One ineligible sibling forces the whole system onto the Python
    interleave loop — a half-compiled system would let the C side mutate
    shared L2 state behind the reference engine's back."""
    system = _build_system(n_cores=2)
    system.engines[0]._twin_ok = False  # simulate an ineligible core
    assert JittedCoreEngine.run_multicore(system.engines) is False
    # The eligible sibling was pinned to reference stepping too.
    assert system.engines[1]._twin_ok is False


def test_system_run_falls_back_when_runner_declines() -> None:
    system = _build_system(n_cores=2, prefetcher="markov")
    result = system.run()  # run_multicore declines; Python loop finishes
    assert all(engine.finished for engine in system.engines)
    assert result.total_instructions > 0


def test_step_driving_matches_run() -> None:
    """Manually stepping jit engines (as System.run's Python loop or the
    --verify lockstep does) must finish and produce the same stats as the
    batch runner."""
    batch = _build_system(n_cores=2)
    batch.run()
    stepped = _build_system(n_cores=2)
    active = list(stepped.engines)
    while active:
        earliest = active[0]
        for engine in active[1:]:
            if engine.cycle < earliest.cycle:
                earliest = engine
        if not earliest.step():
            active.remove(earliest)
    from repro.eval.diskcache import _core_to_dict

    for ran, walked in zip(batch.engines, stepped.engines):
        assert repr(_core_to_dict(ran.stats)) == repr(_core_to_dict(walked.stats))


# --------------------------------------------------------------------- #
# Probe failure ladder
# --------------------------------------------------------------------- #


def test_probe_failure_warns_once_and_degrades(monkeypatch, caplog) -> None:
    monkeypatch.setattr(jitted, "_kernel_lib", None)
    monkeypatch.setattr(jitted, "_kernel_probed", False)
    monkeypatch.setattr(
        jitted, "_build_kernel", lambda: (_ for _ in ()).throw(OSError("no cc"))
    )
    with caplog.at_level(logging.WARNING, logger="repro.core.jitted"):
        assert jitted._kernel() is None
        assert jitted.jit_available() is False
    warnings = [
        record
        for record in caplog.records
        if "falling back to the reference backend" in record.message
    ]
    assert len(warnings) == 1
    # Second probe is silent.
    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.core.jitted"):
        assert jitted._kernel() is None
    assert not caplog.records
