"""Unit tests for the trace walker (repro.trace.synth.walker)."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.trace.stats import compute_trace_stats
from repro.trace.synth.program import build_program
from repro.trace.synth.walker import TraceWalker, generate_program_trace


@pytest.fixture(scope="module")
def walked():
    from repro.trace.synth.params import WorkloadProfile

    profile = WorkloadProfile(
        name="tiny",
        n_functions=80,
        fn_median_instr=40,
        fn_sigma=0.8,
        fn_max_instr=400,
        block_mean_instr=5.0,
        entry_fraction=0.25,
        max_call_depth=8,
        max_transaction_instr=2_000,
        p_trap=0.001,
        hot_bytes=16 * 1024,
        cold_bytes=256 * 1024,
    )
    program = build_program(profile, seed=5)
    trace = TraceWalker(program, seed=6).walk(30_000)
    return program, trace


class TestWalk:
    def test_reaches_requested_length(self, walked):
        _, trace = walked
        assert trace.total_instructions >= 30_000

    def test_does_not_wildly_overshoot(self, walked):
        _, trace = walked
        # Overshoot is bounded by one transaction.
        assert trace.total_instructions < 30_000 + 2_100

    def test_deterministic(self, walked):
        program, trace = walked
        again = TraceWalker(program, seed=6).walk(30_000)
        assert list(again.events) == list(trace.events)

    def test_seed_changes_walk(self, walked):
        program, trace = walked
        other = TraceWalker(program, seed=7).walk(30_000)
        assert list(other.events) != list(trace.events)

    def test_addresses_within_program(self, walked):
        program, trace = walked
        hi = program.end_addr
        lo = program.profile.code_base
        for event in trace.events:
            assert lo <= event.addr < hi

    def test_events_start_at_block_boundaries(self, walked):
        program, trace = walked
        block_addrs = {
            block.addr for fn in program.functions for block in fn.blocks
        }
        for event in trace.events:
            assert event.addr in block_addrs

    def test_first_event_is_entry_call(self, walked):
        program, trace = walked
        first = trace.events[0]
        assert first.kind == int(TransitionKind.CALL)
        entry_addrs = {program.functions[i].entry_addr for i in program.entry_indices}
        assert first.addr in entry_addrs

    def test_all_transition_kinds_occur(self, walked):
        _, trace = walked
        stats = compute_trace_stats(trace.events)
        seen = {kind for kind, count in stats.kind_counts.items() if count}
        # Every kind should appear in a 30k-instruction walk of a program
        # with traps enabled.
        assert seen == set(TransitionKind)

    def test_traps_enter_trap_handlers(self, walked):
        program, trace = walked
        handler_addrs = {
            program.functions[i].entry_addr for i in program.trap_handler_indices
        }
        trap_kind = int(TransitionKind.TRAP)
        trap_events = [e for e in trace.events if e.kind == trap_kind]
        assert trap_events, "expected some traps at p_trap=0.001"
        assert all(e.addr in handler_addrs for e in trap_events)

    def test_traps_are_negligible_fraction(self, walked):
        _, trace = walked
        stats = compute_trace_stats(trace.events)
        assert stats.kind_fraction(TransitionKind.TRAP) < 0.01

    def test_data_attached(self, walked):
        _, trace = walked
        stats = compute_trace_stats(trace.events)
        rate = stats.data_accesses_per_instruction
        assert 0.8 * 0.36 < rate < 1.2 * 0.36

    def test_rejects_nonpositive_budget(self, walked):
        program, _ = walked
        with pytest.raises(ValueError):
            TraceWalker(program, seed=1).walk(0)


class TestGenerateProgramTrace:
    def test_convenience_wrapper(self):
        from repro.trace.synth.params import WorkloadProfile

        profile = WorkloadProfile(
            name="mini",
            n_functions=40,
            fn_median_instr=30,
            fn_max_instr=200,
            entry_fraction=0.3,
            max_call_depth=6,
            max_transaction_instr=1_000,
        )
        trace = generate_program_trace(profile, seed=3, n_instructions=5_000)
        assert trace.total_instructions >= 5_000
        assert trace.name == "mini"
