"""Unit tests for the mini-ISA taxonomy (repro.isa)."""

import pytest

from repro.isa.classify import (
    MissClass,
    classify_transition,
    is_discontinuity,
    kind_label,
)
from repro.isa.kinds import (
    ALL_KINDS,
    BRANCH_KINDS,
    FUNCTION_CALL_KINDS,
    TransitionKind,
)


class TestKinds:
    def test_all_kinds_covers_enum(self):
        assert set(ALL_KINDS) == set(TransitionKind)

    def test_branch_kinds(self):
        assert TransitionKind.COND_TAKEN_FWD.is_branch
        assert TransitionKind.COND_TAKEN_BWD.is_branch
        assert TransitionKind.COND_NOT_TAKEN.is_branch
        assert TransitionKind.UNCOND_BRANCH.is_branch
        assert not TransitionKind.CALL.is_branch
        assert not TransitionKind.SEQUENTIAL.is_branch

    def test_function_call_kinds(self):
        for kind in (TransitionKind.CALL, TransitionKind.JUMP, TransitionKind.RETURN):
            assert kind.is_function_call
        assert not TransitionKind.UNCOND_BRANCH.is_function_call

    def test_sequential(self):
        assert TransitionKind.SEQUENTIAL.is_sequential
        assert not TransitionKind.CALL.is_sequential

    def test_partition_is_disjoint_and_complete(self):
        trap = {TransitionKind.TRAP}
        seq = {TransitionKind.SEQUENTIAL}
        union = BRANCH_KINDS | FUNCTION_CALL_KINDS | trap | seq
        assert union == set(TransitionKind)
        assert not (BRANCH_KINDS & FUNCTION_CALL_KINDS)


class TestClassify:
    @pytest.mark.parametrize(
        "kind,expected",
        [
            (TransitionKind.SEQUENTIAL, MissClass.SEQUENTIAL),
            (TransitionKind.COND_TAKEN_FWD, MissClass.BRANCH),
            (TransitionKind.COND_TAKEN_BWD, MissClass.BRANCH),
            (TransitionKind.COND_NOT_TAKEN, MissClass.BRANCH),
            (TransitionKind.UNCOND_BRANCH, MissClass.BRANCH),
            (TransitionKind.CALL, MissClass.FUNCTION),
            (TransitionKind.JUMP, MissClass.FUNCTION),
            (TransitionKind.RETURN, MissClass.FUNCTION),
            (TransitionKind.TRAP, MissClass.TRAP),
        ],
    )
    def test_mapping(self, kind, expected):
        assert classify_transition(kind) == expected


class TestIsDiscontinuity:
    def test_next_line_never_discontinuity(self):
        # Even a CALL landing exactly on the next line is left to the
        # sequential prefetcher.
        for kind in TransitionKind:
            assert not is_discontinuity(kind, 100, 101)

    def test_sequential_never_discontinuity(self):
        assert not is_discontinuity(TransitionKind.SEQUENTIAL, 100, 250)

    def test_not_taken_never_discontinuity(self):
        assert not is_discontinuity(TransitionKind.COND_NOT_TAKEN, 100, 250)

    @pytest.mark.parametrize(
        "kind",
        [
            TransitionKind.COND_TAKEN_FWD,
            TransitionKind.COND_TAKEN_BWD,
            TransitionKind.UNCOND_BRANCH,
            TransitionKind.CALL,
            TransitionKind.JUMP,
            TransitionKind.RETURN,
            TransitionKind.TRAP,
        ],
    )
    def test_distant_cti_is_discontinuity(self, kind):
        assert is_discontinuity(kind, 100, 250)
        assert is_discontinuity(kind, 100, 50)  # backward too

    def test_same_line_not_discontinuity(self):
        assert not is_discontinuity(TransitionKind.SEQUENTIAL, 100, 100)


class TestKindLabels:
    def test_paper_legend_labels(self):
        assert kind_label(TransitionKind.SEQUENTIAL) == "Sequential"
        assert kind_label(TransitionKind.COND_TAKEN_FWD) == "Cond branch (tf)"
        assert kind_label(TransitionKind.COND_TAKEN_BWD) == "Cond branch (tb)"
        assert kind_label(TransitionKind.COND_NOT_TAKEN) == "Cond branch (nt)"
        assert kind_label(TransitionKind.UNCOND_BRANCH) == "Uncond branch"

    def test_every_kind_has_label(self):
        labels = {kind_label(kind) for kind in TransitionKind}
        assert len(labels) == len(TransitionKind)
