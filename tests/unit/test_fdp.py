"""Unit tests for the fetch-directed prefetcher."""

import pytest

from repro.isa.kinds import TransitionKind
from repro.prefetch.fdp import FetchDirectedPrefetcher

SEQ = int(TransitionKind.SEQUENTIAL)
CALL = int(TransitionKind.CALL)
RETURN = int(TransitionKind.RETURN)
TF = int(TransitionKind.COND_TAKEN_FWD)


def feed(pf, lines_and_kinds):
    """Drive the prefetcher through a fetch-line sequence (no triggers)."""
    for line, kind in lines_and_kinds:
        pf.on_demand_fetch(line, False, False, kind)


class TestTraining:
    def test_sequential_stream_trains_not_taken(self):
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=4, history_bits=0)
        feed(pf, [(i, SEQ) for i in range(10, 30)])
        candidates = pf.on_demand_fetch(30, True, False, SEQ)
        # The predicted path for a sequential stream is sequential.
        assert [c.line for c in candidates] == [31, 32, 33, 34]

    def test_taken_transition_trains_btb(self):
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=2, history_bits=0)
        # Repeated pattern 10 -> 500 trains gshare(10)=taken, BTB[10]=500.
        for _ in range(4):
            feed(pf, [(10, SEQ), (500, TF), (501, SEQ)])
        assert pf.btb.predict(10) == 500

    def test_runahead_follows_learned_jump(self):
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=3, history_bits=0)
        for _ in range(6):
            feed(pf, [(10, SEQ), (500, TF), (501, SEQ), (502, SEQ)])
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        lines = [c.line for c in candidates]
        assert lines[0] == 500  # jump followed
        assert 501 in lines  # continues along the target path

    def test_untrained_follows_sequential_prior(self):
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=8, history_bits=0)
        # Untrained gshare predicts not-taken (sequential prior), so the
        # run-ahead path is the sequential one.
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        assert [c.line for c in candidates] == list(range(11, 19))

    def test_path_ends_without_btb_target(self):
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=8, history_bits=0)
        # Train line 10 as strongly taken, but never reveal its target:
        # the BTB has no entry and the run-ahead path ends immediately.
        pf.gshare.update(10, taken=True)
        pf.gshare.update(10, taken=True)
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        assert candidates == []

    def test_self_aliased_btb_target_ends_the_path(self):
        # Tagless-BTB aliasing can predict a line as its own target; the
        # run-ahead walk must end there instead of pinning on the line
        # and emitting it for the rest of the lookahead window.
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=8, history_bits=0)
        pf.gshare.update(10, taken=True)
        pf.gshare.update(10, taken=True)
        pf.btb.update(10, 10)  # self-alias
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        assert candidates == []

    def test_self_alias_mid_path_stops_without_repeats(self):
        # Walk reaches line 500 whose BTB entry aliases to itself: the
        # path ends after 500, with no duplicate candidates.
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=8, history_bits=0)
        pf.gshare.update(10, taken=True)
        pf.gshare.update(10, taken=True)
        pf.btb.update(10, 500)
        pf.gshare.update(500, taken=True)
        pf.gshare.update(500, taken=True)
        pf.btb.update(500, 500)  # self-alias downstream
        candidates = pf.on_demand_fetch(10, True, False, SEQ)
        lines = [c.line for c in candidates]
        assert lines == [500]
        assert len(lines) == len(set(lines))

    def test_call_trains_ras(self):
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=2, history_bits=0)
        feed(pf, [(10, SEQ), (500, CALL)])
        assert pf.ras.peek() == 11  # return resumes after the call line

    def test_return_pops_ras(self):
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=2, history_bits=0)
        feed(pf, [(10, SEQ), (500, CALL), (501, SEQ), (11, RETURN)])
        assert len(pf.ras) == 0


class TestBehaviour:
    def test_no_trigger_no_candidates(self):
        pf = FetchDirectedPrefetcher()
        pf.on_demand_fetch(10, False, False, SEQ)
        # training-only call returns no candidates (not a trigger)
        assert pf.on_demand_fetch(11, False, False, SEQ) == []

    def test_lookahead_bounds_candidates(self):
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64, lookahead=5)
        feed(pf, [(i, SEQ) for i in range(10, 40)])
        candidates = pf.on_demand_fetch(40, True, False, SEQ)
        assert len(candidates) <= 5

    def test_reset(self):
        pf = FetchDirectedPrefetcher(btb_entries=64, gshare_entries=64)
        feed(pf, [(10, SEQ), (500, TF)])
        pf.reset()
        assert pf.btb.predict(10) is None
        assert pf.gshare.history == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FetchDirectedPrefetcher(lookahead=0)

    def test_name_reflects_btb(self):
        assert FetchDirectedPrefetcher(btb_entries=2048).name == "fdp-2048btb"
