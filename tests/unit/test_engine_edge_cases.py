"""Engine edge-case tests: throttling, overflow and policy interactions."""

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.cmp.link import OffChipLink
from repro.core.engine import CoreEngine, EngineConfig
from repro.core.l2policy import BYPASS_INSTALL, NORMAL_INSTALL
from repro.isa.classify import MissClass
from repro.isa.kinds import TransitionKind
from repro.prefetch.queue import PrefetchQueue
from repro.prefetch.registry import create_prefetcher
from repro.timing.params import TimingParams
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace

SEQ = int(TransitionKind.SEQUENTIAL)
CALL = int(TransitionKind.CALL)


def build_engine(events, prefetcher, timing, queue=None, l2_policy=NORMAL_INSTALL):
    trace = Trace("t", 0, [BlockEvent(*event) for event in events])
    return CoreEngine(
        EngineConfig(l2_policy=l2_policy),
        trace,
        64,
        SetAssociativeCache("L1I", CacheConfig(1024, 4, 64)),
        SetAssociativeCache("L1D", CacheConfig(8 * 1024, 4, 64)),
        SetAssociativeCache("L2", CacheConfig(64 * 1024, 4, 64)),
        OffChipLink(64.0, 64),
        prefetcher,
        queue if queue is not None else PrefetchQueue(),
        timing,
    )


def seq_events(n_lines, start=0x10000):
    return [(start + i * 64, 16, SEQ, ()) for i in range(n_lines)]


class TestMshrThrottling:
    def test_outstanding_never_exceeds_mshr_capacity(self):
        timing = TimingParams(
            memory_latency=500,
            base_cpi_overhead=0.0,
            fetch_stall_exposed_fraction=1.0,
            prefetch_slot_rate=1.0,
            prefetch_mshr_capacity=2,
        )
        prefetcher = create_prefetcher("next-4-line")
        engine = build_engine(seq_events(40), prefetcher, timing)
        while engine.step():
            assert engine._mshr.outstanding(engine.cycle) <= 2
        assert engine.stats.prefetch.issued_from_memory > 0

    def test_throttled_entries_reissue_later(self):
        timing = TimingParams(
            memory_latency=50,
            base_cpi_overhead=0.0,
            fetch_stall_exposed_fraction=1.0,
            prefetch_slot_rate=1.0,
            prefetch_mshr_capacity=1,
        )
        prefetcher = create_prefetcher("next-4-line")
        engine = build_engine(seq_events(40), prefetcher, timing)
        stats = engine.run()
        # Fills retire after 50 cycles, so prefetching keeps making
        # progress despite the single MSHR.
        assert stats.prefetch.issued_from_memory > 2


class TestQueuePressure:
    def test_aggressive_generation_overflows_small_queue(self):
        timing = TimingParams(
            base_cpi_overhead=0.0,
            fetch_stall_exposed_fraction=1.0,
            prefetch_slot_rate=0.001,  # almost no issue slots
        )
        queue = PrefetchQueue(capacity=4)
        prefetcher = create_prefetcher("next-4-line")
        engine = build_engine(seq_events(60), prefetcher, timing, queue=queue)
        engine.run()
        assert queue.stats.overflow_drops > 0
        assert len(queue) <= 4

    def test_unfiltered_queue_runs(self):
        timing = TimingParams(
            base_cpi_overhead=0.0,
            fetch_stall_exposed_fraction=1.0,
            prefetch_slot_rate=1.0,
        )
        queue = PrefetchQueue(capacity=32, filtering=False)
        prefetcher = create_prefetcher("discontinuity", table_entries=256)
        engine = build_engine(seq_events(60), prefetcher, timing, queue=queue)
        stats = engine.run()
        assert stats.instructions == 60 * 16
        # Without filters, more probes find the line already present.
        assert stats.prefetch.probe_found_present >= 0


class TestPolicyInteractions:
    def test_free_classes_with_prefetcher(self):
        timing = TimingParams(
            base_cpi_overhead=0.0,
            fetch_stall_exposed_fraction=1.0,
            prefetch_slot_rate=1.0,
        )
        trace = seq_events(20)

        def run_with_free(free):
            return CoreEngine(
                EngineConfig(free_miss_classes=free),
                Trace("t", 0, [BlockEvent(*event) for event in trace]),
                64,
                SetAssociativeCache("L1I", CacheConfig(1024, 4, 64)),
                SetAssociativeCache("L1D", CacheConfig(8 * 1024, 4, 64)),
                SetAssociativeCache("L2", CacheConfig(64 * 1024, 4, 64)),
                OffChipLink(64.0, 64),
                create_prefetcher("next-line-tagged"),
                PrefetchQueue(),
                timing,
            ).run()

        free = run_with_free(frozenset({MissClass.SEQUENTIAL}))
        charged = run_with_free(frozenset())
        # Waiving sequential-miss stalls must strictly reduce fetch stalls
        # (late-prefetch residuals are not misses and remain charged).
        assert free.fetch_stall_cycles < charged.fetch_stall_cycles

    def test_bypass_and_normal_differ_in_l2_contents(self):
        timing = TimingParams(
            base_cpi_overhead=0.0,
            fetch_stall_exposed_fraction=1.0,
            prefetch_slot_rate=1.0,
        )
        events = seq_events(40)
        normal = build_engine(
            events, create_prefetcher("next-4-line"), timing, l2_policy=NORMAL_INSTALL
        )
        normal.run()
        bypass = build_engine(
            events, create_prefetcher("next-4-line"), timing, l2_policy=BYPASS_INSTALL
        )
        bypass.run()
        # Normal installs every memory prefetch into L2; bypass installs
        # only used lines on eviction, so normal's L2 holds at least as
        # many lines.
        assert len(normal.l2) >= len(bypass.l2)


class TestVisitMergeSemantics:
    def test_blocks_within_one_line_cost_one_lookup(self):
        timing = TimingParams(
            base_cpi_overhead=0.0,
            fetch_stall_exposed_fraction=1.0,
        )
        # Four 4-instruction blocks inside one 64B line.
        events = [(0x10000 + i * 16, 4, SEQ, ()) for i in range(4)]
        engine = build_engine(events, create_prefetcher("none"), timing)
        stats = engine.run()
        assert stats.l1i_fetches == 1
        assert stats.instructions == 16
