"""Unit tests for the CMP system model (repro.cmp.system)."""

import math

import pytest

from repro.cmp.system import DEFAULT_BANDWIDTH_GBPS, System, SystemConfig
from repro.isa.kinds import TransitionKind
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace

SEQ = int(TransitionKind.SEQUENTIAL)


def seq_trace(n_lines, start=0x10000, name="t", seed=0):
    events = [BlockEvent(start + i * 64, 16, SEQ, ()) for i in range(n_lines)]
    return Trace(name, seed, events)


class TestSystemConfig:
    def test_default_bandwidths_match_paper(self):
        assert SystemConfig(n_cores=1).resolve_bandwidth() == 10.0
        assert SystemConfig(n_cores=4).resolve_bandwidth() == 20.0
        assert DEFAULT_BANDWIDTH_GBPS == {1: 10.0, 4: 20.0}

    def test_explicit_bandwidth_wins(self):
        assert SystemConfig(n_cores=4, offchip_gbps=5.0).resolve_bandwidth() == 5.0

    def test_intermediate_core_counts_interpolate(self):
        assert 10.0 < SystemConfig(n_cores=2).resolve_bandwidth() < 20.0

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(n_cores=0)


class TestSystem:
    def test_trace_count_must_match_cores(self):
        with pytest.raises(ValueError, match="traces"):
            System(SystemConfig(n_cores=2), [seq_trace(4)])

    def test_single_core_run(self):
        system = System(SystemConfig(n_cores=1), [seq_trace(8)])
        result = system.run()
        assert result.total_instructions == 8 * 16
        assert len(result.cores) == 1
        assert result.l1i_miss_rate == pytest.approx(8 / 128)

    def test_cores_share_l2(self):
        # Two cores walking the same lines: the second core's L2 accesses
        # should hit lines the first core installed.
        traces = [seq_trace(64, name="a"), seq_trace(64, name="b")]
        system = System(SystemConfig(n_cores=2), traces)
        result = system.run()
        total_l2_misses = sum(core.l2i_demand_misses for core in result.cores)
        # 64 distinct lines fetched by both cores: without sharing this
        # would be 128 L2 misses; with a shared L2 it is ~64.
        assert total_l2_misses < 90

    def test_interleaving_approximates_cycle_order(self):
        # A short trace and a long trace: both must complete.
        traces = [seq_trace(4, name="short"), seq_trace(40, start=0x90000, name="long")]
        system = System(SystemConfig(n_cores=2), traces)
        result = system.run()
        assert result.cores[0].instructions == 4 * 16
        assert result.cores[1].instructions == 40 * 16

    def test_aggregate_ipc_sums_cores(self):
        traces = [seq_trace(8), seq_trace(8, start=0x90000)]
        result = System(SystemConfig(n_cores=2), traces).run()
        assert result.aggregate_ipc == pytest.approx(
            result.cores[0].ipc + result.cores[1].ipc
        )

    def test_prefetcher_instantiated_per_core(self):
        traces = [seq_trace(8), seq_trace(8, start=0x90000)]
        system = System(SystemConfig(n_cores=2, prefetcher="discontinuity"), traces)
        assert system.engines[0].prefetcher is not system.engines[1].prefetcher

    def test_bad_policy_name_raises(self):
        with pytest.raises(KeyError):
            System(SystemConfig(n_cores=1, l2_policy="nope"), [seq_trace(4)])

    def test_bad_prefetcher_name_raises(self):
        # Validated eagerly at config construction (not at registry
        # lookup inside System), so typos fail before any sweep starts.
        with pytest.raises(ValueError, match="unknown prefetcher"):
            SystemConfig(n_cores=1, prefetcher="nope")

    def test_prefetcher_factory_bypasses_name_validation(self):
        from repro.prefetch.base import NullPrefetcher

        config = SystemConfig(
            n_cores=1, prefetcher="custom", prefetcher_factory=lambda: NullPrefetcher()
        )
        assert config.prefetcher == "custom"


class TestSystemResult:
    def test_breakdowns_merged_across_cores(self):
        traces = [seq_trace(8), seq_trace(8, start=0x90000)]
        result = System(SystemConfig(n_cores=2), traces).run()
        merged = result.l1i_breakdown
        assert merged.total == sum(core.l1i_misses for core in result.cores)

    def test_prefetch_aggregates(self):
        result = System(
            SystemConfig(n_cores=1, prefetcher="next-line-tagged"), [seq_trace(32)]
        ).run()
        assert result.prefetch_issued > 0
        assert 0 < result.prefetch_accuracy <= 1.0
        assert 0 < result.l1i_coverage <= 1.0

    def test_coverage_zero_without_prefetch(self):
        result = System(SystemConfig(n_cores=1), [seq_trace(8)]).run()
        assert result.l1i_coverage == 0.0
        assert result.prefetch_accuracy == 0.0

    def test_summary_formats(self):
        result = System(
            SystemConfig(n_cores=1, prefetcher="next-line-tagged"), [seq_trace(16)]
        ).run()
        summary = result.summary()
        assert "aggregate IPC" in summary
        assert "prefetch accuracy" in summary

    def test_rates_are_finite(self):
        result = System(SystemConfig(n_cores=1), [seq_trace(8)]).run()
        for value in (result.l1i_miss_rate, result.l2i_miss_rate, result.l2d_miss_rate):
            assert math.isfinite(value)
