"""Shared fixtures: small deterministic traces, caches and profiles."""

from __future__ import annotations

import os

import pytest

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.isa.kinds import TransitionKind
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace
from repro.trace.synth.params import WorkloadProfile

@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the on-disk result cache and trace store at per-test tmp dirs.

    Keeps the suite from writing ``.repro-cache/`` into the repo (and from
    reading stale results out of it).  The compiled-trace store defaults to
    a subdirectory of the result cache, but is pinned explicitly so it
    stays per-test even when an operator overrides ``REPRO_CACHE_DIR``.
    Respects explicit operator overrides so ``REPRO_CACHE_DIR=... pytest``
    still works.
    """
    if "REPRO_CACHE_DIR" not in os.environ:
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    if "REPRO_TRACE_DIR" not in os.environ:
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "repro-traces"))
    yield


SEQ = int(TransitionKind.SEQUENTIAL)
CALL = int(TransitionKind.CALL)
RETURN = int(TransitionKind.RETURN)
TF = int(TransitionKind.COND_TAKEN_FWD)


@pytest.fixture
def tiny_profile() -> WorkloadProfile:
    """A miniature workload profile that generates in milliseconds."""
    return WorkloadProfile(
        name="tiny",
        n_functions=60,
        fn_median_instr=40,
        fn_sigma=0.8,
        fn_max_instr=400,
        block_mean_instr=5.0,
        entry_fraction=0.25,
        max_call_depth=8,
        max_transaction_instr=2_000,
        hot_bytes=16 * 1024,
        cold_bytes=256 * 1024,
    )


@pytest.fixture
def small_cache() -> SetAssociativeCache:
    """A 4-set, 2-way cache (8 lines of 64B) for deterministic evictions."""
    return SetAssociativeCache(
        "test", CacheConfig(capacity_bytes=512, associativity=2, line_size=64)
    )


def make_trace(events, name: str = "manual", seed: int = 0) -> Trace:
    """Build an in-memory trace from (addr, ninstr, kind, data) tuples."""
    return Trace(name, seed, [BlockEvent(*event) for event in events])


@pytest.fixture
def sequential_trace() -> Trace:
    """A purely sequential walk: 64 blocks of 16 instructions each.

    Covers lines 0x1000>>6 .. onward, one line per block (16 instr * 4B =
    64B), so every block starts a new line.
    """
    events = []
    addr = 0x1000
    for _ in range(64):
        events.append((addr, 16, SEQ, ()))
        addr += 64
    return make_trace(events)
