"""Property-based tests for the discontinuity table invariants."""

from hypothesis import given, settings, strategies as st

from repro.prefetch.discontinuity import COUNTER_MAX, DiscontinuityTable

lines = st.integers(min_value=0, max_value=1 << 20)
observations = st.lists(st.tuples(lines, lines), max_size=300)


@given(observations, st.sampled_from([16, 64, 256]))
@settings(max_examples=200, deadline=None)
def test_occupancy_bounded_by_entries(obs, entries):
    table = DiscontinuityTable(entries=entries)
    for source, target in obs:
        table.observe(source, target)
    assert table.occupancy() <= entries


@given(observations, st.sampled_from([16, 64]))
@settings(max_examples=200, deadline=None)
def test_prediction_only_for_resident_source(obs, entries):
    """predict(s) returns non-None only if s is the resident source at its
    index, and the returned target was observed for s at some point."""
    table = DiscontinuityTable(entries=entries)
    observed_targets = {}
    for source, target in obs:
        table.observe(source, target)
        observed_targets.setdefault(source, set()).add(target)
    for source, target_set in observed_targets.items():
        predicted = table.predict(source)
        if predicted is not None:
            assert predicted in target_set


@given(observations)
@settings(max_examples=200, deadline=None)
def test_counters_stay_in_range(obs):
    table = DiscontinuityTable(entries=32)
    for source, target in obs:
        table.observe(source, target)
        index = table.index_of(source)
        _, _, counter = table.entry(index)
        assert 0 <= counter <= COUNTER_MAX


@given(observations, st.lists(lines, max_size=50))
@settings(max_examples=100, deadline=None)
def test_credit_never_crashes_or_corrupts(obs, credit_sources):
    table = DiscontinuityTable(entries=32)
    for source, target in obs:
        table.observe(source, target)
    for source in credit_sources:
        table.credit(table.index_of(source), source)
        _, _, counter = table.entry(table.index_of(source))
        assert 0 <= counter <= COUNTER_MAX


@given(observations)
@settings(max_examples=100, deadline=None)
def test_stats_balance(obs):
    table = DiscontinuityTable(entries=32)
    for source, target in obs:
        table.observe(source, target)
    stats = table.stats
    # Every observation lands in exactly one bucket (or was a no-op
    # re-observation of the same pair).
    total_events = (
        stats.allocations
        + stats.replacements
        + stats.replacement_denied
        + stats.target_updates
    )
    assert total_events <= len(obs)
    assert stats.allocations <= 32
