"""Property-based tests for the Markov table and the software-prefetch plan."""

from hypothesis import given, settings, strategies as st

from repro.prefetch.markov import MarkovTable
from repro.swpf.analysis import build_prefetch_plan
from repro.trace.synth.params import WorkloadProfile
from repro.trace.synth.program import build_program

lines = st.integers(min_value=0, max_value=4096)
observations = st.lists(st.tuples(lines, lines), max_size=300)


@given(observations, st.integers(1, 4), st.integers(1, 64))
@settings(max_examples=150, deadline=None)
def test_markov_bounds(obs, targets_per_entry, capacity):
    table = MarkovTable(capacity=capacity, targets_per_entry=targets_per_entry)
    for source, target in obs:
        table.observe(source, target)
        assert table.occupancy() <= capacity
        successors = table.entry_successors(source)
        assert len(successors) <= targets_per_entry
        # Frequency ordering invariant.
        counts = [count for _, count in successors]
        assert counts == sorted(counts, reverse=True)
        assert all(count >= 1 for count in counts)


@given(observations)
@settings(max_examples=100, deadline=None)
def test_markov_predictions_were_observed(obs):
    table = MarkovTable(capacity=64, targets_per_entry=3)
    observed = {}
    for source, target in obs:
        table.observe(source, target)
        observed.setdefault(source, set()).add(target)
    for source, targets in observed.items():
        for predicted in table.predict(source, fanout=3):
            assert predicted in targets


@given(observations, st.integers(1, 3))
@settings(max_examples=100, deadline=None)
def test_markov_fanout_respected(obs, fanout):
    table = MarkovTable(capacity=64, targets_per_entry=4)
    for source, target in obs:
        table.observe(source, target)
    for source, _ in obs[:20]:
        assert len(table.predict(source, fanout)) <= fanout


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**32),
    min_probability=st.floats(min_value=0.05, max_value=0.9),
)
def test_swpf_plan_invariants(seed, min_probability):
    profile = WorkloadProfile(
        name="prop",
        n_functions=30,
        fn_median_instr=40,
        fn_max_instr=200,
        entry_fraction=0.3,
        max_call_depth=6,
        max_transaction_instr=1_000,
    )
    program = build_program(profile, seed=seed)
    plan = build_prefetch_plan(program, min_probability=min_probability)
    code_lo = profile.code_base >> 6
    code_hi = program.end_addr >> 6
    count = 0
    for line in range(code_lo, code_hi + 1):
        targets = plan.targets_for(line)
        count += len(targets)
        for target in targets:
            # All plan lines live within the program's code region.
            assert code_lo <= target <= code_hi
            # Never a near-sequential target (HW covers those).
            assert not (0 <= target - line <= 4)
    assert count == plan.n_targets
