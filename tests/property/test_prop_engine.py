"""Property-based tests of engine-level invariants.

Random small traces (mixed transition kinds, random data accesses) are run
through the full engine with every prefetcher; the accounting invariants
must hold regardless of input:

- instruction conservation: counted == trace total;
- fetch accounting: misses <= fetches; useful <= issued <= generated-ish;
- monotone clock: cycles strictly positive and finite;
- determinism: identical runs produce identical stats.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.cmp.link import OffChipLink
from repro.core.engine import CoreEngine, EngineConfig
from repro.core.l2policy import BYPASS_INSTALL, NORMAL_INSTALL
from repro.isa.kinds import TransitionKind
from repro.prefetch.queue import PrefetchQueue
from repro.prefetch.registry import create_prefetcher
from repro.timing.params import TimingParams
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace

TIMING = TimingParams(memory_latency=100, prefetch_slot_rate=1.0)

kinds = st.sampled_from([int(kind) for kind in TransitionKind])

events = st.lists(
    st.builds(
        BlockEvent,
        addr=st.integers(min_value=0x1000, max_value=0x40000).map(lambda a: a & ~0x3),
        ninstr=st.integers(min_value=1, max_value=40),
        kind=kinds,
        data=st.lists(
            st.integers(min_value=1 << 20, max_value=(1 << 20) + 65536), max_size=2
        ).map(tuple),
    ),
    min_size=1,
    max_size=80,
)

prefetchers = st.sampled_from(
    ["none", "next-line-tagged", "next-4-line", "discontinuity", "target"]
)
policies = st.sampled_from([NORMAL_INSTALL, BYPASS_INSTALL])


def run_engine(event_list, prefetcher_name, policy):
    engine = CoreEngine(
        EngineConfig(l2_policy=policy),
        Trace("p", 0, event_list),
        64,
        SetAssociativeCache("L1I", CacheConfig(1024, 2, 64)),
        SetAssociativeCache("L1D", CacheConfig(1024, 2, 64)),
        SetAssociativeCache("L2", CacheConfig(16 * 1024, 4, 64)),
        OffChipLink(16.0, 64),
        create_prefetcher(prefetcher_name, table_entries=64),
        PrefetchQueue(capacity=8, recent_capacity=8),
        TIMING,
    )
    engine.run()
    return engine


@given(events, prefetchers, policies)
@settings(max_examples=150, deadline=None)
def test_accounting_invariants(event_list, prefetcher_name, policy):
    engine = run_engine(event_list, prefetcher_name, policy)
    stats = engine.stats
    expected_instructions = sum(event.ninstr for event in event_list)
    assert stats.instructions == expected_instructions
    assert stats.l1i_misses <= stats.l1i_fetches
    assert stats.l2i_demand_misses <= stats.l2i_demand_accesses
    assert stats.l2d_misses <= stats.l2d_accesses <= stats.data_accesses
    pf = stats.prefetch
    assert pf.useful <= pf.issued
    assert pf.useful_late <= pf.useful
    assert pf.useful_from_memory <= pf.useful
    assert pf.issued == pf.issued_from_l2 + pf.issued_from_memory
    assert stats.cycles > 0
    assert math.isfinite(stats.cycles)
    assert stats.fetch_stall_cycles >= 0
    assert stats.data_stall_cycles >= 0
    # Cycle accounting is exhaustive: every clock advance is execution, a
    # fetch stall or an exposed data stall.
    assert stats.cycles == pytest.approx(
        stats.exec_cycles + stats.fetch_stall_cycles + stats.data_stall_cycles
    )


@given(events, prefetchers, policies)
@settings(max_examples=50, deadline=None)
def test_determinism(event_list, prefetcher_name, policy):
    first = run_engine(event_list, prefetcher_name, policy).stats
    second = run_engine(event_list, prefetcher_name, policy).stats
    assert first.cycles == second.cycles
    assert first.l1i_misses == second.l1i_misses
    assert first.prefetch.issued == second.prefetch.issued
    assert first.prefetch.useful == second.prefetch.useful


@given(events)
@settings(max_examples=50, deadline=None)
def test_prefetching_never_increases_miss_count_much(event_list):
    """Prefetched runs may reorder evictions, but the demand miss count
    with a tagged next-line prefetcher should never exceed the baseline by
    more than the L1I pollution could explain (loose sanity bound)."""
    base = run_engine(event_list, "none", NORMAL_INSTALL).stats
    pf = run_engine(event_list, "next-line-tagged", NORMAL_INSTALL).stats
    assert pf.l1i_misses <= base.l1i_misses + base.l1i_fetches * 0.25 + 2
