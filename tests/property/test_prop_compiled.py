"""Property-based tests for compiled traces: round-trip exactness.

The engine's fast path trusts :class:`CompiledTrace` columns blindly, so
these properties are the load-bearing guarantee: compiling then replaying
(in memory or through the binary form) reproduces the live
:func:`iter_line_visits` output *exactly* — same lines, kinds, instruction
counts and data attribution, for line-spanning blocks and data-heavy
same-line merges alike.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.classify import is_discontinuity
from repro.isa.kinds import TransitionKind
from repro.trace.compiled import CompiledTrace, visits_equal
from repro.trace.record import INSTRUCTION_SIZE, BlockEvent
from repro.trace.stream import Trace, iter_line_visits

kinds = st.sampled_from([int(kind) for kind in TransitionKind])

events = st.lists(
    st.builds(
        BlockEvent,
        addr=st.integers(min_value=0, max_value=1 << 24).map(
            lambda a: a * INSTRUCTION_SIZE
        ),
        ninstr=st.integers(min_value=1, max_value=300),
        kind=kinds,
        data=st.lists(
            st.integers(min_value=0, max_value=1 << 32), max_size=4
        ).map(tuple),
    ),
    max_size=60,
)

line_sizes = st.sampled_from([16, 32, 64, 128, 256])


def compile_for(event_list, line_size, seed=7):
    trace = Trace("prop", 99, event_list)
    return trace, CompiledTrace.compile(
        trace, line_size, workload="prop", seed=seed, core=0, n_instructions=1234
    )


@given(events, line_sizes)
@settings(max_examples=200, deadline=None)
def test_compile_replays_live_lowering_exactly(event_list, line_size):
    trace, compiled = compile_for(event_list, line_size)
    assert list(compiled.iter_visits()) == list(
        iter_line_visits(event_list, line_size)
    )
    equal, mismatch = visits_equal(compiled, trace)
    assert equal and mismatch == -1


@given(events, line_sizes)
@settings(max_examples=100, deadline=None)
def test_binary_roundtrip_is_exact(event_list, line_size):
    trace, compiled = compile_for(event_list, line_size)
    loaded = CompiledTrace.from_bytes(compiled.to_bytes())
    assert loaded.workload == compiled.workload
    assert loaded.name == compiled.name
    assert loaded.seed == compiled.seed
    assert loaded.core == compiled.core
    assert loaded.n_instructions == compiled.n_instructions
    assert loaded.line_size == line_size
    assert list(loaded.iter_visits()) == list(compiled.iter_visits())
    assert list(loaded.disc) == list(compiled.disc)


@given(events, line_sizes)
@settings(max_examples=100, deadline=None)
def test_disc_column_matches_live_rule(event_list, line_size):
    _, compiled = compile_for(event_list, line_size)
    members = list(TransitionKind)
    prev = -1
    for i, visit in enumerate(compiled.iter_visits()):
        expected = (
            prev >= 0
            and visit.line != prev
            and is_discontinuity(members[visit.kind], prev, visit.line)
        )
        assert bool(compiled.disc[i]) == expected
        prev = visit.line


@given(events, line_sizes)
@settings(max_examples=100, deadline=None)
def test_compile_conserves_totals(event_list, line_size):
    _, compiled = compile_for(event_list, line_size)
    assert compiled.total_instructions == sum(e.ninstr for e in event_list)
    assert len(compiled.data) == sum(len(e.data) for e in event_list)
    assert len(compiled.offsets) == compiled.visit_count + 1
