"""Property-based tests for the prefetch queue invariants."""

from hypothesis import given, settings, strategies as st

from repro.prefetch.base import PrefetchCandidate
from repro.prefetch.queue import PrefetchQueue, QueueState

lines = st.integers(min_value=0, max_value=40)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), lines),
        st.tuples(st.just("demand"), lines),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=300,
)


@given(operations, st.integers(min_value=1, max_value=16))
@settings(max_examples=200, deadline=None)
def test_capacity_invariant(ops, capacity):
    queue = PrefetchQueue(capacity=capacity, recent_capacity=8)
    for op, line in ops:
        if op == "offer":
            queue.offer(PrefetchCandidate(line, ("seq",)))
        elif op == "demand":
            queue.note_demand_fetch(line)
        else:
            queue.pop_ready()
        assert len(queue) <= capacity


@given(operations)
@settings(max_examples=200, deadline=None)
def test_no_duplicate_lines_in_filtered_queue(ops):
    queue = PrefetchQueue(capacity=16, recent_capacity=8)
    for op, line in ops:
        if op == "offer":
            queue.offer(PrefetchCandidate(line, ("seq",)))
        elif op == "demand":
            queue.note_demand_fetch(line)
        else:
            queue.pop_ready()
        entry_lines = [entry.line for entry in queue._entries]
        assert len(entry_lines) == len(set(entry_lines))


@given(operations)
@settings(max_examples=200, deadline=None)
def test_pop_never_returns_recently_demanded_waiting_line(ops):
    """A line demand-fetched after being queued must not issue."""
    queue = PrefetchQueue(capacity=16, recent_capacity=16)
    demanded_after_offer = set()
    offered = set()
    for op, line in ops:
        if op == "offer":
            accepted = queue.offer(PrefetchCandidate(line, ("seq",)))
            if accepted:
                offered.add(line)
                demanded_after_offer.discard(line)
        elif op == "demand":
            queue.note_demand_fetch(line)
            if line in offered:
                demanded_after_offer.add(line)
        else:
            entry = queue.pop_ready()
            if entry is not None:
                assert entry.line not in demanded_after_offer
                offered.discard(entry.line)


@given(operations)
@settings(max_examples=200, deadline=None)
def test_popped_entries_marked_issued_and_counted(ops):
    queue = PrefetchQueue(capacity=16)
    pops = 0
    for op, line in ops:
        if op == "offer":
            queue.offer(PrefetchCandidate(line, ("seq",)))
        elif op == "demand":
            queue.note_demand_fetch(line)
        else:
            entry = queue.pop_ready()
            if entry is not None:
                pops += 1
                assert entry.state == QueueState.ISSUED
    assert queue.stats.popped == pops


@given(operations)
@settings(max_examples=100, deadline=None)
def test_stats_accounting_consistent(ops):
    queue = PrefetchQueue(capacity=16, recent_capacity=8)
    for op, line in ops:
        if op == "offer":
            queue.offer(PrefetchCandidate(line, ("seq",)))
        elif op == "demand":
            queue.note_demand_fetch(line)
        else:
            queue.pop_ready()
    stats = queue.stats
    assert stats.offered == (
        stats.accepted
        + stats.dropped_recent_demand
        + stats.dropped_dup_issued
        + stats.dropped_dup_invalid
        + stats.hoisted
    )
