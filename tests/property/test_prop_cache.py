"""Property-based tests for the cache substrate.

Invariants checked against random access sequences:

- occupancy never exceeds capacity, per set and overall;
- a line just installed is resident (unless immediately evicted by a
  later install to the same set);
- lookup(x) hits iff x was installed and not since evicted/invalidated —
  modelled against a reference dict-of-sets simulator with LRU order;
- probe never changes observable state.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.caches.line import LineState

CONFIG = CacheConfig(capacity_bytes=1024, associativity=2, line_size=64)  # 8 sets

lines = st.integers(min_value=0, max_value=63)
ops = st.lists(
    st.tuples(st.sampled_from(["lookup", "install", "invalidate", "probe"]), lines),
    max_size=200,
)


class ReferenceCache:
    """Oracle: per-set LRU OrderedDicts, mirroring the contract exactly."""

    def __init__(self, config):
        self.sets = [OrderedDict() for _ in range(config.n_sets)]
        self.mask = config.n_sets - 1
        self.assoc = config.associativity

    def lookup(self, line):
        s = self.sets[line & self.mask]
        if line in s:
            s.move_to_end(line)
            return True
        return False

    def install(self, line):
        s = self.sets[line & self.mask]
        if line in s:
            s.move_to_end(line)
            return
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line] = None

    def invalidate(self, line):
        self.sets[line & self.mask].pop(line, None)

    def resident(self, line):
        return line in self.sets[line & self.mask]

    def __len__(self):
        return sum(len(s) for s in self.sets)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_cache_matches_reference_lru(operations):
    cache = SetAssociativeCache("p", CONFIG)
    reference = ReferenceCache(CONFIG)
    for op, line in operations:
        if op == "lookup":
            assert (cache.lookup(line) is not None) == reference.lookup(line)
        elif op == "install":
            cache.install(line, LineState())
            reference.install(line)
        elif op == "invalidate":
            cache.invalidate(line)
            reference.invalidate(line)
        else:  # probe
            assert (cache.probe(line) is not None) == reference.resident(line)
        assert len(cache) == len(reference)
        assert len(cache) <= CONFIG.n_lines


@given(ops)
@settings(max_examples=100, deadline=None)
def test_set_occupancy_never_exceeds_associativity(operations):
    cache = SetAssociativeCache("p", CONFIG)
    for op, line in operations:
        if op == "install":
            cache.install(line, LineState())
        elif op == "lookup":
            cache.lookup(line)
        elif op == "invalidate":
            cache.invalidate(line)
        assert cache.set_occupancy(line) <= CONFIG.associativity


@given(st.lists(lines, min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_probe_is_pure(installs):
    cache = SetAssociativeCache("p", CONFIG)
    for line in installs:
        cache.install(line, LineState())
    before = sorted(line for line, _ in cache.resident_lines())
    stats_before = (cache.stats.lookups, cache.stats.hits, cache.stats.misses)
    for line in range(64):
        cache.probe(line)
    after = sorted(line for line, _ in cache.resident_lines())
    assert before == after
    assert stats_before == (cache.stats.lookups, cache.stats.hits, cache.stats.misses)


@given(st.lists(lines, min_size=1, max_size=100), st.integers(0, 63))
@settings(max_examples=100, deadline=None)
def test_random_policy_respects_capacity(installs, extra):
    cache = SetAssociativeCache("p", CONFIG, policy="random", rng_seed=7)
    for line in installs:
        cache.install(line, LineState())
    assert len(cache) <= CONFIG.n_lines
    cache.install(extra, LineState())
    assert cache.probe(extra) is not None


@given(ops, st.sampled_from(["fifo", "plru", "random"]))
@settings(max_examples=150, deadline=None)
def test_all_policies_maintain_residency_invariants(operations, policy):
    """Every policy: capacity bounds hold, installed lines are resident
    until evicted/invalidated, and a just-installed line is always found."""
    cache = SetAssociativeCache("p", CONFIG, policy=policy, rng_seed=11)
    for op, line in operations:
        if op == "install":
            cache.install(line, LineState())
            assert cache.probe(line) is not None
        elif op == "lookup":
            cache.lookup(line)
        elif op == "invalidate":
            cache.invalidate(line)
            assert cache.probe(line) is None
        else:
            cache.probe(line)
        assert len(cache) <= CONFIG.n_lines
        assert cache.set_occupancy(line) <= CONFIG.associativity
    # Residency is consistent between the set store and iteration.
    assert len(list(cache.resident_lines())) == len(cache)
