"""Property-based tests for trace lowering and serialization."""

from hypothesis import given, settings, strategies as st

from repro.isa.kinds import TransitionKind
from repro.trace.io import read_trace, write_trace
from repro.trace.record import INSTRUCTION_SIZE, BlockEvent
from repro.trace.stream import Trace, iter_line_visits

kinds = st.sampled_from([int(kind) for kind in TransitionKind])

events = st.lists(
    st.builds(
        BlockEvent,
        addr=st.integers(min_value=0, max_value=1 << 24).map(
            lambda a: a * INSTRUCTION_SIZE
        ),
        ninstr=st.integers(min_value=1, max_value=300),
        kind=kinds,
        data=st.lists(
            st.integers(min_value=0, max_value=1 << 32), max_size=4
        ).map(tuple),
    ),
    max_size=60,
)

line_sizes = st.sampled_from([16, 32, 64, 128, 256])


@given(events, line_sizes)
@settings(max_examples=200, deadline=None)
def test_line_visits_conserve_instructions(event_list, line_size):
    total = sum(event.ninstr for event in event_list)
    visits = list(iter_line_visits(event_list, line_size))
    assert sum(v.ninstr for v in visits) == total


@given(events, line_sizes)
@settings(max_examples=200, deadline=None)
def test_line_visits_cover_correct_lines(event_list, line_size):
    """Every instruction's line appears in order within the visit stream."""
    shift = line_size.bit_length() - 1
    expected_lines = []
    for event in event_list:
        for i in range(event.ninstr):
            line = (event.addr + i * INSTRUCTION_SIZE) >> shift
            if not expected_lines or expected_lines[-1] != line:
                expected_lines.append(line)
    got_lines = []
    for visit in iter_line_visits(event_list, line_size):
        if not got_lines or got_lines[-1] != visit.line:
            got_lines.append(visit.line)
    # Consecutive duplicate collapse on both sides must agree.
    assert got_lines == _collapse(expected_lines)


def _collapse(seq):
    out = []
    for item in seq:
        if not out or out[-1] != item:
            out.append(item)
    return out


@given(events, line_sizes)
@settings(max_examples=200, deadline=None)
def test_line_visits_never_empty_ninstr(event_list, line_size):
    for visit in iter_line_visits(event_list, line_size):
        assert visit.ninstr >= 1
        assert visit.line >= 0


@given(events, line_sizes)
@settings(max_examples=100, deadline=None)
def test_data_accesses_conserved(event_list, line_size):
    expected = sum(len(event.data) for event in event_list)
    visits = list(iter_line_visits(event_list, line_size))
    assert sum(len(v.data) for v in visits) == expected


@given(
    events.filter(lambda evs: all(len(e.data) <= 255 for e in evs)),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.text(max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_trace_io_roundtrip(event_list, seed, name):
    trace = Trace(name, seed, event_list)
    import os
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "t.bin")
        write_trace(trace, path)
        loaded = read_trace(path)
    assert loaded.name == name
    assert loaded.seed == seed
    assert list(loaded.events) == list(event_list)


@given(events, st.integers(min_value=1, max_value=1 << 30))
@settings(max_examples=100, deadline=None)
def test_rebase_preserves_structure(event_list, offset):
    trace = Trace("t", 0, event_list)
    shifted = trace.rebased(offset)
    assert shifted.total_instructions == trace.total_instructions
    for original, moved in zip(trace.events, shifted.events):
        assert moved.addr - original.addr == offset
        assert moved.ninstr == original.ninstr
        assert moved.kind == original.kind
