"""Sweep hot region size/skew for db to balance CMP L2D vs I-share."""
import dataclasses, time
from repro.trace.synth.workloads import DB_PROFILE
from repro.trace.synth.walker import generate_program_trace
from repro.cmp.system import System, SystemConfig
from repro.util.units import KB
from repro.util.rng import derive_seed

def run(profile, n_cores, prefetcher, policy="bypass"):
    total = 140_000 + 500_000 if n_cores == 4 else 300_000 + 1_200_000
    warm = 140_000 if n_cores == 4 else 300_000
    traces = [generate_program_trace(profile, 1337, total, core=c) for c in range(n_cores)]
    cfg = SystemConfig(n_cores=n_cores, prefetcher=prefetcher, l2_policy=policy,
                       warm_instructions=warm)
    return System(cfg, traces).run()

for hot_kb in (128, 192, 256):
    for zipf in (0.9, 1.05):
        p = dataclasses.replace(DB_PROFILE, hot_bytes=hot_kb*KB, hot_zipf=zipf)
        base = run(p, 4, "none")
        disc = run(p, 4, "discontinuity")
        print(f"hot={hot_kb}KB zipf={zipf}: CMP base L2D={100*base.l2d_miss_rate:.3f}% "
              f"L2I={100*base.l2i_miss_rate:.3f}% disc={disc.aggregate_ipc/base.aggregate_ipc:.3f}x")
