"""Maintainer scripts (see README.md).

Packaged only so the benchmark suite can import shared constants such as
``scripts.profile_engine.BENCH_SCALE``; nothing here is public API.
"""
