"""Calibration helper: print key metrics for all workloads."""

import sys

from repro.eval.profiles import SCALES
from repro.eval.runner import run_system
from repro.util.clock import Stopwatch

scale = SCALES[sys.argv[1] if len(sys.argv) > 1 else "default"]
ncores = int(sys.argv[2]) if len(sys.argv) > 2 else 1
wls = ["db", "tpcw", "japp", "web"] + (["mix"] if ncores == 4 else [])
for wl in wls:
    watch = Stopwatch()
    r = run_system(wl, ncores, "none", scale=scale)
    core = r.cores[0]
    l1d_ratio = core.l1d_misses / max(1, core.data_accesses)
    print(f"{wl:5s} IPC={r.aggregate_ipc:6.3f} L1I={100*r.l1i_miss_rate:5.2f}% "
          f"L2I={100*r.l2i_miss_rate:6.3f}% L2D={100*r.l2d_miss_rate:6.3f}% "
          f"L1Dmr={100*l1d_ratio:5.2f}%  ({watch.elapsed():.0f}s)")
