import dataclasses
from repro.trace.synth.workloads import DB_PROFILE
from repro.trace.synth.walker import generate_program_trace
from repro.cmp.system import System, SystemConfig
from repro.timing.params import TimingParams
from repro.util.units import KB

def run(profile, n_cores, prefetcher, timing, policy="bypass"):
    total = 140_000 + 500_000 if n_cores == 4 else 300_000 + 1_200_000
    warm = 140_000 if n_cores == 4 else 300_000
    traces = [generate_program_trace(profile, 1337, total, core=c) for c in range(n_cores)]
    cfg = SystemConfig(n_cores=n_cores, prefetcher=prefetcher, l2_policy=policy,
                       warm_instructions=warm, timing=timing)
    return System(cfg, traces).run()

timing = TimingParams(data_l2_exposed_fraction=0.25, data_memory_exposed_fraction=0.38)
for hot_kb, zipf in ((320, 0.40), (384, 0.45)):
    p = dataclasses.replace(DB_PROFILE, hot_bytes=hot_kb*KB, hot_zipf=zipf)
    s1 = run(p, 1, "none", timing)
    s4 = run(p, 4, "none", timing)
    d1 = run(p, 1, "discontinuity", timing)
    d4 = run(p, 4, "discontinuity", timing)
    n4 = run(p, 4, "discontinuity", timing, policy="normal")
    print(f"hot={hot_kb}K z={zipf}:")
    print(f"  1c L2I={100*s1.l2i_miss_rate:.3f} L2D={100*s1.l2d_miss_rate:.3f} IPC={s1.aggregate_ipc:.3f} disc={d1.aggregate_ipc/s1.aggregate_ipc:.3f}x")
    print(f"  4c L2I={100*s4.l2i_miss_rate:.3f} L2D={100*s4.l2d_miss_rate:.3f} IPC={s4.aggregate_ipc:.3f} disc={d4.aggregate_ipc/s4.aggregate_ipc:.3f}x "
          f"normal={n4.aggregate_ipc/s4.aggregate_ipc:.3f}x pollution={n4.l2d_miss_rate/s4.l2d_miss_rate:.3f}")
