import dataclasses
from repro.trace.synth.workloads import DB_PROFILE
from repro.trace.synth.walker import generate_program_trace
from repro.cmp.system import System, SystemConfig
from repro.util.units import KB

def run(profile, n_cores, prefetcher, policy="bypass"):
    total = 140_000 + 500_000 if n_cores == 4 else 300_000 + 1_200_000
    warm = 140_000 if n_cores == 4 else 300_000
    traces = [generate_program_trace(profile, 1337, total, core=c) for c in range(n_cores)]
    cfg = SystemConfig(n_cores=n_cores, prefetcher=prefetcher, l2_policy=policy,
                       warm_instructions=warm)
    return System(cfg, traces).run()

for hot_kb, zipf, reuse in ((768, 0.80, 0.90), (1024, 0.85, 0.91), (512, 0.75, 0.90)):
    p = dataclasses.replace(DB_PROFILE, hot_bytes=hot_kb*KB, hot_zipf=zipf, p_reuse=reuse)
    s1 = run(p, 1, "none")
    s4 = run(p, 4, "none")
    d4 = run(p, 4, "discontinuity")
    d1 = run(p, 1, "discontinuity")
    print(f"hot={hot_kb}K z={zipf} r={reuse}: "
          f"1c L2I={100*s1.l2i_miss_rate:.3f} L2D={100*s1.l2d_miss_rate:.3f} | "
          f"4c L2I={100*s4.l2i_miss_rate:.3f} L2D={100*s4.l2d_miss_rate:.3f} | "
          f"disc 1c={d1.aggregate_ipc/s1.aggregate_ipc:.3f}x 4c={d4.aggregate_ipc/s4.aggregate_ipc:.3f}x")
