"""Regenerate the ``REPRO_*`` environment table in docs/performance.md.

The table between the marker comments is rendered from the single source
of truth, :data:`repro.envvars.REGISTRY`; lint rule R7 fails whenever the
committed block differs from the rendered one, so this script is the only
sanctioned way to edit it.

Run from the repository root::

    PYTHONPATH=src python scripts/gen_env_docs.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.envvars import render_env_table
from repro.lint.rules import R7_DOCS_PATH, R7_TABLE_BEGIN, R7_TABLE_END


def regenerate(root: Path) -> bool:
    """Rewrite the marked block; returns True when the file changed."""
    docs = root / R7_DOCS_PATH
    text = docs.read_text(encoding="utf-8")
    begin = text.find(R7_TABLE_BEGIN)
    end = text.find(R7_TABLE_END)
    if begin == -1 or end == -1 or end < begin:
        raise SystemExit(
            f"{docs}: marker comments not found; add\n"
            f"  {R7_TABLE_BEGIN}\n  {R7_TABLE_END}\n"
            "around the environment table first"
        )
    block = f"{R7_TABLE_BEGIN}\n{render_env_table()}\n{R7_TABLE_END}"
    updated = text[:begin] + block + text[end + len(R7_TABLE_END) :]
    if updated == text:
        return False
    docs.write_text(updated, encoding="utf-8")
    return True


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    changed = regenerate(root)
    print(
        f"{R7_DOCS_PATH}: {'table regenerated' if changed else 'already in sync'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
