#!/usr/bin/env python3
"""CI mutation check: prove lint rule R6 catches backend drift.

Behaviourally mutates one fingerprinted reference hot path
(``CoreEngine._process_visit``) by inserting a statement into its body,
expects ``python -m repro.lint --rules R6`` to exit non-zero naming the
vectorized counterpart, then restores the file byte-for-byte.  A zero exit
from the mutated tree means the drift detector has gone silent — this
script (and the CI lint job running it) fails in that case.

Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import ast
import pathlib
import subprocess
import sys

TARGET = pathlib.Path("src/repro/core/engine.py")
CLASS_NAME = "CoreEngine"
FUNC_NAME = "_process_visit"
COUNTERPART = "_fast_span"


def mutate(source: str) -> str:
    """Insert a statement at the top of the target method's body."""
    tree = ast.parse(source)
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == CLASS_NAME):
            continue
        for member in node.body:
            if (
                isinstance(member, ast.FunctionDef)
                and member.name == FUNC_NAME
            ):
                lineno = member.body[0].lineno
                lines = source.split("\n")
                anchor = lines[lineno - 1]
                indent = anchor[: len(anchor) - len(anchor.lstrip())]
                lines.insert(lineno - 1, f"{indent}_r6_mutation_probe = 0")
                return "\n".join(lines)
    raise SystemExit(f"{TARGET}: {CLASS_NAME}.{FUNC_NAME} not found")


def main() -> int:
    original = TARGET.read_text(encoding="utf-8")
    TARGET.write_text(mutate(original), encoding="utf-8")
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--rules", "R6", "--no-cache"],
            capture_output=True,
            text=True,
        )
    finally:
        TARGET.write_text(original, encoding="utf-8")
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode == 0:
        print(
            "R6 mutation check FAILED: a behavioural reference-engine edit "
            "went undetected",
            file=sys.stderr,
        )
        return 1
    if COUNTERPART not in proc.stdout:
        print(
            "R6 mutation check FAILED: the violation does not name the "
            f"vectorized counterpart ({COUNTERPART})",
            file=sys.stderr,
        )
        return 1
    print("R6 mutation check OK: drift detected, counterpart named")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
