import dataclasses
from repro.trace.synth.workloads import DB_PROFILE
from repro.trace.synth.walker import generate_program_trace
from repro.cmp.system import System, SystemConfig
from repro.timing.params import TimingParams
from repro.util.units import KB

def run(profile, n_cores, prefetcher, timing, policy="bypass", warm=150_000, measure=500_000):
    total = warm + measure
    traces = [generate_program_trace(profile, 1337, total, core=c) for c in range(n_cores)]
    cfg = SystemConfig(n_cores=n_cores, prefetcher=prefetcher, l2_policy=policy,
                       warm_instructions=warm, timing=timing)
    return System(cfg, traces).run()

timing = TimingParams(data_l2_exposed_fraction=0.25, data_memory_exposed_fraction=0.38)
for ez, cz, nfn in ((0.9, 0.9, 3400), (1.1, 1.0, 3400), (0.9, 0.9, 2600)):
    p = dataclasses.replace(DB_PROFILE, hot_bytes=320*KB, hot_zipf=0.40,
                            entry_zipf=ez, callee_zipf=cz, n_functions=nfn)
    s1 = run(p, 1, "none", timing)
    s4 = run(p, 4, "none", timing)
    d1 = run(p, 1, "discontinuity", timing)
    d4 = run(p, 4, "discontinuity", timing)
    print(f"ez={ez} cz={cz} nfn={nfn}: 1c L1I={100*s1.l1i_miss_rate:.2f} L2I={100*s1.l2i_miss_rate:.3f} L2D={100*s1.l2d_miss_rate:.3f} disc={d1.aggregate_ipc/s1.aggregate_ipc:.3f}x | "
          f"4c L1I={100*s4.l1i_miss_rate:.2f} L2I={100*s4.l2i_miss_rate:.3f} L2D={100*s4.l2d_miss_rate:.3f} disc={d4.aggregate_ipc/s4.aggregate_ipc:.3f}x")
