#!/usr/bin/env python
"""Profile the simulator's hot loop and report per-phase timings.

Runs one fixed-seed configuration (db, discontinuity, bypass — the
configuration the perf benchmarks track) and prints:

- a phase breakdown: synthesize (raw trace generation), lower+compile
  (line-visit lowering into packed columns) and simulate (the engine loop);
- line visits per second of wall-clock for the simulate phase (the engine
  throughput metric that ``benchmarks/test_perf_smoke.py`` records in
  ``BENCH_perf.json``), and
- optionally a cProfile table of the hottest functions (``--profile``).

Usage::

    PYTHONPATH=src python scripts/profile_engine.py
    PYTHONPATH=src python scripts/profile_engine.py --profile --top 25
    PYTHONPATH=src python scripts/profile_engine.py --workload web --cores 4
    PYTHONPATH=src python scripts/profile_engine.py --no-compiled   # raw A/B

``--compiled`` (default) feeds the engine packed compiled traces — the
production path; ``--no-compiled`` forces the raw-trace lazy lowering so
the two engine paths can be A/B'd on identical inputs.  The on-disk trace
store is bypassed either way (every phase is measured live).
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import time

from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, get_traces, run_system
from repro.trace.compiled import compile_traces

#: fixed instruction budget so visits/sec is comparable across runs.
BENCH_SCALE = ExperimentScale(
    name="bench",
    warm_instructions=30_000,
    measure_instructions=180_000,
    cmp_measure_instructions=80_000,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="db")
    parser.add_argument("--cores", type=int, default=1)
    parser.add_argument("--prefetcher", default="discontinuity")
    parser.add_argument("--l2-policy", default="bypass")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--compiled",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="feed the engine packed compiled traces (--no-compiled: raw path)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="cross-check every compiled trace against the live lowering",
    )
    parser.add_argument(
        "--profile", action="store_true", help="print a cProfile table of the run"
    )
    parser.add_argument("--top", type=int, default=20, help="profile rows to print")
    args = parser.parse_args()

    # The script measures each phase itself; route run_system accordingly
    # and keep the on-disk store out of the loop so timings are live.
    os.environ["REPRO_COMPILED_TRACES"] = "1" if args.compiled else "0"
    os.environ["REPRO_TRACE_STORE"] = "0"

    total = (
        BENCH_SCALE.single_total if args.cores == 1 else BENCH_SCALE.cmp_total_per_core
    )
    started = time.perf_counter()
    raw = get_traces(args.workload, args.cores, total, args.seed)
    synth_seconds = time.perf_counter() - started

    compile_seconds = 0.0
    compiled_set = None
    if args.compiled:
        started = time.perf_counter()
        compiled_set = compile_traces(
            raw, 64, workload=args.workload, seed=args.seed, n_instructions=total
        )
        compile_seconds = time.perf_counter() - started

    if args.verify and compiled_set is not None:
        from repro.trace.compiled import visits_equal

        for core, compiled in enumerate(compiled_set):
            equal, mismatch = visits_equal(compiled, raw[core])
            if not equal:
                print(f"VERIFY FAILED: core {core} diverges at visit {mismatch}")
                return 1
        print(f"verify           : {len(compiled_set)} compiled trace(s) exact")

    def simulate():
        return run_system(
            args.workload,
            args.cores,
            args.prefetcher,
            scale=BENCH_SCALE,
            l2_policy=args.l2_policy,
            seed=args.seed,
        )

    # Prime run_system's compiled-trace memo outside the timed region so
    # `simulate` times the engine loop alone on both paths.
    if args.compiled:
        from repro.eval.runner import get_compiled_traces

        get_compiled_traces(args.workload, args.cores, total, args.seed, 64)

    if args.profile:
        profiler = cProfile.Profile()
        started = time.perf_counter()
        result = profiler.runcall(simulate)
        elapsed = time.perf_counter() - started
    else:
        started = time.perf_counter()
        result = simulate()
        elapsed = time.perf_counter() - started

    visits = sum(core.l1i_fetches for core in result.cores)
    path = "compiled (packed columns)" if args.compiled else "raw (lazy lowering)"
    print(
        f"{args.workload}/{args.cores}c/{args.prefetcher}/{args.l2_policy} "
        f"seed={args.seed}  [{path}]"
    )
    print(f"synthesize       : {synth_seconds:.2f}s")
    if args.compiled:
        print(f"lower+compile    : {compile_seconds:.2f}s")
    print(f"simulate         : {elapsed:.2f}s")
    print(f"line visits      : {visits}")
    print(f"visits/sec       : {visits / elapsed:,.0f}")
    print(f"aggregate IPC    : {result.aggregate_ipc:.6f}")

    if args.profile:
        print()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
