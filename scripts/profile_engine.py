#!/usr/bin/env python
"""Profile the simulator's hot loop and report per-phase timings.

Runs one fixed-seed configuration (db, discontinuity, bypass — the
configuration the perf benchmarks track) and prints:

- a phase breakdown: synthesize (raw trace generation), lower+compile
  (line-visit lowering into packed columns) and simulate (the engine loop);
- line visits per second of wall-clock for the simulate phase (the engine
  throughput metric that ``benchmarks/test_perf_smoke.py`` records in
  ``BENCH_perf.json``), and
- optionally a cProfile table of the hottest functions (``--profile``).

Usage::

    PYTHONPATH=src python scripts/profile_engine.py
    PYTHONPATH=src python scripts/profile_engine.py --profile --top 25
    PYTHONPATH=src python scripts/profile_engine.py --workload web --cores 4
    PYTHONPATH=src python scripts/profile_engine.py --backend all
    PYTHONPATH=src python scripts/profile_engine.py --verify
    PYTHONPATH=src python scripts/profile_engine.py --no-compiled   # raw A/B

``--compiled`` (default) feeds the engine packed compiled traces — the
production path; ``--no-compiled`` forces the raw-trace lazy lowering so
the two engine paths can be A/B'd on identical inputs.  The on-disk trace
store is bypassed either way (every phase is measured live).

``--backend`` selects the engine backend to time: ``reference``,
``vectorized``, ``jit``, or ``all`` to time every backend and print the
speedups.  The jit backend's one-time kernel compile runs (and is
reported) outside the timed region — visits/sec excludes it.

``--verify`` proves backend equivalence the hard way: it steps a
``reference`` system and a system on the backend under test through the
*same* trace in lockstep, comparing the stepping core's clock and full
:class:`~repro.core.metrics.CoreStats` after **every visit**, and prints
the first divergent visit index and field name if the backends ever
disagree.  (It also cross-checks every compiled trace against the live
lowering, as before.)  Exit status 1 on any divergence.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import time

from repro.envvars import REPRO_COMPILED_TRACES, REPRO_TRACE_STORE
from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, get_traces, run_system
from repro.trace.compiled import compile_traces

#: fixed instruction budget so visits/sec is comparable across runs.
BENCH_SCALE = ExperimentScale(
    name="bench",
    warm_instructions=30_000,
    measure_instructions=180_000,
    cmp_measure_instructions=80_000,
)


def _diff_field(ref_engine, vec_engine):
    """Name of the first field where the two engines disagree, or None.

    Floats are compared by ``repr`` so any bit-level divergence registers
    (``==`` would hide a signed zero).  Breakdown/prefetch sub-fields are
    reported dotted, e.g. ``l1i_breakdown.COLD``.
    """
    from repro.eval.diskcache import _core_to_dict

    if repr(ref_engine.cycle) != repr(vec_engine.cycle):
        return "cycle"
    ref_data = _core_to_dict(ref_engine.stats)
    vec_data = _core_to_dict(vec_engine.stats)
    for key, ref_value in ref_data.items():
        vec_value = vec_data[key]
        if isinstance(ref_value, dict):
            for sub in ref_value:
                if repr(ref_value[sub]) != repr(vec_value.get(sub)):
                    return f"{key}.{sub}"
        elif repr(ref_value) != repr(vec_value):
            return key
    return None


def _verify_backends(args, traces, other: str) -> int:
    """Lockstep per-visit reference-vs-*other* cross-check.

    Mirrors ``System.run``'s smallest-clock interleaving on the reference
    system and drives the *other* backend's system with the *same* core
    choice, so both process the identical global visit sequence.  Returns
    0 when every visit matches, 1 (after printing the first divergence)
    otherwise.
    """
    from repro.cmp.system import System, SystemConfig

    def build(backend: str) -> System:
        config = SystemConfig(
            n_cores=args.cores,
            prefetcher=args.prefetcher,
            l2_policy=args.l2_policy,
            warm_instructions=BENCH_SCALE.warm_instructions
            if args.cores == 1
            else BENCH_SCALE.cmp_warm_instructions,
            engine_backend=backend,
        )
        return System(config, traces)

    ref_sys, vec_sys = build("reference"), build(other)
    active_ref = list(ref_sys.engines)
    active_vec = list(vec_sys.engines)
    visit = 0
    while active_ref:
        index = 0
        for candidate in range(1, len(active_ref)):
            if active_ref[candidate].cycle < active_ref[index].cycle:
                index = candidate
        ref_engine, vec_engine = active_ref[index], active_vec[index]
        ref_alive, vec_alive = ref_engine.step(), vec_engine.step()
        core = ref_engine.config.core_id
        if ref_alive != vec_alive:
            print(
                f"VERIFY FAILED: backends diverge at visit {visit} "
                f"(core {core}, field trace-exhaustion)"
            )
            return 1
        field = _diff_field(ref_engine, vec_engine)
        if field is not None:
            print(
                f"VERIFY FAILED: backends diverge at visit {visit} "
                f"(core {core}, field {field})"
            )
            return 1
        if not ref_alive:
            del active_ref[index], active_vec[index]
        visit += 1
    print(
        f"verify           : reference/{other} bit-identical over {visit} visits"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="db")
    parser.add_argument("--cores", type=int, default=1)
    parser.add_argument("--prefetcher", default="discontinuity")
    parser.add_argument("--l2-policy", default="bypass")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--backend",
        default="reference",
        choices=("reference", "vectorized", "jit", "all"),
        help="engine backend to time ('all' times every backend and prints "
        "the speedups)",
    )
    parser.add_argument(
        "--compiled",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="feed the engine packed compiled traces (--no-compiled: raw path)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="per-visit lockstep cross-check of the selected backend(s) "
        "against reference (prints the first divergent visit index and "
        "field), plus the compiled-trace-vs-live-lowering check",
    )
    parser.add_argument(
        "--profile", action="store_true", help="print a cProfile table of the run"
    )
    parser.add_argument("--top", type=int, default=20, help="profile rows to print")
    args = parser.parse_args()

    # The script measures each phase itself; route run_system accordingly
    # and keep the on-disk store out of the loop so timings are live.
    os.environ[REPRO_COMPILED_TRACES] = "1" if args.compiled else "0"
    os.environ[REPRO_TRACE_STORE] = "0"

    total = (
        BENCH_SCALE.single_total if args.cores == 1 else BENCH_SCALE.cmp_total_per_core
    )
    started = time.perf_counter()
    raw = get_traces(args.workload, args.cores, total, args.seed)
    synth_seconds = time.perf_counter() - started

    compile_seconds = 0.0
    compiled_set = None
    if args.compiled:
        started = time.perf_counter()
        compiled_set = compile_traces(
            raw, 64, workload=args.workload, seed=args.seed, n_instructions=total
        )
        compile_seconds = time.perf_counter() - started

    if args.verify and compiled_set is not None:
        from repro.trace.compiled import visits_equal

        for core, compiled in enumerate(compiled_set):
            equal, mismatch = visits_equal(compiled, raw[core])
            if not equal:
                print(f"VERIFY FAILED: core {core} diverges at visit {mismatch}")
                return 1
        print(f"verify           : {len(compiled_set)} compiled trace(s) exact")

    verify_against = (
        ("vectorized", "jit")
        if args.backend == "all"
        else (args.backend if args.backend != "reference" else "vectorized",)
    )
    if args.verify:
        for other in verify_against:
            status = _verify_backends(
                args, compiled_set if compiled_set is not None else raw, other
            )
            if status:
                return status

    def simulate(backend: str):
        return run_system(
            args.workload,
            args.cores,
            args.prefetcher,
            scale=BENCH_SCALE,
            l2_policy=args.l2_policy,
            seed=args.seed,
            engine_backend=backend,
        )

    # Prime run_system's compiled-trace memo outside the timed region so
    # `simulate` times the engine loop alone on both paths.
    if args.compiled:
        from repro.eval.runner import get_compiled_traces

        get_compiled_traces(args.workload, args.cores, total, args.seed, 64)

    backends = (
        ("reference", "vectorized", "jit")
        if args.backend == "all"
        else (args.backend,)
    )
    path = "compiled (packed columns)" if args.compiled else "raw (lazy lowering)"
    print(
        f"{args.workload}/{args.cores}c/{args.prefetcher}/{args.l2_policy} "
        f"seed={args.seed}  [{path}]"
    )
    print(f"synthesize       : {synth_seconds:.2f}s")
    if args.compiled:
        print(f"lower+compile    : {compile_seconds:.2f}s")
    if "jit" in backends:
        # Build (or load from cache) the jit kernel outside the timed
        # region: the one-time compile cost is reported separately.
        from repro.core import jitted

        if jitted.jit_available():
            print(f"jit compile      : {jitted.kernel_compile_seconds():.2f}s")

    rates = {}
    profilers = {}
    for backend in backends:
        if args.profile:
            profilers[backend] = cProfile.Profile()
            started = time.perf_counter()
            result = profilers[backend].runcall(simulate, backend)
            elapsed = time.perf_counter() - started
        else:
            started = time.perf_counter()
            result = simulate(backend)
            elapsed = time.perf_counter() - started
        visits = sum(core.l1i_fetches for core in result.cores)
        rates[backend] = visits / elapsed
        print(f"[{backend}]")
        print(f"simulate         : {elapsed:.2f}s")
        print(f"line visits      : {visits}")
        print(f"visits/sec       : {rates[backend]:,.0f}")
        print(f"aggregate IPC    : {result.aggregate_ipc:.6f}")

    if len(rates) > 1 and "reference" in rates:
        for backend in backends:
            if backend != "reference":
                print(
                    f"speedup [{backend:<10}]: "
                    f"{rates[backend] / rates['reference']:.2f}x"
                )

    for backend, profiler in profilers.items():
        print(f"\n--- cProfile [{backend}] ---")
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
