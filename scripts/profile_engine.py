#!/usr/bin/env python
"""Profile the simulator's hot loop and report visits/second.

Runs one fixed-seed configuration (db, discontinuity, bypass — the
configuration the perf benchmarks track) and prints:

- line visits per second of wall-clock (the engine throughput metric that
  ``benchmarks/test_perf_smoke.py`` records in ``BENCH_perf.json``), and
- optionally a cProfile table of the hottest functions (``--profile``).

Usage::

    PYTHONPATH=src python scripts/profile_engine.py
    PYTHONPATH=src python scripts/profile_engine.py --profile --top 25
    PYTHONPATH=src python scripts/profile_engine.py --workload web --cores 4

Trace generation is excluded from the timed region (it is measured and
reported separately), so the visits/sec number isolates the engine loop
the hot-path optimizations target.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro.eval.profiles import ExperimentScale
from repro.eval.runner import DEFAULT_SEED, get_traces, run_system

#: fixed instruction budget so visits/sec is comparable across runs.
BENCH_SCALE = ExperimentScale(
    name="bench",
    warm_instructions=30_000,
    measure_instructions=180_000,
    cmp_measure_instructions=80_000,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="db")
    parser.add_argument("--cores", type=int, default=1)
    parser.add_argument("--prefetcher", default="discontinuity")
    parser.add_argument("--l2-policy", default="bypass")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--profile", action="store_true", help="print a cProfile table of the run"
    )
    parser.add_argument("--top", type=int, default=20, help="profile rows to print")
    args = parser.parse_args()

    total = (
        BENCH_SCALE.single_total if args.cores == 1 else BENCH_SCALE.cmp_total_per_core
    )
    started = time.perf_counter()
    get_traces(args.workload, args.cores, total, args.seed)
    trace_seconds = time.perf_counter() - started

    def simulate():
        return run_system(
            args.workload,
            args.cores,
            args.prefetcher,
            scale=BENCH_SCALE,
            l2_policy=args.l2_policy,
            seed=args.seed,
        )

    if args.profile:
        profiler = cProfile.Profile()
        started = time.perf_counter()
        result = profiler.runcall(simulate)
        elapsed = time.perf_counter() - started
    else:
        started = time.perf_counter()
        result = simulate()
        elapsed = time.perf_counter() - started

    visits = sum(core.l1i_fetches for core in result.cores)
    print(
        f"{args.workload}/{args.cores}c/{args.prefetcher}/{args.l2_policy} "
        f"seed={args.seed}"
    )
    print(f"trace generation : {trace_seconds:.2f}s (excluded from timing)")
    print(f"simulation       : {elapsed:.2f}s")
    print(f"line visits      : {visits}")
    print(f"visits/sec       : {visits / elapsed:,.0f}")
    print(f"aggregate IPC    : {result.aggregate_ipc:.6f}")

    if args.profile:
        print()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
