"""Quick prefetcher comparison for calibration."""

import sys

from repro.eval.profiles import SCALES
from repro.eval.runner import run_system
from repro.util.clock import Stopwatch

scale = SCALES[sys.argv[1] if len(sys.argv) > 1 else "default"]
ncores = int(sys.argv[2]) if len(sys.argv) > 2 else 1
policy = sys.argv[3] if len(sys.argv) > 3 else "normal"
wl = sys.argv[4] if len(sys.argv) > 4 else "db"

base = run_system(wl, ncores, "none", scale=scale, l2_policy=policy)
print(f"{wl} baseline: IPC={base.aggregate_ipc:.3f} L1I={100*base.l1i_miss_rate:.2f}% "
      f"L2I={100*base.l2i_miss_rate:.3f}% L2D={100*base.l2d_miss_rate:.3f}%")
for pf in ["next-line-on-miss", "next-line-tagged", "next-4-line", "discontinuity", "discontinuity-2nl"]:
    watch = Stopwatch()
    r = run_system(wl, ncores, pf, scale=scale, l2_policy=policy)
    print(f"{pf:18s} IPC={r.aggregate_ipc:6.3f} ({r.aggregate_ipc/base.aggregate_ipc:5.3f}x) "
          f"L1I={r.l1i_miss_rate/base.l1i_miss_rate:5.3f} L2I={r.l2i_miss_rate/max(1e-12,base.l2i_miss_rate):5.3f} "
          f"L2D={r.l2d_miss_rate/max(1e-12,base.l2d_miss_rate):5.3f} "
          f"acc={100*r.prefetch_accuracy:4.1f}% cov={100*r.l1i_coverage:4.1f}% ({watch.elapsed():.0f}s)")
