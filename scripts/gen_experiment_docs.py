"""Regenerate ``docs/experiments.md`` from the experiment catalog.

The table is derived straight from the ``Experiment`` declarations in
``repro.eval.catalog`` — run this after adding or editing one::

    PYTHONPATH=src python scripts/gen_experiment_docs.py

``--check`` exits non-zero if the committed file is stale instead of
rewriting it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.eval.catalog import CATALOG
from repro.eval.profiles import get_scale

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "docs" / "experiments.md"

HEADER = """\
# Experiment catalog

One row per declared `Experiment` in `repro.eval.catalog` — every figure,
ablation and comparison the reproduction runs.  Run any of them with::

    PYTHONPATH=src python -m repro.eval.cli <name> --scale smoke

`repro-experiment list` prints the same names; `describe <name>` shows the
full declaration and `check <name>` a dry-run cost estimate.  Spec counts
are the deduplicated run set at smoke scale (shared grids — Figures 5/6/7
— overlap, and the union simulates once).  "Bench scale" is the smallest
scale at which the declared paper expectations are asserted; below it the
benchmark suite and CLI report `skip`, not `fail`.

This file is generated — edit the declarations, then run
`PYTHONPATH=src python scripts/gen_experiment_docs.py`.
"""


def render() -> str:
    scale = get_scale("smoke")
    lines = [HEADER]
    lines.append(
        "| Experiment | Paper | Title | Runs (smoke) | Panels | "
        "Expectations | Bench scale |"
    )
    lines.append("|---|---|---|---|---|---|---|")
    for name, experiment in CATALOG.items():
        lines.append(
            f"| `{name}` | {experiment.paper} | {experiment.title} "
            f"| {len(experiment.specs(scale=scale))} "
            f"| {len(experiment.panels)} "
            f"| {len(experiment.expectations)} "
            f"| {experiment.bench_scale} |"
        )
    lines.append("")
    lines.append("## Declared expectations")
    lines.append("")
    lines.append(
        "The paper-derived checks each run is verdicted against "
        "(`pass`/`fail`/`skip`); `--strict` or `REPRO_STRICT_EXPECTATIONS=1` "
        "turns failures into a non-zero exit (see "
        "[performance.md](performance.md))."
    )
    for name, experiment in CATALOG.items():
        lines.append("")
        lines.append(f"### `{name}` — {experiment.title}")
        lines.append("")
        for expectation in experiment.expectations:
            min_scale = expectation.min_scale or experiment.bench_scale
            lines.append(
                f"- **{expectation.kind}** on `{expectation.panel}`: "
                f"{expectation.describe()} *(from scale `{min_scale}`)*"
            )
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if docs/experiments.md is stale (write nothing)",
    )
    args = parser.parse_args(argv)
    document = render()
    if args.check:
        current = OUTPUT_PATH.read_text() if OUTPUT_PATH.is_file() else ""
        if current != document:
            print(
                f"{OUTPUT_PATH.relative_to(REPO_ROOT)} is stale; regenerate with "
                "PYTHONPATH=src python scripts/gen_experiment_docs.py",
                file=sys.stderr,
            )
            return 1
        print(f"{OUTPUT_PATH.relative_to(REPO_ROOT)} is current")
        return 0
    OUTPUT_PATH.write_text(document)
    print(f"wrote {OUTPUT_PATH.relative_to(REPO_ROOT)} ({len(CATALOG)} experiments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
