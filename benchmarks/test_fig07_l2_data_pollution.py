"""Figure 7 — L2 data-miss pollution from instruction prefetching."""

from benchmarks.conftest import at_least_default, run_figure
from repro.eval import fig07


def test_fig07_l2_data_pollution(benchmark, scale):
    panel_single, panel_cmp = run_figure(benchmark, fig07.run, at_least_default(scale))

    # The aggressive schemes inflate the L2 data miss rate (paper: up to
    # ~1.35X on the CMP); the gentle next-line schemes inflate it less.
    for workload in panel_cmp.col_labels:
        next4 = panel_cmp.value("Next-4-lines (tagged)", workload)
        disc = panel_cmp.value("Discontinuity", workload)
        on_miss = panel_cmp.value("Next-line (on miss)", workload)
        assert disc > 1.01, f"{workload}: no pollution visible ({disc:.3f})"
        assert next4 > 1.01
        assert disc >= on_miss - 0.05

    # Single core shows the effect too, if less strongly.
    assert any(
        panel_single.value("Discontinuity", w) > 1.005 for w in panel_single.col_labels
    )
