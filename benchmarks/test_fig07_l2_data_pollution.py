"""Figure 7 — L2 data-miss pollution from instruction prefetching."""

from benchmarks.conftest import run_catalog


def test_fig07_l2_data_pollution(benchmark, scale):
    run_catalog(benchmark, "fig07", scale)
