"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's figures and prints the same
rows/series the figure plots.  Scale is ``smoke`` by default so the whole
suite completes in minutes; set ``REPRO_PROFILE=default`` (or ``full``) to
reproduce the EXPERIMENTS.md numbers.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.eval.profiles import get_scale


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Keep benchmark results out of the repo's ``.repro-cache/``.

    Session-scoped (unlike the per-test fixture in ``tests/conftest.py``)
    so figure benches within one run still share disk-cached results.
    Respects an explicit ``REPRO_CACHE_DIR`` override.
    """
    placed = []
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
        placed.append("REPRO_CACHE_DIR")
    if "REPRO_TRACE_DIR" not in os.environ:
        os.environ["REPRO_TRACE_DIR"] = str(tmp_path_factory.mktemp("repro-traces"))
        placed.append("REPRO_TRACE_DIR")
    yield
    for name in placed:
        os.environ.pop(name, None)


@pytest.fixture(scope="session")
def scale():
    """Experiment scale: $REPRO_PROFILE if set, else smoke (CI speed)."""
    name = os.environ.get("REPRO_PROFILE", "smoke")
    return get_scale(name)


def at_least_default(scale):
    """Promote *scale* to ``default`` if it is smaller.

    Capacity-regime experiments (Figure 2's L2-size sweep, the pollution
    deltas) are compulsory-miss-dominated at ``smoke`` scale: the measured
    window is too short for a 1-4MB L2 to fill, so capacity has no visible
    effect.  Benches asserting capacity shapes run at ``default`` minimum.
    """
    if scale.measure_instructions < get_scale("default").measure_instructions:
        return get_scale("default")
    return scale


def run_figure(benchmark, driver, scale):
    """Time one figure driver (single round) and print its panels."""
    panels = benchmark.pedantic(lambda: driver(scale=scale), rounds=1, iterations=1)
    for panel in panels:
        print()
        print(panel.format_table())
    return panels
