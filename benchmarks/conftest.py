"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's figures and asserts the
expectation bands its catalog declaration carries — the qualitative claims
live next to the experiment definition in ``repro.eval.catalog``, not in
the bench bodies.  Scale is ``smoke`` by default so the whole suite
completes in minutes; set ``REPRO_PROFILE=default`` (or ``full``) to
reproduce the EXPERIMENTS.md numbers.  Experiments declared with
``bench_scale="default"`` (capacity-regime shapes) are promoted
automatically.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.envvars import REPRO_CACHE_DIR, REPRO_PROFILE, REPRO_TRACE_DIR
from repro.eval.profiles import get_scale
from repro.eval.registry import get_experiment, run_experiment_outcome


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Keep benchmark results out of the repo's ``.repro-cache/``.

    Session-scoped (unlike the per-test fixture in ``tests/conftest.py``)
    so figure benches within one run still share disk-cached results.
    Respects an explicit ``REPRO_CACHE_DIR`` override.
    """
    placed = []
    if REPRO_CACHE_DIR not in os.environ:
        os.environ[REPRO_CACHE_DIR] = str(tmp_path_factory.mktemp("repro-cache"))
        placed.append(REPRO_CACHE_DIR)
    if REPRO_TRACE_DIR not in os.environ:
        os.environ[REPRO_TRACE_DIR] = str(tmp_path_factory.mktemp("repro-traces"))
        placed.append(REPRO_TRACE_DIR)
    yield
    for name in placed:
        os.environ.pop(name, None)


@pytest.fixture(scope="session")
def scale():
    """Experiment scale: $REPRO_PROFILE if set, else smoke (CI speed)."""
    name = os.environ.get(REPRO_PROFILE, "smoke")
    return get_scale(name)


def at_least_default(scale):
    """Promote *scale* to ``default`` if it is smaller.

    Capacity-regime experiments (Figure 2's L2-size sweep, the pollution
    deltas) are compulsory-miss-dominated at ``smoke`` scale: the measured
    window is too short for a 1-4MB L2 to fill, so capacity has no visible
    effect.  Experiments declaring ``bench_scale="default"`` run at
    ``default`` minimum.
    """
    if scale.measure_instructions < get_scale("default").measure_instructions:
        return get_scale("default")
    return scale


def run_catalog(benchmark, name, scale):
    """Time one catalog experiment and assert its declared expectations.

    Promotes the scale to the experiment's declared ``bench_scale`` when
    needed, prints every panel plus the verdict lines, and fails the bench
    if any expectation verdict fails — the bands themselves live on the
    declaration in ``repro.eval.catalog``.
    """
    experiment = get_experiment(name)
    if experiment.bench_scale == "default":
        scale = at_least_default(scale)
    outcome = benchmark.pedantic(
        lambda: run_experiment_outcome(name, scale=scale), rounds=1, iterations=1
    )
    for panel in outcome.panels:
        print()
        print(panel.format_table())
    print()
    for verdict in outcome.verdicts:
        print(verdict.format())
    evaluated = [v for v in outcome.verdicts if v.status != "skip"]
    assert evaluated, f"{name}: every expectation was skipped at scale {scale.name!r}"
    assert outcome.passed, (
        f"{name}: {len(outcome.failed_verdicts)} expectation verdict(s) failed:\n"
        + "\n".join(verdict.format() for verdict in outcome.failed_verdicts)
    )
    return outcome
