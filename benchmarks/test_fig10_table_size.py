"""Figure 10 — miss coverage vs. discontinuity-table size."""

from benchmarks.conftest import run_figure
from repro.eval import fig10


def test_fig10_table_size(benchmark, scale):
    panel_l1, panel_l2 = run_figure(benchmark, fig10.run, scale)

    for panel in (panel_l1, panel_l2):
        for workload in panel.col_labels:
            full = panel.value("8192-entries", workload)
            quarter = panel.value("2048-entries", workload)
            small = panel.value("256-entries", workload)
            seq = panel.value("Next-4lines (tagged)", workload)
            # Paper: a 4x smaller table loses minimal coverage.
            assert quarter > full - 8.0, f"{workload}: {full:.1f} -> {quarter:.1f}"
            # Larger tables never cover (much) less.
            assert full >= small - 3.0
            # Every table size beats the next-4-line sequential prefetcher.
            assert small > seq, f"{workload}: 256 entries {small:.1f} <= seq {seq:.1f}"
