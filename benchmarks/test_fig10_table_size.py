"""Figure 10 — miss coverage vs. discontinuity-table size."""

from benchmarks.conftest import run_catalog


def test_fig10_table_size(benchmark, scale):
    run_catalog(benchmark, "fig10", scale)
