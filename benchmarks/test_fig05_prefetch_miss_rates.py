"""Figure 5 — residual instruction miss rates under the HW prefetchers."""

from benchmarks.conftest import run_figure
from repro.eval import fig05


def test_fig05_prefetch_miss_rates(benchmark, scale):
    panel_l1, panel_l2_single, panel_l2_cmp = run_figure(benchmark, fig05.run, scale)

    for panel in (panel_l1, panel_l2_single, panel_l2_cmp):
        for workload in panel.col_labels:
            on_miss = panel.value("Next-line (on miss)", workload)
            tagged = panel.value("Next-line (tagged)", workload)
            next4 = panel.value("Next-4-lines (tagged)", workload)
            disc = panel.value("Discontinuity", workload)
            # Aggressiveness ordering (lower residual = better).
            assert on_miss > tagged > next4 >= disc * 0.85
            # Everything removes misses.
            assert on_miss < 0.9

    # The discontinuity prefetcher eliminates the vast majority of L1I
    # misses (paper: residual 10-16%; loose band at reduced scale).
    for workload in panel_l1.col_labels:
        assert panel_l1.value("Discontinuity", workload) < 0.30
