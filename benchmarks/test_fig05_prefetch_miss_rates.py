"""Figure 5 — residual instruction miss rates under the HW prefetchers."""

from benchmarks.conftest import run_catalog


def test_fig05_prefetch_miss_rates(benchmark, scale):
    run_catalog(benchmark, "fig05", scale)
