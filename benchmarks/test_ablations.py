"""Ablation benchmarks for the design choices the paper calls out.

Each bench runs one catalog declaration; the qualitative claims it used
to assert inline now live as ``Expectation`` objects on the declaration
in ``repro.eval.catalog.ablations``.
"""

from benchmarks.conftest import run_catalog


def test_ablation_filtering(benchmark, scale):
    """§4.1: the queue filters cut wasted tag probes at negligible cost."""
    run_catalog(benchmark, "ablation-filtering", scale)


def test_ablation_eviction_counter(benchmark, scale):
    """§4: the 2-bit counter protects small tables from thrash."""
    run_catalog(benchmark, "ablation-eviction-counter", scale)


def test_ablation_prefetch_ahead(benchmark, scale):
    """§4: 4 lines balances timeliness against accuracy."""
    run_catalog(benchmark, "ablation-prefetch-ahead", scale)


def test_ablation_probe_ahead(benchmark, scale):
    """§4: probe-ahead launches discontinuity prefetches early enough."""
    run_catalog(benchmark, "ablation-probe-ahead", scale)


def test_ablation_queue_discipline(benchmark, scale):
    """§4.1: LIFO de-emphasizes stale prefetches."""
    run_catalog(benchmark, "ablation-queue-discipline", scale)


def test_ablation_table_design(benchmark, scale):
    """§4: the single-target table matches multi-target at half the storage."""
    run_catalog(benchmark, "ablation-table-design", scale)


def test_ablation_useless_hint(benchmark, scale):
    """§2.4: the used-bit filter trades a little coverage for accuracy."""
    run_catalog(benchmark, "ablation-useless-hint", scale)


def test_ablation_inclusion(benchmark, scale):
    """Substrate sensitivity: the headline result survives L2 inclusion."""
    run_catalog(benchmark, "ablation-inclusion", scale)


def test_ablation_replacement(benchmark, scale):
    """Substrate sensitivity: the headline result is replacement-agnostic."""
    run_catalog(benchmark, "ablation-replacement", scale)
