"""Ablation benchmarks for the design choices the paper calls out."""

import pytest

from benchmarks.conftest import run_figure
from repro.eval import ablations


def test_ablation_filtering(benchmark, scale):
    """§4.1: the queue filters cut wasted tag probes at negligible cost."""
    speedup_panel, probe_panel = run_figure(benchmark, ablations.run_filtering, scale)
    for workload in speedup_panel.col_labels:
        filtered = speedup_panel.value("Filtering on", workload)
        unfiltered = speedup_panel.value("Filtering off", workload)
        # Paper: "performance implications of the filtering mechanism were
        # observed to be extremely minor" — but never harmful.
        assert filtered > unfiltered - 0.05
        # Filtering reduces the fraction of probes finding the line
        # already resident (wasted tag bandwidth).
        assert probe_panel.value("Filtering on", workload) <= probe_panel.value(
            "Filtering off", workload
        ) + 2.0


def test_ablation_eviction_counter(benchmark, scale):
    """§4: the 2-bit counter protects small tables from thrash."""
    (panel,) = run_figure(benchmark, ablations.run_eviction_counter, scale)
    better = 0
    for workload in panel.col_labels:
        if panel.value("2-bit counter", workload) >= panel.value(
            "always replace", workload
        ) - 1.0:
            better += 1
    # The counter helps (or at least never materially hurts) everywhere.
    assert better == len(panel.col_labels)


def test_ablation_prefetch_ahead(benchmark, scale):
    """§4: 4 lines balances timeliness against accuracy."""
    speedup_panel, accuracy_panel = run_figure(
        benchmark, ablations.run_prefetch_ahead, scale
    )
    for workload in speedup_panel.col_labels:
        # Accuracy falls monotonically-ish with distance.
        assert accuracy_panel.value("ahead=1", workload) > accuracy_panel.value(
            "ahead=8", workload
        )
        # Timeliness: ahead=4 beats ahead=1 on performance.
        assert speedup_panel.value("ahead=4", workload) > speedup_panel.value(
            "ahead=1", workload
        )


def test_ablation_probe_ahead(benchmark, scale):
    """§4: probe-ahead launches discontinuity prefetches early enough."""
    speedup_panel, late_panel = run_figure(benchmark, ablations.run_probe_ahead, scale)
    for workload in late_panel.col_labels:
        # Probing only the current line makes more useful prefetches late.
        assert late_panel.value("Probe current line", workload) >= late_panel.value(
            "Probe-ahead (paper)", workload
        ) - 1.0
        # And never performs better.
        assert speedup_panel.value("Probe-ahead (paper)", workload) >= speedup_panel.value(
            "Probe current line", workload
        ) - 0.03


def test_ablation_queue_discipline(benchmark, scale):
    """§4.1: LIFO de-emphasizes stale prefetches."""
    (panel,) = run_figure(benchmark, ablations.run_queue_discipline, scale)
    for workload in panel.col_labels:
        lifo = panel.value("LIFO (paper)", workload)
        fifo = panel.value("FIFO", workload)
        assert lifo > fifo - 0.05  # LIFO is never materially worse


def test_ablation_table_design(benchmark, scale):
    """§4: the single-target table matches multi-target at half the storage."""
    coverage_panel, speedup_panel = run_figure(
        benchmark, ablations.run_single_vs_multi_target, scale
    )
    for workload in coverage_panel.col_labels:
        single = coverage_panel.value("Discontinuity 4096x1", workload)
        markov_equal = coverage_panel.value("Markov 2048x2", workload)
        markov_double = coverage_panel.value("Markov 4096x2 (2x storage)", workload)
        # At equal storage, the single-target design is at least as good.
        assert single > markov_equal - 3.0
        # Even doubling the Markov storage buys little over single-target.
        assert markov_double < single + 6.0


def test_ablation_useless_hint(benchmark, scale):
    """§2.4: the used-bit filter trades a little coverage for accuracy."""
    accuracy_panel, speedup_panel = run_figure(
        benchmark, ablations.run_useless_hint_filter, scale
    )
    for workload in accuracy_panel.col_labels:
        with_filter = accuracy_panel.value("Used-bit filter (§2.4)", workload)
        without = accuracy_panel.value("No re-prefetch filter", workload)
        # Dropping known-useless re-prefetches never hurts accuracy.
        assert with_filter >= without - 1.0
        # And performance stays competitive.
        assert speedup_panel.value("Used-bit filter (§2.4)", workload) > speedup_panel.value(
            "No re-prefetch filter", workload
        ) - 0.05


def test_ablation_inclusion(benchmark, scale):
    """Substrate sensitivity: the headline result survives L2 inclusion."""
    speedup_panel, l1i_panel = run_figure(benchmark, ablations.run_inclusion, scale)
    for workload in speedup_panel.col_labels:
        non_inclusive = speedup_panel.value("Non-inclusive (default)", workload)
        inclusive = speedup_panel.value("Inclusive", workload)
        # The discontinuity prefetcher pays off under either policy...
        assert non_inclusive > 1.05 and inclusive > 1.05
        # ...and the policy choice moves the result only modestly.
        assert abs(inclusive - non_inclusive) < 0.15
        # Back-invalidation can only add baseline L1I misses.
        assert l1i_panel.value("Inclusive", workload) >= l1i_panel.value(
            "Non-inclusive (default)", workload
        ) - 0.01


def test_ablation_replacement(benchmark, scale):
    """Substrate sensitivity: the headline result is replacement-agnostic."""
    l1i_panel, speedup_panel = run_figure(benchmark, ablations.run_replacement, scale)
    for workload in speedup_panel.col_labels:
        values = [speedup_panel.value(p, workload) for p in ("LRU", "PLRU", "FIFO", "RANDOM")]
        # The discontinuity prefetcher pays off under every policy...
        assert all(value > 1.05 for value in values)
        # ...with only modest spread between policies.
        assert max(values) - min(values) < 0.2
        # PLRU tracks LRU closely on baseline miss rate.
        assert l1i_panel.value("PLRU", workload) == pytest.approx(
            l1i_panel.value("LRU", workload), rel=0.15
        )
