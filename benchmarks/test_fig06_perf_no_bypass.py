"""Figure 6 — prefetcher speedups under the normal (polluting) L2 install."""

from benchmarks.conftest import run_catalog


def test_fig06_perf_no_bypass(benchmark, scale):
    run_catalog(benchmark, "fig06", scale)
