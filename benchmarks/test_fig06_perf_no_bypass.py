"""Figure 6 — prefetcher speedups under the normal (polluting) L2 install."""

from benchmarks.conftest import at_least_default, run_figure
from repro.eval import fig06


def test_fig06_perf_no_bypass(benchmark, scale):
    panel_single, panel_cmp = run_figure(benchmark, fig06.run, at_least_default(scale))

    for panel in (panel_single, panel_cmp):
        for workload in panel.col_labels:
            # All schemes improve on no-prefetch...
            for scheme in panel.row_labels:
                assert panel.value(scheme, workload) > 0.97
            # ...and aggressiveness ordering holds for the main pair.
            assert panel.value("Discontinuity", workload) >= panel.value(
                "Next-line (on miss)", workload
            )

    # Gains are real but (per the paper) noticeably below the Figure 4
    # potential, because of the L2 pollution Figure 7 shows.
    best = max(panel_cmp.value("Discontinuity", w) for w in panel_cmp.col_labels)
    assert 1.05 < best < 1.8
