"""Figure 8 — prefetcher speedups with L2-bypass installation (§7)."""

from benchmarks.conftest import at_least_default, run_catalog
from repro.eval.registry import run_experiment_outcome


def test_fig08_perf_bypass(benchmark, scale):
    outcome = run_catalog(benchmark, "fig08", scale)
    panel_cmp = outcome.panel("fig08ii")

    # Bypass recovers performance the normal install loses to pollution
    # for the aggressive schemes (compare against Figure 6's runs, which
    # are already cached) — a cross-experiment check the per-experiment
    # declarations cannot express.
    fig06 = run_experiment_outcome("fig06", scale=at_least_default(scale))
    normal_cmp = fig06.panel("fig06ii")
    recovered = 0
    for workload in panel_cmp.col_labels:
        if panel_cmp.value("Discontinuity", workload) >= normal_cmp.value(
            "Discontinuity", workload
        ) - 0.01:
            recovered += 1
    assert recovered >= len(panel_cmp.col_labels) - 1
