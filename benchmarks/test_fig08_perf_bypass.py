"""Figure 8 — prefetcher speedups with L2-bypass installation (§7)."""

from benchmarks.conftest import at_least_default, run_figure
from repro.eval import fig06, fig08


def test_fig08_perf_bypass(benchmark, scale):
    panel_single, panel_cmp = run_figure(benchmark, fig08.run, at_least_default(scale))

    for panel in (panel_single, panel_cmp):
        for workload in panel.col_labels:
            for scheme in panel.row_labels:
                assert panel.value(scheme, workload) > 0.97

    # Paper headline: the discontinuity prefetcher with bypass reaches
    # 1.08-1.37X on the CMP (loose band at reduced scale).
    cmp_gains = [panel_cmp.value("Discontinuity", w) for w in panel_cmp.col_labels]
    assert max(cmp_gains) > 1.15
    assert min(cmp_gains) > 1.02

    # Bypass recovers performance the normal install loses to pollution
    # for the aggressive schemes (compare against Figure 6's runs, which
    # are already cached).
    fig06_panels = fig06.run(scale=at_least_default(scale))
    normal_cmp = fig06_panels[1]
    recovered = 0
    for workload in panel_cmp.col_labels:
        if panel_cmp.value("Discontinuity", workload) >= normal_cmp.value(
            "Discontinuity", workload
        ) - 0.01:
            recovered += 1
    assert recovered >= len(panel_cmp.col_labels) - 1
