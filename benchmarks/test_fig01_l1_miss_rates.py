"""Figure 1 — L1I miss rate vs. cache geometry (paper §3.1)."""

from benchmarks.conftest import run_catalog


def test_fig01_l1_miss_rates(benchmark, scale):
    run_catalog(benchmark, "fig01", scale)
