"""Figure 1 — L1I miss rate vs. cache geometry (paper §3.1)."""

from benchmarks.conftest import run_figure
from repro.eval import fig01


def test_fig01_l1_miss_rates(benchmark, scale):
    (panel,) = run_figure(benchmark, fig01.run, scale)

    default_row = panel.row("Default")
    # Paper band (loose at reduced scale): ~1-4% per instruction.
    assert all(0.3 < rate < 5.0 for rate in default_row), default_row
    # jApp is the highest of the four (paper §3.1).
    assert panel.value("Default", "jApp") == max(default_row)

    for workload in panel.col_labels:
        default = panel.value("Default", workload)
        # Line size is highly effective (paper: "highly effective").
        assert panel.value("256B line size", workload) < default
        assert panel.value("32B line size", workload) > default
        # Capacity helps.
        assert panel.value("128KB", workload) < default
        assert panel.value("16KB", workload) > default
        # Associativity: direct-mapped is worst.
        assert panel.value("Direct-mapped", workload) > default
