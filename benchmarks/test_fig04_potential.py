"""Figure 4 — performance potential of eliminating instruction misses."""

from benchmarks.conftest import run_catalog


def test_fig04_potential(benchmark, scale):
    run_catalog(benchmark, "fig04", scale)
