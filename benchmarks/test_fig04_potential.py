"""Figure 4 — performance potential of eliminating instruction misses."""

from benchmarks.conftest import run_figure
from repro.eval import fig04


def test_fig04_potential(benchmark, scale):
    panel_single, panel_cmp = run_figure(benchmark, fig04.run, scale)

    for panel in (panel_single, panel_cmp):
        for workload in panel.col_labels:
            seq = panel.value("Sequential only", workload)
            branch = panel.value("Branch only", workload)
            function = panel.value("Function only", workload)
            all_three = panel.value("Seq + Branch + Function", workload)
            # Paper §3.3: sequential-only beats branch-only and
            # function-only; eliminating everything beats any single class.
            assert seq >= branch - 0.02
            assert seq >= function - 0.02
            assert all_three >= seq
            assert all_three >= panel.value("Sequential + Branch", workload) - 1e-9
            # Every elimination is a (weak) improvement.
            assert branch >= 0.99
            assert function >= 0.99

    # Vast improvements are available (paper: up to ~1.6X).
    best = max(
        panel_cmp.value("Seq + Branch + Function", w) for w in panel_cmp.col_labels
    )
    assert best > 1.25
