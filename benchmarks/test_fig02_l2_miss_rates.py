"""Figure 2 — L2 instruction miss rate vs. capacity, single core vs CMP."""

from benchmarks.conftest import at_least_default, run_figure
from repro.eval import fig02


def test_fig02_l2_miss_rates(benchmark, scale):
    # Capacity effects need the longer windows (see conftest).
    (panel,) = run_figure(benchmark, fig02.run, at_least_default(scale))

    for workload in ("DB", "TPC-W", "jApp"):
        # CMP rates exceed single core at the default 2MB (paper §3.1).
        assert panel.value("2MB 4-way CMP", workload) > panel.value(
            "2MB single core", workload
        )
        # Capacity has a large effect: 1MB worse than 2MB worse than 4MB.
        assert panel.value("1MB 4-way CMP", workload) > panel.value(
            "2MB 4-way CMP", workload
        )
        assert panel.value("2MB 4-way CMP", workload) > panel.value(
            "4MB 4-way CMP", workload
        )

    # The multiprogrammed mix is among the highest CMP rates.
    mix = panel.value("2MB 4-way CMP", "Mixed")
    others = [panel.value("2MB 4-way CMP", w) for w in ("DB", "TPC-W", "Web")]
    assert mix > max(others)
