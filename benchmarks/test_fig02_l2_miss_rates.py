"""Figure 2 — L2 instruction miss rate vs. capacity, single core vs CMP."""

from benchmarks.conftest import run_catalog


def test_fig02_l2_miss_rates(benchmark, scale):
    # Capacity effects need the longer windows; the declaration carries
    # bench_scale="default" so run_catalog promotes the scale.
    run_catalog(benchmark, "fig02", scale)
