"""Performance smoke benchmark — records the numbers CI tracks.

Two measurements, written to ``BENCH_perf.json`` at the repo root:

- ``engine_visits_per_sec``: line-visits/second of one fixed-seed engine
  run (db / 1 core / discontinuity / bypass at the same instruction budget
  ``scripts/profile_engine.py`` uses), trace generation excluded.  This is
  the metric the hot-loop optimizations in ``repro.core.engine`` and
  ``repro.caches.cache`` are validated against.
- ``fig01_cold_seconds`` / ``fig01_warm_seconds``: wall-clock of the
  Figure 1 driver at smoke scale, first from an empty result cache and
  then again with only the on-disk cache warm (in-process memo cleared),
  demonstrating the persistent-cache win.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_smoke.py -q -p no:cacheprovider
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.eval import executor, fig01
from repro.eval.runner import DEFAULT_SEED, clear_trace_cache, get_traces, run_system
from scripts.profile_engine import BENCH_SCALE

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_perf.json"


def _measure_engine() -> dict:
    """Visits/sec of the profile_engine.py reference configuration."""
    workload, cores, prefetcher, policy = "db", 1, "discontinuity", "bypass"
    get_traces(workload, cores, BENCH_SCALE.single_total, DEFAULT_SEED)
    started = time.perf_counter()
    result = run_system(
        workload,
        cores,
        prefetcher,
        scale=BENCH_SCALE,
        l2_policy=policy,
        seed=DEFAULT_SEED,
    )
    elapsed = time.perf_counter() - started
    visits = sum(core.l1i_fetches for core in result.cores)
    return {
        "config": f"{workload}/{cores}c/{prefetcher}/{policy}",
        "measure_instructions": BENCH_SCALE.measure_instructions,
        "line_visits": visits,
        "seconds": round(elapsed, 4),
        "engine_visits_per_sec": round(visits / elapsed, 1),
        "aggregate_ipc": result.aggregate_ipc,
    }


def _measure_fig01(scale) -> dict:
    """Cold (empty caches) and warm (disk-cache only) driver wall-clock."""
    executor.clear_memo()
    clear_trace_cache()
    started = time.perf_counter()
    fig01.run(scale=scale)
    cold = time.perf_counter() - started

    # Drop the in-process memo so the rerun exercises the disk cache.
    executor.clear_memo()
    started = time.perf_counter()
    fig01.run(scale=scale)
    warm = time.perf_counter() - started
    return {
        "scale": scale.name,
        "fig01_cold_seconds": round(cold, 3),
        "fig01_warm_seconds": round(warm, 3),
    }


def test_perf_smoke(scale):
    engine = _measure_engine()
    figure = _measure_fig01(scale)

    report = {
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "engine": engine,
        "figure": figure,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))

    # Sanity floors only — absolute throughput varies across machines, so
    # the asserted bounds are an order of magnitude below expectation.
    assert engine["line_visits"] > 0
    assert engine["engine_visits_per_sec"] > 1_000
    # The warm rerun is served from the on-disk cache, so it must beat the
    # cold run by a wide margin.
    assert figure["fig01_warm_seconds"] < figure["fig01_cold_seconds"] / 2
