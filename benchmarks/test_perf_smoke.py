"""Performance smoke benchmark — records the numbers CI tracks.

Measurements, written to ``BENCH_perf.json`` at the repo root:

- ``engine_visits_per_sec``: line-visits/second of one fixed-seed engine
  run (db / 1 core / discontinuity / bypass at the same instruction budget
  ``scripts/profile_engine.py`` uses) on the compiled-trace fast path,
  trace generation excluded, with ``raw_visits_per_sec`` alongside for the
  lazy-lowering path.  This is the metric the hot-loop optimizations in
  ``repro.core.engine`` and ``repro.caches.cache`` are validated against.
- ``backends.reference`` / ``backends.vectorized`` / ``backends.jit``:
  best-of-3 ``visits_per_sec`` for each engine backend on that same
  configuration, plus ``speedup`` (vectorized over reference) and
  ``jit_speedup``.  ``engine_visits_per_sec`` remains the reference
  backend's number so the metric's history stays comparable across this
  change.  The jit kernel is built (or cache-loaded) before timing;
  ``jit_compile_seconds`` records that one-time cost separately.
- ``engine_4c``: the same per-backend sweep on the db / 4-core CMP
  configuration — the case the jit backend exists for (its interleave
  loop runs compiled instead of span-of-1 stepping), so the multi-core
  claim is tracked, not asserted.
- ``trace_compile_seconds`` and the store's cold/warm load times: how much
  one-time work the packed format costs and how cheap reloading it is.
- ``ingest``: external-trace ingestion throughput on the checked-in
  PC-stream fixture — ``parse_lines_per_sec`` (text → classified block
  events) and ``compile_lines_per_sec`` (ingest + tile + pack into the
  trace store), the costs ``repro-trace ingest --compile`` pays.
- ``fig01_coldstore_seconds`` / ``fig01_warmstore_seconds`` /
  ``fig01_warm_seconds``: wall-clock of the Figure 1 driver at smoke scale
  from empty caches, then with only the trace store warm (fresh result
  cache — the "new machine, shared traces" case the store exists for),
  then with the result disk-cache warm.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_smoke.py -q -p no:cacheprovider
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.envvars import REPRO_CACHE_DIR, REPRO_COMPILED_TRACES
from repro.eval import executor
from repro.eval.experiment import run_experiment
from repro.eval.registry import get_experiment
from repro.eval.runner import (
    DEFAULT_SEED,
    clear_trace_cache,
    get_compiled_traces,
    get_traces,
    run_system,
)
from repro.trace import store
from repro.trace.compiled import compile_traces
from scripts.profile_engine import BENCH_SCALE

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_perf.json"


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _measure_engine() -> dict:
    """Visits/sec of the profile_engine.py reference configuration."""
    workload, cores, prefetcher, policy = "db", 1, "discontinuity", "bypass"
    total = BENCH_SCALE.single_total
    raw = get_traces(workload, cores, total, DEFAULT_SEED)

    compiled, compile_seconds = _timed(
        lambda: compile_traces(
            raw, 64, workload=workload, seed=DEFAULT_SEED, n_instructions=total
        )
    )
    store.store(compiled[0])
    key = dict(
        workload=workload, seed=DEFAULT_SEED, core=0, n_instructions=total, line_size=64
    )
    _, cold_load = _timed(lambda: store.load(**key))
    _, warm_load = _timed(lambda: store.load(**key))

    def run(path_on: bool, backend: str = "reference", reps: int = 1):
        """Best-of-*reps* timing (min wall-clock rejects scheduler noise)."""
        os.environ[REPRO_COMPILED_TRACES] = "1" if path_on else "0"
        if path_on:  # prime run_system's memo so only the engine loop is timed
            get_compiled_traces(workload, cores, total, DEFAULT_SEED, 64)
        if reps > 1:
            # Untimed warm-up: the first run on a cold process pays page
            # faults, allocator growth and branch-predictor warm-up that
            # best-of-N alone cannot reject when every rep is cold.
            run_system(
                workload,
                cores,
                prefetcher,
                scale=BENCH_SCALE,
                l2_policy=policy,
                seed=DEFAULT_SEED,
                engine_backend=backend,
            )
        best = None
        for _ in range(reps):
            result, elapsed = _timed(
                lambda: run_system(
                    workload,
                    cores,
                    prefetcher,
                    scale=BENCH_SCALE,
                    l2_policy=policy,
                    seed=DEFAULT_SEED,
                    engine_backend=backend,
                )
            )
            if best is None or elapsed < best[1]:
                best = (result, elapsed)
        return best

    # Build (or cache-load) the jit kernel before any timed region.
    from repro.core import jitted

    jit_ok = jitted.jit_available()

    previous = os.environ.get(REPRO_COMPILED_TRACES)
    try:
        result, compiled_elapsed = run(True, "reference", reps=3)
        vec_result, vec_elapsed = run(True, "vectorized", reps=3)
        jit_best = run(True, "jit", reps=3) if jit_ok else None
        raw_result, raw_elapsed = run(False)
    finally:
        if previous is None:
            os.environ.pop(REPRO_COMPILED_TRACES, None)
        else:
            os.environ[REPRO_COMPILED_TRACES] = previous

    assert raw_result.aggregate_ipc == result.aggregate_ipc
    # The backends must be bit-identical (the parity suite checks every
    # stat; the bench just refuses to record numbers from diverging runs).
    assert repr(vec_result.aggregate_ipc) == repr(result.aggregate_ipc)
    visits = sum(core.l1i_fetches for core in result.cores)
    reference_rate = visits / compiled_elapsed
    vectorized_rate = visits / vec_elapsed
    backends = {
        "reference": {
            "seconds": round(compiled_elapsed, 4),
            "visits_per_sec": round(reference_rate, 1),
        },
        "vectorized": {
            "seconds": round(vec_elapsed, 4),
            "visits_per_sec": round(vectorized_rate, 1),
        },
    }
    report = {
        "config": f"{workload}/{cores}c/{prefetcher}/{policy}",
        "measure_instructions": BENCH_SCALE.measure_instructions,
        "line_visits": visits,
        "seconds": round(compiled_elapsed, 4),
        "engine_visits_per_sec": round(reference_rate, 1),
        "raw_visits_per_sec": round(visits / raw_elapsed, 1),
        "backends": backends,
        "speedup": round(vectorized_rate / reference_rate, 2),
        "trace_compile_seconds": round(compile_seconds, 4),
        "store_cold_load_seconds": round(cold_load, 5),
        "store_warm_load_seconds": round(warm_load, 5),
        "aggregate_ipc": result.aggregate_ipc,
    }
    if jit_best is not None:
        jit_result, jit_elapsed = jit_best
        assert repr(jit_result.aggregate_ipc) == repr(result.aggregate_ipc)
        jit_rate = visits / jit_elapsed
        backends["jit"] = {
            "seconds": round(jit_elapsed, 4),
            "visits_per_sec": round(jit_rate, 1),
        }
        report["jit_speedup"] = round(jit_rate / reference_rate, 2)
        report["jit_compile_seconds"] = round(jitted.kernel_compile_seconds(), 4)
    return report


def _measure_engine_cmp() -> dict:
    """Per-backend visits/sec on the 4-core CMP configuration.

    This is the configuration the jit backend exists for: the reference
    Python interleave loop steps one visit at a time, the vectorized
    backend degrades to span-of-1 stepping (~0.9x), and the jit backend
    runs the whole interleave loop compiled.
    """
    from repro.core import jitted

    workload, cores, prefetcher, policy = "db", 4, "discontinuity", "bypass"
    total = BENCH_SCALE.cmp_total_per_core

    def run(backend: str, reps: int = 3):
        os.environ[REPRO_COMPILED_TRACES] = "1"
        get_compiled_traces(workload, cores, total, DEFAULT_SEED, 64)

        def once():
            return run_system(
                workload,
                cores,
                prefetcher,
                scale=BENCH_SCALE,
                l2_policy=policy,
                seed=DEFAULT_SEED,
                engine_backend=backend,
            )

        once()  # untimed warm-up rep
        best = None
        for _ in range(reps):
            result, elapsed = _timed(once)
            if best is None or elapsed < best[1]:
                best = (result, elapsed)
        return best

    jit_ok = jitted.jit_available()
    previous = os.environ.get(REPRO_COMPILED_TRACES)
    try:
        result, ref_elapsed = run("reference")
        vec_result, vec_elapsed = run("vectorized")
        jit_best = run("jit") if jit_ok else None
    finally:
        if previous is None:
            os.environ.pop(REPRO_COMPILED_TRACES, None)
        else:
            os.environ[REPRO_COMPILED_TRACES] = previous

    assert repr(vec_result.aggregate_ipc) == repr(result.aggregate_ipc)
    visits = sum(core.l1i_fetches for core in result.cores)
    reference_rate = visits / ref_elapsed
    vectorized_rate = visits / vec_elapsed
    report = {
        "config": f"{workload}/{cores}c/{prefetcher}/{policy}",
        "measure_instructions_per_core": BENCH_SCALE.cmp_measure_instructions,
        "line_visits": visits,
        "backends": {
            "reference": {
                "seconds": round(ref_elapsed, 4),
                "visits_per_sec": round(reference_rate, 1),
            },
            "vectorized": {
                "seconds": round(vec_elapsed, 4),
                "visits_per_sec": round(vectorized_rate, 1),
            },
        },
        "speedup": round(vectorized_rate / reference_rate, 2),
        "aggregate_ipc": result.aggregate_ipc,
    }
    if jit_best is not None:
        jit_result, jit_elapsed = jit_best
        assert repr(jit_result.aggregate_ipc) == repr(result.aggregate_ipc)
        jit_rate = visits / jit_elapsed
        report["backends"]["jit"] = {
            "seconds": round(jit_elapsed, 4),
            "visits_per_sec": round(jit_rate, 1),
        }
        report["jit_speedup"] = round(jit_rate / reference_rate, 2)
    return report


def _measure_ingest(tmp_root: Path) -> dict:
    """Ingest + compile throughput (PC lines/sec) on the CI fixture."""
    from repro.envvars import REPRO_EXTERNAL_TRACES, REPRO_TRACE_DIR
    from repro.trace import ingest

    fixture = REPO_ROOT / "tests" / "data" / "external_fixture.txt"
    lines = fixture.read_text().splitlines()
    n_lines = len(lines)

    (pcs, parse_seconds) = _timed(lambda: ingest.parse_text(lines))
    (events, classify_seconds) = _timed(lambda: ingest.events_from_pcs(pcs))

    overrides = {
        REPRO_EXTERNAL_TRACES: str(tmp_root / "bench-external"),
        REPRO_TRACE_DIR: str(tmp_root / "bench-traces"),
    }
    previous = {name: os.environ.get(name) for name in overrides}
    os.environ.update(overrides)
    try:
        _, ingest_seconds = _timed(lambda: ingest.ingest_file(fixture, name="bench"))
        _, compile_seconds = _timed(
            lambda: ingest.compile_external("bench", 1, 50_000)
        )
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    parse_classify = parse_seconds + classify_seconds
    total = ingest_seconds + compile_seconds
    return {
        "fixture_lines": n_lines,
        "fixture_pcs": len(pcs),
        "fixture_events": len(events),
        "parse_seconds": round(parse_classify, 4),
        "parse_lines_per_sec": round(n_lines / parse_classify, 1),
        "ingest_seconds": round(ingest_seconds, 4),
        "compile_seconds": round(compile_seconds, 4),
        "compile_lines_per_sec": round(n_lines / total, 1),
    }


def _fig01_run(scale, cache_dir: Path) -> float:
    """One fig01 sweep against *cache_dir* with in-process memos dropped."""
    os.environ[REPRO_CACHE_DIR] = str(cache_dir)
    executor.clear_memo()
    clear_trace_cache()
    experiment = get_experiment("fig01")
    _, elapsed = _timed(lambda: run_experiment(experiment, scale=scale))
    return elapsed


def _measure_fig01(scale, tmp_root: Path) -> dict:
    """Driver wall-clock: cold, trace-store-warm, and result-cache-warm."""
    previous = os.environ.get(REPRO_CACHE_DIR)
    store.clear()
    try:
        coldstore = _fig01_run(scale, tmp_root / "run-cold")
        # Fresh result cache, warm trace store: workers load packed traces.
        warmstore = _fig01_run(scale, tmp_root / "run-warmstore")
        # Same result cache again: served straight from disk-cached results.
        warm = _fig01_run(scale, tmp_root / "run-warmstore")
    finally:
        if previous is None:
            os.environ.pop(REPRO_CACHE_DIR, None)
        else:
            os.environ[REPRO_CACHE_DIR] = previous
    return {
        "scale": scale.name,
        "fig01_coldstore_seconds": round(coldstore, 3),
        "fig01_warmstore_seconds": round(warmstore, 3),
        "fig01_warm_seconds": round(warm, 3),
    }


def test_perf_smoke(scale, tmp_path):
    engine = _measure_engine()
    engine_4c = _measure_engine_cmp()
    ingest = _measure_ingest(tmp_path)
    figure = _measure_fig01(scale, tmp_path)

    report = {
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "engine": engine,
        "engine_4c": engine_4c,
        "ingest": ingest,
        "figure": figure,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(json.dumps(report, indent=2))

    # Sanity floors only — absolute throughput varies across machines, so
    # the asserted bounds sit well below expectation (the reference
    # backend sustains ~45-65k visits/s warm on CI-class hardware; the
    # untimed warm-up rep above keeps cold-start noise out of the record).
    assert engine["line_visits"] > 0
    assert engine["engine_visits_per_sec"] > 5_000
    # The vectorized backend consistently measures 2-3.4x on this config
    # (see docs/performance.md); assert well below that so machine noise
    # never flakes the benchmark, while still catching a regression to
    # reference-backend speed.
    assert engine["speedup"] > 1.5
    # The jit backend measures ~10-16x single-core and ~20-27x on the
    # 4-core config here (compile cost excluded — the kernel is built
    # before the timed region).  The asserted floors are the targets the
    # backend was built to: >=6x single-core, >=2x multi-core.
    if "jit" in engine["backends"]:
        assert engine["jit_speedup"] >= 6.0
    if "jit" in engine_4c["backends"]:
        assert engine_4c["jit_speedup"] >= 2.0
    assert engine["store_warm_load_seconds"] < engine["trace_compile_seconds"]
    # Ingestion is linear scans over small records; even slow CI machines
    # sustain far more than this floor (typical: >100k lines/s parsing).
    assert ingest["parse_lines_per_sec"] > 5_000
    assert ingest["compile_lines_per_sec"] > 1_000
    # Warm trace store must beat the cold sweep (synthesis+lowering skipped),
    # and disk-cached results must beat everything by a wide margin.
    assert figure["fig01_warmstore_seconds"] < figure["fig01_coldstore_seconds"]
    assert figure["fig01_warm_seconds"] < figure["fig01_coldstore_seconds"] / 2
