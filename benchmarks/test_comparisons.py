"""Comparison benchmarks against the alternative prefetching styles of §2."""

from benchmarks.conftest import at_least_default, run_figure
from repro.eval import comparisons


def test_comparison_alternatives(benchmark, scale):
    """The paper's scheme must win (or tie) against every §2 alternative."""
    speedup_panel, coverage_panel, accuracy_panel = run_figure(
        benchmark, comparisons.run_alternatives, scale
    )
    for workload in speedup_panel.col_labels:
        disc = speedup_panel.value("Discontinuity (paper)", workload)
        for rival in (
            "Next-4-lines (tagged)",
            "Target prefetcher",
            "Fetch-directed (1K BTB)",
        ):
            assert disc >= speedup_panel.value(rival, workload) - 0.02, (
                f"{rival} beats discontinuity on {workload}"
            )
        # The classic target prefetcher (no probe-ahead, no sequential
        # component) covers far less.
        assert coverage_panel.value("Discontinuity (paper)", workload) > coverage_panel.value(
            "Target prefetcher", workload
        )


def test_comparison_execution_based(benchmark, scale):
    """§2.2: execution-based prefetching needs impractical predictor state."""
    coverage_panel, speedup_panel = run_figure(
        benchmark, comparisons.run_execution_based, scale
    )
    for workload in coverage_panel.col_labels:
        small = coverage_panel.value("FDP 1024-entry BTB", workload)
        large = coverage_panel.value("FDP 65536-entry BTB", workload)
        disc = coverage_panel.value("Discontinuity 8K (paper)", workload)
        # Bigger BTBs help (the footprint is the bottleneck)...
        assert large >= small - 2.0
        # ...but even a 64x BTB cannot reach the discontinuity prefetcher.
        assert disc > large + 5.0, f"{workload}: disc {disc:.1f} vs FDP-64K {large:.1f}"


def test_comparison_software_prefetch(benchmark, scale):
    """§2.3: the cooperative split is competitive; the HW scheme holds up."""
    speedup_panel, coverage_panel = run_figure(
        benchmark, comparisons.run_software_prefetch, scale
    )
    for workload in speedup_panel.col_labels:
        software = speedup_panel.value("Software + next-4-line", workload)
        seq_only = speedup_panel.value("Next-4-line only", workload)
        disc = speedup_panel.value("Discontinuity (paper)", workload)
        # Adding software non-sequential prefetches beats sequential-only.
        assert software > seq_only - 0.02
        # The all-hardware discontinuity prefetcher stays competitive with
        # perfectly-profiled software prefetching.
        assert disc > software - 0.08


def test_comparison_bandwidth_crossover(benchmark, scale):
    """§7 closing claim: under constrained bandwidth, discont-2NL wins."""
    (panel,) = run_figure(
        benchmark, comparisons.run_bandwidth_sensitivity, at_least_default(scale)
    )
    # At the paper's 20 GB/s the 4NL discontinuity leads...
    assert panel.value("Discontinuity", "20 GB/s") >= panel.value(
        "Discont (2NL)", "20 GB/s"
    ) - 0.02
    # ...and at a tight link the accuracy-efficient 2NL variant takes over.
    assert panel.value("Discont (2NL)", "6 GB/s") > panel.value(
        "Discontinuity", "6 GB/s"
    )
    assert panel.value("Discont (2NL)", "6 GB/s") > panel.value(
        "Next-4-lines (tagged)", "6 GB/s"
    )


def test_comparison_core_scaling(benchmark, scale):
    """Extension: shared-L2 pressure grows with core count."""
    (panel,) = run_figure(
        benchmark, comparisons.run_core_scaling, at_least_default(scale)
    )
    l2i = panel.row("Baseline L2I (% per instr)")
    l2d = panel.row("Baseline L2D (% per instr)")
    speedup = panel.row("Discontinuity speedup (X)")
    # Shared-L2 instruction pressure grows from 1 to 4 to 8 cores.
    assert l2i[2] > l2i[0]  # 4 cores > 1 core
    assert l2i[3] > l2i[1]  # 8 cores > 2 cores
    # Data pressure grows monotonically with cores.
    assert l2d[3] > l2d[2] > l2d[0]
    # The prefetcher keeps paying off at every scale.
    assert all(value > 1.1 for value in speedup)
