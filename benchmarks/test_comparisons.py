"""Comparison benchmarks against the alternative prefetching styles of §2.

Each bench runs one catalog declaration; the qualitative claims it used
to assert inline now live as ``Expectation`` objects on the declaration
in ``repro.eval.catalog.comparisons``.
"""

from benchmarks.conftest import run_catalog


def test_comparison_alternatives(benchmark, scale):
    """The paper's scheme must win (or tie) against every §2 alternative."""
    run_catalog(benchmark, "comparison-alternatives", scale)


def test_comparison_execution_based(benchmark, scale):
    """§2.2: execution-based prefetching needs impractical predictor state."""
    run_catalog(benchmark, "comparison-execution-based", scale)


def test_comparison_software_prefetch(benchmark, scale):
    """§2.3: the cooperative split is competitive; the HW scheme holds up."""
    run_catalog(benchmark, "comparison-software-prefetch", scale)


def test_comparison_bandwidth_crossover(benchmark, scale):
    """§7 closing claim: under constrained bandwidth, discont-2NL wins."""
    run_catalog(benchmark, "comparison-bandwidth", scale)


def test_comparison_core_scaling(benchmark, scale):
    """Extension: shared-L2 pressure grows with core count."""
    run_catalog(benchmark, "comparison-core-scaling", scale)


def test_comparison_budget_matched(benchmark, scale):
    """All six hardware families at matched storage budgets."""
    run_catalog(benchmark, "comparison-budget-matched", scale)


def test_replication_check(benchmark, scale):
    """Multi-seed replication: the headline speedup is seed-stable."""
    run_catalog(benchmark, "replication-check", scale)
