"""Figure 9 — prefetch accuracy and the next-2-line discontinuity variant."""

from benchmarks.conftest import run_catalog


def test_fig09_accuracy(benchmark, scale):
    run_catalog(benchmark, "fig09", scale)
