"""Figure 9 — prefetch accuracy and the next-2-line discontinuity variant."""

from benchmarks.conftest import run_figure
from repro.eval import fig09


def test_fig09_accuracy(benchmark, scale):
    panel_accuracy, panel_perf = run_figure(benchmark, fig09.run, scale)

    for workload in panel_accuracy.col_labels:
        on_miss = panel_accuracy.value("Next-line (on miss)", workload)
        tagged = panel_accuracy.value("Next-line (tagged)", workload)
        next4 = panel_accuracy.value("Next-4-lines (tagged)", workload)
        disc = panel_accuracy.value("Discontinuity", workload)
        disc2 = panel_accuracy.value("Discont (2NL)", workload)
        # Paper: accuracy is noticeably lower for the aggressive schemes.
        assert on_miss > next4 > disc
        assert tagged > next4
        # Paper: the 2NL variant achieves ~50% higher accuracy than the
        # 4NL discontinuity prefetcher (loose: >= 25% higher).
        assert disc2 > disc * 1.25

    # The 2NL discontinuity stays competitive on performance despite the
    # shorter reach (paper: it outperforms next-4-lines).
    for workload in panel_perf.col_labels:
        disc2 = panel_perf.value("Discont (2NL)", workload)
        next4 = panel_perf.value("Next-4-lines (tagged)", workload)
        assert disc2 > next4 * 0.9
