"""Figure 3 — instruction-miss breakdown by transition category."""

from benchmarks.conftest import run_figure
from repro.eval import fig03


def test_fig03_miss_breakdown(benchmark, scale):
    panel_i, panel_ii, panel_iii = run_figure(benchmark, fig03.run, scale)

    for workload in panel_i.col_labels:
        sequential = panel_i.value("Sequential", workload)
        # Paper §3.2: sequential misses only 40-60% (loose band: 30-70).
        assert 30 < sequential < 70, f"{workload}: {sequential:.1f}%"
        # Traps negligible.
        assert panel_i.value("Trap", workload) < 2.0
        # Taken-forward conditionals are the dominant branch category.
        tf = panel_i.value("Cond branch (tf)", workload)
        assert tf >= panel_i.value("Cond branch (tb)", workload)
        # Calls dominate the function-call categories.
        call = panel_i.value("Call", workload)
        assert call >= panel_i.value("Jump", workload)

    # L2 panels mirror the L1 shape (paper: "similar to the behavior of
    # the instruction cache misses").
    for panel in (panel_ii, panel_iii):
        for workload in panel.col_labels:
            assert 25 < panel.value("Sequential", workload) < 75
