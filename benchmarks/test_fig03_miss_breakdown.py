"""Figure 3 — instruction-miss breakdown by transition category."""

from benchmarks.conftest import run_catalog


def test_fig03_miss_breakdown(benchmark, scale):
    run_catalog(benchmark, "fig03", scale)
