#!/usr/bin/env python
"""Dissect a workload's fetch stream: the facts behind the paper's design.

Run:  python examples/workload_anatomy.py [workload]

Measures, directly on the generated trace:

1. the paper's §5 claim that most taken-forward branch targets lie within
   four cache lines of the branch (why next-4-line covers short branches);
2. the §4 claim that most discontinuity sources have a single dominant
   target (why one target per table entry suffices);
3. sequential run lengths (how much work the sequential prefetcher has).
"""

import sys

from repro.trace import analyze_stream
from repro.trace.synth.workloads import generate_trace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "db"
    trace = generate_trace(workload, seed=11, n_instructions=300_000)
    analysis = analyze_stream(trace.events)

    print(f"=== fetch-stream anatomy: {workload} ===\n")
    print(analysis.summary())

    print("\ntaken-forward branch distance histogram (lines):")
    total = sum(analysis.tf_distance_histogram.values())
    for distance in sorted(analysis.tf_distance_histogram):
        count = analysis.tf_distance_histogram[distance]
        bar = "#" * max(1, round(40 * count / total))
        label = f"{distance}" if distance < 16 else ">=16"
        print(f"  {label:>4} | {bar} {100 * count / total:.1f}%")

    print(
        f"\npaper §5: 'most taken forward branches have targets within four"
        f"\ncache lines' -> measured {100 * analysis.tf_within(4):.1f}%"
    )
    print(
        f"paper §4: 'for any one start address there is just one associated"
        f"\ntarget' -> {100 * analysis.monomorphic_fraction:.1f}% of sources are"
        f" monomorphic,"
        f"\ncovering {100 * analysis.dominant_target_fraction:.1f}% of dynamic"
        f" discontinuities"
    )


if __name__ == "__main__":
    main()
