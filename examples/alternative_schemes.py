#!/usr/bin/env python
"""Every prefetching style from the paper's §2 survey, head to head.

Run:  python examples/alternative_schemes.py [workload]

Compares, on a single core of the default system:

- the sequential family (next-4-line),
- the classic history-based target prefetcher [1] (current-line probing),
- a Markov multi-target predictor [6],
- execution-based fetch-directed prefetching [9] on the gshare/BTB/RAS
  substrate (paper-sized 1K BTB and an impractical 64K BTB),
- compiler-inserted software prefetching [13] (perfect profile feedback),
- the paper's discontinuity prefetcher.
"""

import sys

from repro.cmp.system import System, SystemConfig
from repro.swpf import software_prefetcher_for
from repro.trace.synth.workloads import generate_trace

N_INSTRUCTIONS = 700_000
WARM = 180_000
SEED = 2026


def run(trace, prefetcher=None, factory=None, overrides=None):
    config = SystemConfig(
        n_cores=1,
        prefetcher=prefetcher or "none",
        prefetcher_overrides=overrides or {},
        prefetcher_factory=factory,
        l2_policy="bypass",
        warm_instructions=WARM,
    )
    return System(config, [trace]).run()


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "db"
    trace = generate_trace(workload, SEED, N_INSTRUCTIONS)
    baseline = run(trace)

    contenders = [
        ("next-4-line (sequential)", dict(prefetcher="next-4-line")),
        ("target prefetcher [1]", dict(prefetcher="target")),
        ("markov 2-target [6]", dict(prefetcher="markov")),
        ("fetch-directed, 1K BTB [9]", dict(prefetcher="fdp", overrides={"btb_entries": 1024})),
        ("fetch-directed, 64K BTB", dict(prefetcher="fdp", overrides={"btb_entries": 65536})),
        (
            "software prefetch [13]",
            dict(factory=lambda core: software_prefetcher_for(workload, SEED, core=core)),
        ),
        ("discontinuity (this paper)", dict(prefetcher="discontinuity")),
    ]

    print(f"=== prefetching styles on {workload} (single core, bypass) ===\n")
    print(f"{'scheme':<28} {'speedup':>8} {'coverage':>9} {'accuracy':>9}")
    for label, kwargs in contenders:
        result = run(trace, **kwargs)
        speedup = result.aggregate_ipc / baseline.aggregate_ipc
        print(
            f"{label:<28} {speedup:>7.3f}x {100 * result.l1i_coverage:>8.1f}% "
            f"{100 * result.prefetch_accuracy:>8.1f}%"
        )
    print(
        "\nThe discontinuity prefetcher's probe-ahead + single-target table"
        "\nmatches or beats every alternative at a fraction of the state."
    )


if __name__ == "__main__":
    main()
