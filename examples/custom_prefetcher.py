#!/usr/bin/env python
"""Extending the library with a custom prefetcher.

Run:  python examples/custom_prefetcher.py

Shows the extension surface a prefetcher researcher would use: subclass
:class:`repro.prefetch.Prefetcher`, implement the three hooks, and drop the
instance into a :class:`~repro.cmp.System` (bypassing the name registry by
building the system's engines directly is unnecessary — the registry is
only sugar; here we assemble a system manually to show the full wiring).

The toy scheme below is a *stride-2* sequential prefetcher with a
discontinuity table bolted on, probing only the current line (no
probe-ahead) — i.e. the classic target-prefetcher timing the paper argues
against.  Comparing it against the paper's probe-ahead discontinuity
prefetcher demonstrates why the probe-ahead matters.
"""

from repro.caches.cache import SetAssociativeCache
from repro.caches.config import DEFAULT_HIERARCHY
from repro.cmp.link import OffChipLink
from repro.core.engine import CoreEngine, EngineConfig
from repro.core.l2policy import BYPASS_INSTALL
from repro.core.metrics import CoreStats
from repro.prefetch.base import PrefetchCandidate, Prefetcher
from repro.prefetch.discontinuity import DiscontinuityTable
from repro.prefetch.queue import PrefetchQueue
from repro.timing.params import DEFAULT_TIMING
from repro.trace.synth.workloads import generate_trace


class NoLookaheadDiscontinuity(Prefetcher):
    """Discontinuity table probed with the current line only (no probe-ahead).

    Identical learning rules to the paper's prefetcher; the only difference
    is prediction timing — which is the point of the comparison.
    """

    name = "no-lookahead-discontinuity"

    def __init__(self, table_entries: int = 8192, degree: int = 4) -> None:
        self.table = DiscontinuityTable(table_entries)
        self.degree = degree

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        if not (was_miss or first_use_of_prefetch):
            return []
        candidates = [
            PrefetchCandidate(line + depth, ("seq",)) for depth in range(1, self.degree + 1)
        ]
        target = self.table.predict(line)
        if target is not None:
            provenance = ("disc", self.table.index_of(line), line)
            candidates.append(PrefetchCandidate(target, provenance))
        return candidates

    def on_discontinuity(self, source_line, target_line, caused_miss):
        if caused_miss:
            self.table.observe(source_line, target_line)

    def credit(self, provenance):
        if provenance and provenance[0] == "disc":
            _, index, source = provenance
            self.table.credit(index, source)


def run_with(prefetcher: Prefetcher, trace) -> CoreStats:
    """Wire one core around *prefetcher* and run the trace."""
    hierarchy = DEFAULT_HIERARCHY
    timing = DEFAULT_TIMING
    engine = CoreEngine(
        EngineConfig(warm_instructions=100_000, l2_policy=BYPASS_INSTALL),
        trace,
        hierarchy.line_size,
        SetAssociativeCache("L1I", hierarchy.l1i),
        SetAssociativeCache("L1D", hierarchy.l1d),
        SetAssociativeCache("L2", hierarchy.l2),
        OffChipLink(timing.bytes_per_cycle(10.0), hierarchy.line_size),
        prefetcher,
        PrefetchQueue(),
        timing,
    )
    return engine.run()


def main() -> None:
    from repro.prefetch.discontinuity import DiscontinuityPrefetcher

    trace = generate_trace("db", seed=7, n_instructions=500_000)

    print("=== probe-ahead vs probe-current discontinuity prefetching ===\n")
    for label, prefetcher in [
        ("paper (probe-ahead)", DiscontinuityPrefetcher()),
        ("custom (no lookahead)", NoLookaheadDiscontinuity()),
    ]:
        stats = run_with(prefetcher, trace)
        print(
            f"{label:<24} IPC={stats.ipc:6.3f}  "
            f"L1I={100 * stats.l1i_miss_rate_per_instruction:5.2f}%  "
            f"coverage={100 * stats.l1i_coverage:5.1f}%  "
            f"late={stats.prefetch.useful_late}/{stats.prefetch.useful}"
        )
    print(
        "\nThe no-lookahead variant issues its discontinuity prefetch only"
        "\nwhen the stream reaches the source line - too late to cover the"
        "\nmemory latency, so more of its useful prefetches arrive late."
    )


if __name__ == "__main__":
    main()
