#!/usr/bin/env python
"""Discontinuity-table sizing study (the paper's Figure 10 question).

Run:  python examples/table_size_tuning.py [workload]

An area-constrained CMP cannot afford an 8k-entry predictor per core; the
paper shows the table can shrink 4x with minimal coverage loss.  This
example sweeps the table size and prints coverage, accuracy and speedup so
a designer can pick the knee of the curve.
"""

import sys

from repro import make_system


def run(workload: str, table_entries: int):
    system = make_system(
        workload=workload,
        prefetcher="discontinuity",
        n_cores=4,
        n_instructions=400_000,
        warm_instructions=100_000,
        l2_policy="bypass",
        prefetcher_overrides={"table_entries": table_entries},
    )
    return system.run()


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "db"
    print(f"=== discontinuity table sizing, 4-way CMP, workload: {workload} ===\n")

    base_system = make_system(
        workload=workload,
        prefetcher="none",
        n_cores=4,
        n_instructions=400_000,
        warm_instructions=100_000,
    )
    baseline = base_system.run()

    print(f"{'entries':>8} {'L1 coverage':>12} {'accuracy':>10} {'speedup':>9}")
    for entries in (8192, 4096, 2048, 1024, 512, 256):
        result = run(workload, entries)
        speedup = result.aggregate_ipc / baseline.aggregate_ipc
        print(
            f"{entries:>8} {100 * result.l1i_coverage:>11.1f}% "
            f"{100 * result.prefetch_accuracy:>9.1f}% {speedup:>8.2f}x"
        )
    print("\n(paper Figure 10: a 4x smaller table loses almost no coverage)")


if __name__ == "__main__":
    main()
