#!/usr/bin/env python
"""Characterize the four synthetic commercial workloads (paper §3).

Run:  python examples/commercial_workloads.py

Prints, for each workload, the trace-level characteristics (footprints,
block geometry, control-flow mix) and the baseline miss behaviour — the
numbers behind the paper's Figures 1-3 — plus the miss-category breakdown
that motivates the discontinuity prefetcher.
"""

from repro.api import make_system
from repro.isa.kinds import TransitionKind
from repro.trace.stats import compute_trace_stats
from repro.trace.synth.workloads import generate_trace, workload_names


def main() -> None:
    for workload in workload_names():
        trace = generate_trace(workload, seed=11, n_instructions=400_000)
        stats = compute_trace_stats(trace.events)
        print(f"=== {workload} ===")
        print(f"  instructions        : {stats.total_instructions}")
        print(f"  code footprint      : {stats.instruction_footprint_bytes / 1024:.0f} KB")
        print(f"  data footprint      : {stats.data_footprint_bytes / 1024:.0f} KB")
        print(f"  mean block size     : {stats.mean_block_instructions:.1f} instructions")
        print(f"  data accesses/instr : {stats.data_accesses_per_instruction:.2f}")
        calls = stats.kind_fraction(TransitionKind.CALL) + stats.kind_fraction(
            TransitionKind.JUMP
        )
        print(f"  call/jump transitions: {100 * calls:.1f}% of block entries")

        system = make_system(
            workload=workload,
            prefetcher="none",
            n_instructions=400_000,
            warm_instructions=100_000,
        )
        result = system.run()
        print(f"  L1I miss rate       : {100 * result.l1i_miss_rate:.2f}% per instr")
        print(f"  L2I miss rate       : {100 * result.l2i_miss_rate:.3f}% per instr")
        print("  L1I miss breakdown (paper Figure 3):")
        print(result.l1i_breakdown.format_table())
        print()


if __name__ == "__main__":
    main()
