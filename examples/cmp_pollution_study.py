#!/usr/bin/env python
"""CMP pollution study: why aggressive instruction prefetching needs the
L2-bypass installation policy.

Run:  python examples/cmp_pollution_study.py [workload]

Reproduces the paper's §6-§7 narrative on a 4-way CMP:

1. the discontinuity prefetcher slashes the instruction miss rate...
2. ...but under the *normal* install policy it inflates the L2 **data**
   miss rate (speculative instruction lines evict data from the shared
   unified L2), eating much of the gain;
3. the §7 bypass policy (install into L2 only once proven useful) removes
   the pollution and recovers the performance.
"""

import sys

from repro import make_system


def run(workload: str, prefetcher: str, l2_policy: str):
    system = make_system(
        workload=workload,
        prefetcher=prefetcher,
        n_cores=4,
        n_instructions=400_000,
        warm_instructions=100_000,
        l2_policy=l2_policy,
    )
    return system.run()


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "db"
    print(f"=== 4-way CMP, workload: {workload} ===\n")

    baseline = run(workload, "none", "normal")
    normal = run(workload, "discontinuity", "normal")
    bypass = run(workload, "discontinuity", "bypass")

    def row(label, result):
        print(
            f"{label:<28} IPC={result.aggregate_ipc:6.3f} "
            f"({result.aggregate_ipc / baseline.aggregate_ipc:5.3f}x)  "
            f"L1I={100 * result.l1i_miss_rate:5.2f}%  "
            f"L2D={100 * result.l2d_miss_rate:5.3f}%"
        )

    row("no prefetch", baseline)
    row("discontinuity, normal L2", normal)
    row("discontinuity, L2 bypass", bypass)

    pollution = normal.l2d_miss_rate / baseline.l2d_miss_rate
    relieved = bypass.l2d_miss_rate / baseline.l2d_miss_rate
    print(
        f"\nL2 data miss inflation: {pollution:.2f}x with normal install "
        f"-> {relieved:.2f}x with bypass"
    )
    print("(paper Figure 7: up to ~1.35x inflation; Figure 8: bypass recovers it)")


if __name__ == "__main__":
    main()
