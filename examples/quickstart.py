#!/usr/bin/env python
"""Quickstart: simulate one workload with and without the discontinuity
prefetcher and print the headline numbers.

Run:  python examples/quickstart.py [workload]

This is the 60-second tour of the library: generate a synthetic commercial
workload (the paper's proprietary traces substituted by a statistically
calibrated generator), run the baseline system, then run the paper's full
scheme — discontinuity prefetcher + next-4-line sequential + prefetch
filtering + L2-bypass installation — and compare.
"""

import sys

from repro import quick_run


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "db"

    print(f"=== workload: {workload} (single core, paper default caches) ===\n")

    baseline = quick_run(workload, "none")
    print("--- no prefetch (baseline) ---")
    print(baseline.summary())

    prefetched = quick_run(workload, "discontinuity", l2_policy="bypass")
    print("\n--- discontinuity prefetcher + L2 bypass (paper scheme) ---")
    print(prefetched.summary())

    speedup = prefetched.aggregate_ipc / baseline.aggregate_ipc
    residual = prefetched.l1i_miss_rate / baseline.l1i_miss_rate
    print(f"\nspeedup               : {speedup:.2f}x")
    print(f"residual L1I miss rate: {100 * residual:.0f}% of baseline")
    print("(paper: miss rate cut to 10-16% of baseline; 1.08-1.37x on the CMP)")


if __name__ == "__main__":
    main()
