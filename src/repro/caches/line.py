"""Per-line cache metadata."""

from __future__ import annotations

from typing import Optional, Tuple


class LineState:
    """Metadata attached to a resident cache line.

    Attributes:
        prefetched: the line was brought in by a prefetch (and not yet
            consumed by a demand fetch).  Cleared on first demand use so
            "tagged" prefetch triggers fire exactly once per prefetch.
        used: a demand access touched the line since it was installed.
            Drives prefetch-accuracy stats and the paper's §7 rule: a
            bypass-pending line is installed into the L2 on eviction iff
            ``used``.
        arrival: cycle at which the line's fill completes.  A demand access
            before ``arrival`` stalls for the residual latency (late — but
            partially useful — prefetch).
        bypass_pending: the line's fill bypassed the L2 and will be
            installed there on eviction if proven useful (§7).
        from_memory: the fill was sourced from memory (vs. an L2 hit);
            distinguishes prefetches that removed an L2 miss for the
            L2-coverage metric.
        useless_hint: (L2 lines only) the line was previously prefetched
            into the L1I and evicted unused.  With the Luk & Mowry-style
            re-prefetch filter enabled (paper §2.4), prefetches for lines
            carrying this hint are dropped; a demand use clears it.
        provenance: opaque token identifying which prefetcher component
            predicted the line (used to credit the discontinuity table's
            eviction counter on first use).
    """

    __slots__ = (
        "prefetched",
        "used",
        "arrival",
        "bypass_pending",
        "from_memory",
        "useless_hint",
        "provenance",
    )

    def __init__(
        self,
        prefetched: bool = False,
        used: bool = False,
        arrival: int = 0,
        bypass_pending: bool = False,
        from_memory: bool = False,
        useless_hint: bool = False,
        provenance: Optional[Tuple] = None,
    ) -> None:
        self.prefetched = prefetched
        self.used = used
        self.arrival = arrival
        self.bypass_pending = bypass_pending
        self.from_memory = from_memory
        self.useless_hint = useless_hint
        self.provenance = provenance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.prefetched:
            flags.append("prefetched")
        if self.used:
            flags.append("used")
        if self.bypass_pending:
            flags.append("bypass_pending")
        return f"LineState({', '.join(flags) or 'demand'}, arrival={self.arrival})"
