"""Set-associative cache substrate.

The caches operate on *line indices* (byte address >> line shift); the
line size is fixed per hierarchy and shared by the instruction stream, the
data stream and the unified L2 so that a single L2 object can hold both
kinds of lines (the coupling behind the paper's pollution study).

Per-line metadata (:class:`LineState`) carries the prefetch bookkeeping the
paper's schemes need: the *prefetched* bit (tagged prefetch triggers), the
*used* bit (prefetch-accuracy accounting and the bypass install decision),
the *arrival* cycle (partial-latency hiding for late prefetches) and the
*bypass-pending* bit (L2 install deferred until proven useful).
"""

from repro.caches.cache import CacheStats, SetAssociativeCache
from repro.caches.config import DEFAULT_HIERARCHY, CacheConfig, HierarchyConfig
from repro.caches.line import LineState
from repro.caches.missclass import MissBreakdown
from repro.caches.mshr import OutstandingRequestTracker

__all__ = [
    "LineState",
    "SetAssociativeCache",
    "CacheStats",
    "CacheConfig",
    "HierarchyConfig",
    "DEFAULT_HIERARCHY",
    "MissBreakdown",
    "OutstandingRequestTracker",
]
