"""The set-associative cache model.

Keys are *line indices* (byte address >> line shift).  Each set is an
``OrderedDict`` ordered from least- to most-recently used, giving O(1)
lookup, recency update (``move_to_end``) and LRU eviction (``popitem``).

Replacement is LRU by default — matching the paper's simulator — with
``fifo``, ``plru`` (tree pseudo-LRU, the common hardware approximation)
and ``random`` available for sensitivity studies
(``ablation-replacement``).  Direct-mapped caches are simply
``associativity=1``.

The ``fifo`` and ``plru`` variants reuse the OrderedDict sets: FIFO simply
never refreshes recency; tree-PLRU keeps a per-set bit tree indexed by way
and maps victim ways back to keys.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import islice
from typing import Iterator, Optional, Tuple

from repro.caches.config import CacheConfig
from repro.caches.line import LineState
from repro.util.rng import SplitMix64


@dataclass
class CacheStats:
    """Raw access counters (semantic classification lives in the engine)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    installs: int = 0
    evictions: int = 0

    @property
    def miss_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups

    def reset(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.evictions = 0


class SetAssociativeCache:
    """A set-associative cache of :class:`LineState` entries."""

    __slots__ = (
        "name",
        "config",
        "stats",
        "_sets",
        "_set_mask",
        "_assoc",
        "_policy",
        "_is_lru",
        "_is_plru",
        "_evict_in_order",
        "_rng",
        "_plru_bits",
        "_plru_ways",
    )

    POLICIES = ("lru", "fifo", "plru", "random")

    def __init__(
        self,
        name: str,
        config: CacheConfig,
        policy: str = "lru",
        rng_seed: int = 0,
    ) -> None:
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown replacement policy {policy!r}; available: {self.POLICIES}"
            )
        if policy == "plru" and (config.associativity & (config.associativity - 1)):
            raise ValueError("plru requires power-of-two associativity")
        self.name = name
        self.config = config
        self.stats = CacheStats()
        self._sets = [OrderedDict() for _ in range(config.n_sets)]
        self._set_mask = config.n_sets - 1
        self._assoc = config.associativity
        self._policy = policy
        # The policy is fixed for the cache's lifetime; lookup/install/touch
        # run once per simulated access, so they branch on these booleans
        # instead of re-comparing the policy string.
        self._is_lru = policy == "lru"
        self._is_plru = policy == "plru"
        self._evict_in_order = policy in ("lru", "fifo")
        self._rng = SplitMix64(rng_seed) if policy == "random" else None
        if policy == "plru":
            # Per set: tree bits (assoc-1 of them) and way -> key mapping.
            self._plru_bits = [[0] * max(1, config.associativity - 1) for _ in range(config.n_sets)]
            self._plru_ways = [[None] * config.associativity for _ in range(config.n_sets)]
        else:
            self._plru_bits = None
            self._plru_ways = None

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #

    def lookup(self, line: int, update_recency: bool = True) -> Optional[LineState]:
        """Return the line's state on a hit (None on a miss).

        Counts the access; updates LRU recency unless *update_recency* is
        False (prefetch L2 hits under the bypass policy deliberately avoid
        promoting the line — see :mod:`repro.core.l2policy`).
        """
        stats = self.stats
        stats.lookups += 1
        cache_set = self._sets[line & self._set_mask]
        state = cache_set.get(line)
        if state is None:
            stats.misses += 1
            return None
        stats.hits += 1
        if update_recency:
            if self._is_lru:
                cache_set.move_to_end(line)
            elif self._is_plru:
                self._plru_touch(line)
        return state

    def probe(self, line: int) -> Optional[LineState]:
        """Tag check with no side effects (no stats, no recency update).

        This is the prefetcher's tag-port inspection: "is the line already
        in the cache?" (§4.1).
        """
        return self._sets[line & self._set_mask].get(line)

    def install(self, line: int, state: LineState) -> Optional[Tuple[int, LineState]]:
        """Insert *line*; return the evicted ``(line, state)`` if any.

        If the line is already resident its state object is replaced and
        recency refreshed (no eviction).
        """
        self.stats.installs += 1
        set_index = line & self._set_mask
        cache_set = self._sets[set_index]
        if line in cache_set:
            cache_set[line] = state
            if self._is_lru:
                cache_set.move_to_end(line)
            elif self._is_plru:
                self._plru_touch(line)
            return None
        victim = None
        if len(cache_set) >= self._assoc:
            victim = self._evict(cache_set, set_index)
        cache_set[line] = state
        if self._is_plru:
            ways = self._plru_ways[set_index]
            way = ways.index(None)
            ways[way] = line
            self._plru_update_bits(set_index, way)
        return victim

    def touch(self, line: int) -> None:
        """Refresh replacement recency only (no stats).  No-op if absent."""
        cache_set = self._sets[line & self._set_mask]
        if line not in cache_set:
            return
        if self._is_lru:
            cache_set.move_to_end(line)
        elif self._is_plru:
            self._plru_touch(line)

    def invalidate(self, line: int) -> Optional[LineState]:
        """Remove *line* if resident; return its state."""
        set_index = line & self._set_mask
        state = self._sets[set_index].pop(line, None)
        if state is not None and self._is_plru:
            ways = self._plru_ways[set_index]
            ways[ways.index(line)] = None
        return state

    def _evict(self, cache_set: OrderedDict, set_index: int) -> Tuple[int, LineState]:
        self.stats.evictions += 1
        if self._evict_in_order:
            return cache_set.popitem(last=False)
        if self._is_plru:
            way = self._plru_victim_way(set_index)
            ways = self._plru_ways[set_index]
            victim_key = ways[way]
            ways[way] = None
            return victim_key, cache_set.pop(victim_key)
        # Same victim the list()[k] form selected, without materializing the
        # whole set on every eviction.
        k = self._rng.randrange(len(cache_set))
        victim_key = next(islice(iter(cache_set), k, None))
        return victim_key, cache_set.pop(victim_key)

    # ------------------------------------------------------------------ #
    # Tree pseudo-LRU helpers
    # ------------------------------------------------------------------ #

    def _plru_touch(self, line: int) -> None:
        set_index = line & self._set_mask
        way = self._plru_ways[set_index].index(line)
        self._plru_update_bits(set_index, way)

    def _plru_update_bits(self, set_index: int, way: int) -> None:
        """Point every tree node on the way's path *away* from it."""
        if self._assoc == 1:
            return
        bits = self._plru_bits[set_index]
        node = 0
        low, high = 0, self._assoc
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                bits[node] = 1  # victim search should go right
                node = 2 * node + 1
                high = mid
            else:
                bits[node] = 0  # victim search should go left
                node = 2 * node + 2
                low = mid
            if node >= len(bits):
                break

    def _plru_victim_way(self, set_index: int) -> int:
        """Follow the tree bits to the pseudo-least-recently-used way."""
        if self._assoc == 1:
            return 0
        bits = self._plru_bits[set_index]
        node = 0
        low, high = 0, self._assoc
        while high - low > 1:
            mid = (low + high) // 2
            if node < len(bits) and bits[node] == 0:
                high = mid
                node = 2 * node + 1
            else:
                low = mid
                node = 2 * node + 2
        return low

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __contains__(self, line: int) -> bool:
        return line in self._sets[line & self._set_mask]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterator[Tuple[int, LineState]]:
        """Yield all resident ``(line, state)`` pairs (test/debug helper)."""
        for cache_set in self._sets:
            yield from cache_set.items()

    def set_occupancy(self, line: int) -> int:
        """Number of resident lines in the set that *line* maps to."""
        return len(self._sets[line & self._set_mask])

    def flush(self) -> None:
        """Empty the cache (statistics are left untouched)."""
        for cache_set in self._sets:
            cache_set.clear()
        if self._is_plru:
            for bits in self._plru_bits:
                for index in range(len(bits)):
                    bits[index] = 0
            for ways in self._plru_ways:
                for index in range(len(ways)):
                    ways[index] = None
