"""Cache and hierarchy configuration.

:data:`DEFAULT_HIERARCHY` is the paper's §5 baseline: per-core 32KB 4-way
64B-line L1 instruction and data caches, and a unified 2MB 4-way 64B-line
L2 (shared by all cores of a CMP).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.units import KB, MB, format_size
from repro.util.validation import check_positive, check_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache."""

    capacity_bytes: int
    associativity: int
    line_size: int

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("associativity", self.associativity)
        check_power_of_two("line_size", self.line_size)
        n_lines = self.capacity_bytes // self.line_size
        if n_lines * self.line_size != self.capacity_bytes:
            raise ValueError("capacity must be a multiple of the line size")
        if n_lines % self.associativity != 0:
            raise ValueError(
                f"capacity {self.capacity_bytes} / line {self.line_size} is not "
                f"divisible into {self.associativity}-way sets"
            )
        check_power_of_two("number of sets", self.n_sets)

    @property
    def n_lines(self) -> int:
        return self.capacity_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity

    @property
    def line_shift(self) -> int:
        return self.line_size.bit_length() - 1

    def describe(self) -> str:
        return (
            f"{format_size(self.capacity_bytes)} {self.associativity}-way "
            f"{self.line_size}B-line"
        )


@dataclass(frozen=True)
class HierarchyConfig:
    """Per-core L1s plus the (possibly shared) unified L2."""

    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig

    def __post_init__(self) -> None:
        if not (self.l1i.line_size == self.l1d.line_size == self.l2.line_size):
            raise ValueError(
                "all caches must share one line size (the unified L2 holds both "
                "instruction and data lines)"
            )

    @property
    def line_size(self) -> int:
        return self.l2.line_size

    def with_l1i(self, **kwargs: int) -> "HierarchyConfig":
        """Return a copy with the L1I geometry overridden.

        When the line size changes, all levels change together (the paper's
        Figure 1 line-size sweep varies the instruction-cache line size; we
        keep the hierarchy's single-line-size invariant by moving all
        levels, which preserves the L1I miss-rate trend under study).
        """
        if "line_size" in kwargs:
            line = kwargs["line_size"]
            return HierarchyConfig(
                l1i=replace(self.l1i, **kwargs),
                l1d=replace(self.l1d, line_size=line),
                l2=replace(self.l2, line_size=line),
            )
        return replace(self, l1i=replace(self.l1i, **kwargs))

    def with_l2(self, **kwargs: int) -> "HierarchyConfig":
        """Return a copy with the L2 geometry overridden."""
        return replace(self, l2=replace(self.l2, **kwargs))


DEFAULT_HIERARCHY = HierarchyConfig(
    l1i=CacheConfig(capacity_bytes=32 * KB, associativity=4, line_size=64),
    l1d=CacheConfig(capacity_bytes=32 * KB, associativity=4, line_size=64),
    l2=CacheConfig(capacity_bytes=2 * MB, associativity=4, line_size=64),
)
