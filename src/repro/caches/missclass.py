"""Per-transition-kind miss accounting (the paper's Figure 3 breakdown)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.isa.classify import MissClass, classify_transition, kind_label
from repro.isa.kinds import TransitionKind


class MissBreakdown:
    """Counts demand misses by :class:`~repro.isa.TransitionKind`.

    Internally a flat list indexed by the kind's integer value, because the
    hot path increments it once per miss.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts = [0] * len(TransitionKind)

    def record(self, kind: int) -> None:
        self._counts[kind] += 1

    def counts(self) -> List[int]:
        """Plain per-kind counts, indexed by the kind's integer value."""
        return list(self._counts)

    @classmethod
    def from_counts(cls, counts: Sequence[int]) -> "MissBreakdown":
        """Rebuild a breakdown from :meth:`counts` output (serialization)."""
        if len(counts) != len(TransitionKind):
            raise ValueError(
                f"expected {len(TransitionKind)} counts, got {len(counts)}"
            )
        breakdown = cls()
        breakdown._counts = [int(value) for value in counts]
        return breakdown

    def reset(self) -> None:
        for index in range(len(self._counts)):
            self._counts[index] = 0

    @property
    def total(self) -> int:
        return sum(self._counts)

    def count(self, kind: TransitionKind) -> int:
        return self._counts[int(kind)]

    def by_kind(self) -> Dict[TransitionKind, int]:
        """Return a kind → count mapping (all kinds present, even zeros)."""
        return {kind: self._counts[int(kind)] for kind in TransitionKind}

    def by_class(self) -> Dict[MissClass, int]:
        """Aggregate into the coarse sequential/branch/function/trap classes."""
        result = {cls: 0 for cls in MissClass}
        for kind in TransitionKind:
            result[classify_transition(kind)] += self._counts[int(kind)]
        return result

    def fractions(self) -> Dict[TransitionKind, float]:
        """Per-kind fractions of all misses (zeros if no misses)."""
        total = self.total
        if total == 0:
            return {kind: 0.0 for kind in TransitionKind}
        return {kind: self._counts[int(kind)] / total for kind in TransitionKind}

    def merged_with(self, others: Iterable["MissBreakdown"]) -> "MissBreakdown":
        """Return a new breakdown summing self with *others* (CMP roll-up)."""
        merged = MissBreakdown()
        merged._counts = list(self._counts)
        for other in others:
            for index, value in enumerate(other._counts):
                merged._counts[index] += value
        return merged

    def format_table(self) -> str:
        """Human-readable table using the paper's category labels."""
        total = self.total
        rows = []
        for kind in TransitionKind:
            count = self._counts[int(kind)]
            share = 100.0 * count / total if total else 0.0
            rows.append(f"  {kind_label(kind):<18} {count:>10}  {share:5.1f}%")
        return "\n".join(rows)
