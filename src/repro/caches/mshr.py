"""Outstanding-request tracking (a simplified MSHR file).

The engine uses this to bound the number of prefetch fills in flight per
core.  Entries are (line, completion-cycle) pairs; completed entries are
pruned lazily on each query, so the structure stays tiny (the cap is 16 by
default) and costs O(outstanding) per operation.
"""

from __future__ import annotations

from typing import Dict


class OutstandingRequestTracker:
    """Tracks fills in flight, bounded by a capacity."""

    __slots__ = ("_capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: Dict[int, int] = {}

    def _prune(self, now: int) -> None:
        if not self._entries:
            return
        done = [line for line, arrival in self._entries.items() if arrival <= now]
        for line in done:
            del self._entries[line]

    def can_accept(self, now: int) -> bool:
        """True if a new request can be tracked at cycle *now*."""
        self._prune(now)
        return len(self._entries) < self._capacity

    def add(self, line: int, arrival: int, now: int) -> None:
        """Track a fill for *line* completing at *arrival*.

        Raises ``RuntimeError`` when full — callers must check
        :meth:`can_accept` first (the engine throttles prefetch issue on a
        full MSHR file, as real hardware does).
        """
        self._prune(now)
        if len(self._entries) >= self._capacity:
            raise RuntimeError("MSHR file full")
        self._entries[line] = arrival

    def outstanding(self, now: int) -> int:
        self._prune(now)
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity
