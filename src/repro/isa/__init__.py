"""Mini-ISA: the control-transfer taxonomy of the paper's SPARC traces.

The simulator never executes instruction semantics; the prefetchers under
study react only to the fetch-line stream and to *why* the stream moved to a
new cache line.  This package defines that "why" — the transition kinds of
the paper's Figure 3 (sequential, conditional branch taken-forward /
taken-backward / not-taken, unconditional branch, call, jump, return, trap)
— plus the classification helpers used to attribute misses to categories.
"""

from repro.isa.classify import (
    MissClass,
    classify_transition,
    is_discontinuity,
    kind_label,
)
from repro.isa.kinds import (
    ALL_KINDS,
    BRANCH_KINDS,
    FUNCTION_CALL_KINDS,
    SEQUENTIAL_KINDS,
    TransitionKind,
)

__all__ = [
    "TransitionKind",
    "BRANCH_KINDS",
    "FUNCTION_CALL_KINDS",
    "SEQUENTIAL_KINDS",
    "ALL_KINDS",
    "MissClass",
    "classify_transition",
    "is_discontinuity",
    "kind_label",
]
