"""Miss classification: map fetch-stream transitions to miss classes.

The paper groups miss categories three ways (Figures 3 and 4):

- the fine-grained per-kind breakdown of Figure 3;
- the coarse *sequential / branch / function-call / trap* grouping used by
  the Figure 4 limit study ("eliminate sequential misses only", "branch
  only", "function only", and combinations).

``MissClass`` is the coarse grouping; ``classify_transition`` maps a
:class:`~repro.isa.kinds.TransitionKind` to it.
"""

from __future__ import annotations

from enum import Enum, unique

from repro.isa.kinds import BRANCH_KINDS, FUNCTION_CALL_KINDS, TransitionKind


@unique
class MissClass(Enum):
    """Coarse miss grouping used by the Figure 4 limit study."""

    SEQUENTIAL = "sequential"
    BRANCH = "branch"
    FUNCTION = "function"
    TRAP = "trap"


_CLASS_BY_KIND = {}
for _kind in TransitionKind:
    if _kind is TransitionKind.SEQUENTIAL:
        _CLASS_BY_KIND[_kind] = MissClass.SEQUENTIAL
    elif _kind in BRANCH_KINDS:
        _CLASS_BY_KIND[_kind] = MissClass.BRANCH
    elif _kind in FUNCTION_CALL_KINDS:
        _CLASS_BY_KIND[_kind] = MissClass.FUNCTION
    else:
        _CLASS_BY_KIND[_kind] = MissClass.TRAP


def classify_transition(kind: TransitionKind) -> MissClass:
    """Return the coarse :class:`MissClass` for a transition kind."""
    return _CLASS_BY_KIND[kind]


def is_discontinuity(kind: TransitionKind, source_line: int, target_line: int) -> bool:
    """Return True when a transition is a *discontinuity* for the prefetcher.

    Per the paper (§4): a control-transfer instruction causes a discontinuity
    when it moves the fetch stream to a non-sequential cache line.
    Transitions within the same line are invisible at line granularity and
    are never passed to this function; the checks here are:

    - plain sequential fall-through (``target == source + 1`` with a
      sequential or not-taken kind) is *not* a discontinuity;
    - any control transfer landing on a line other than the next sequential
      line is a discontinuity — including backward branches to the same
      function and calls/returns/jumps/traps.

    A taken branch whose target happens to be the next sequential line is
    treated as sequential: the next-line prefetcher already covers it, and a
    (source → source+1) table entry would waste discontinuity-table space.
    """
    if target_line == source_line + 1:
        return False
    if kind is TransitionKind.SEQUENTIAL:
        # Sequential fall-through always lands on source + 1 by construction;
        # tolerate callers handing us an inconsistent pair.
        return False
    if kind is TransitionKind.COND_NOT_TAKEN:
        return False
    return True


_LABELS = {
    TransitionKind.SEQUENTIAL: "Sequential",
    TransitionKind.COND_TAKEN_FWD: "Cond branch (tf)",
    TransitionKind.COND_TAKEN_BWD: "Cond branch (tb)",
    TransitionKind.COND_NOT_TAKEN: "Cond branch (nt)",
    TransitionKind.UNCOND_BRANCH: "Uncond branch",
    TransitionKind.CALL: "Call",
    TransitionKind.JUMP: "Jump",
    TransitionKind.RETURN: "Return",
    TransitionKind.TRAP: "Trap",
}


def kind_label(kind: TransitionKind) -> str:
    """Return the paper's Figure 3 legend label for a transition kind."""
    return _LABELS[kind]
