"""Fetch-stream transition kinds.

A *transition* describes how the fetch stream arrived at the current cache
line from the previous one.  The taxonomy follows the paper's Figure 3
exactly:

- ``SEQUENTIAL``      — straight-line fall-through across a line boundary
  with no control-transfer instruction at the boundary.
- ``COND_TAKEN_FWD``  — conditional branch, taken, forward target.
- ``COND_TAKEN_BWD``  — conditional branch, taken, backward target.
- ``COND_NOT_TAKEN``  — conditional branch, not taken, whose fall-through
  crossed into a new line (attributed to the branch, not to "sequential").
- ``UNCOND_BRANCH``   — unconditional PC-relative branch.
- ``CALL``            — direct function call (SPARC ``call``; target embedded
  in the instruction).
- ``JUMP``            — indirect jump (SPARC ``jmpl``; register target).
- ``RETURN``          — function return (indirect).
- ``TRAP``            — trap to a handler.

We use an ``IntEnum`` so transitions can be stored as small ints inside
trace tuples while remaining readable at API boundaries.
"""

from __future__ import annotations

from enum import IntEnum, unique


@unique
class TransitionKind(IntEnum):
    """How the fetch stream arrived at a cache line."""

    SEQUENTIAL = 0
    COND_TAKEN_FWD = 1
    COND_TAKEN_BWD = 2
    COND_NOT_TAKEN = 3
    UNCOND_BRANCH = 4
    CALL = 5
    JUMP = 6
    RETURN = 7
    TRAP = 8

    @property
    def is_branch(self) -> bool:
        """True for the conditional/unconditional branch kinds."""
        return self in BRANCH_KINDS

    @property
    def is_function_call(self) -> bool:
        """True for the call / jump / return kinds (function-call related)."""
        return self in FUNCTION_CALL_KINDS

    @property
    def is_sequential(self) -> bool:
        return self is TransitionKind.SEQUENTIAL


BRANCH_KINDS = frozenset(
    {
        TransitionKind.COND_TAKEN_FWD,
        TransitionKind.COND_TAKEN_BWD,
        TransitionKind.COND_NOT_TAKEN,
        TransitionKind.UNCOND_BRANCH,
    }
)

FUNCTION_CALL_KINDS = frozenset(
    {
        TransitionKind.CALL,
        TransitionKind.JUMP,
        TransitionKind.RETURN,
    }
)

SEQUENTIAL_KINDS = frozenset({TransitionKind.SEQUENTIAL})

ALL_KINDS = tuple(TransitionKind)
