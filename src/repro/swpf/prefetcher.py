"""The runtime side of software instruction prefetching.

:class:`SoftwarePrefetcher` fires the compiler's planned prefetches
whenever their trigger line is demand-fetched (software prefetch
instructions execute with the code, hit or miss), and runs a next-N-line
hardware prefetcher for the sequential misses — Luk & Mowry's division of
labour [13].

Unlike the hardware schemes, executed software prefetches cost
*instructions*: the engine charges
``instruction_overhead_cycles`` execution cycles per planned candidate it
fires, modelling the inserted prefetch instructions' occupancy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetch.base import PrefetchCandidate, Prefetcher
from repro.swpf.analysis import PrefetchPlan, build_prefetch_plan
from repro.trace.synth.program import build_program
from repro.trace.synth.walker import CORE_CODE_STRIDE
from repro.trace.synth.workloads import get_profile
from repro.util.rng import derive_seed

_SEQ_PROVENANCE = ("seq",)
_SW_PROVENANCE = ("sw",)


class SoftwarePrefetcher(Prefetcher):
    """Planned software prefetches + next-N-line hardware sequential."""

    name = "software"

    def __init__(
        self,
        plan: PrefetchPlan,
        sequential_degree: int = 4,
        instruction_overhead_cycles: float = 0.33,
    ) -> None:
        """Args:
            plan: the compiler's :class:`PrefetchPlan`.
            sequential_degree: degree of the accompanying hardware
                next-N-line prefetcher (0 disables it).
            instruction_overhead_cycles: execution cycles charged per
                fired software prefetch (one extra instruction at the
                core's issue width by default).
        """
        if sequential_degree < 0:
            raise ValueError(f"sequential_degree must be >= 0, got {sequential_degree}")
        if instruction_overhead_cycles < 0:
            raise ValueError("instruction_overhead_cycles must be >= 0")
        self.plan = plan
        self.sequential_degree = sequential_degree
        self.instruction_overhead_cycles = instruction_overhead_cycles
        #: executed software-prefetch instructions (for overhead stats).
        self.sw_prefetches_executed = 0
        self._pending_overhead = 0.0

    def on_demand_fetch(self, line, was_miss, first_use_of_prefetch, kind):
        candidates: List[PrefetchCandidate] = []
        if self.sequential_degree and (was_miss or first_use_of_prefetch):
            candidates.extend(
                PrefetchCandidate(line + depth, _SEQ_PROVENANCE)
                for depth in range(1, self.sequential_degree + 1)
            )
        planned = self.plan.targets_for(line)
        if planned:
            self.sw_prefetches_executed += len(planned)
            self._pending_overhead += len(planned) * self.instruction_overhead_cycles
            candidates.extend(
                PrefetchCandidate(target, _SW_PROVENANCE) for target in planned
            )
        return candidates

    def consume_overhead_cycles(self) -> float:
        pending = self._pending_overhead
        self._pending_overhead = 0.0
        return pending

    @property
    def overhead_cycles(self) -> float:
        """Total execution-cycle overhead of the fired prefetches."""
        return self.sw_prefetches_executed * self.instruction_overhead_cycles


def software_prefetcher_for(
    workload: str,
    seed: int,
    core: int = 0,
    line_size: int = 64,
    sequential_degree: int = 4,
    min_distance: Optional[int] = None,
    max_distance: Optional[int] = None,
    min_probability: Optional[float] = None,
) -> SoftwarePrefetcher:
    """Build the software prefetcher matching a generated workload trace.

    Rebuilds the same static program the trace generator used (same
    structure-seed derivation), runs the planning analysis on it, and
    applies the per-core private-text rebasing so the plan's lines match
    the core's trace.
    """
    profile = get_profile(workload)
    program = build_program(profile, derive_seed(seed, "structure", profile.name))
    kwargs = {}
    if min_distance is not None:
        kwargs["min_distance"] = min_distance
    if max_distance is not None:
        kwargs["max_distance"] = max_distance
    if min_probability is not None:
        kwargs["min_probability"] = min_probability
    plan = build_prefetch_plan(program, line_size=line_size, **kwargs)
    if core:
        shift_lines = (core * CORE_CODE_STRIDE) >> plan.line_shift
        plan = plan.rebased(program.private_text_start >> plan.line_shift, shift_lines)
    return SoftwarePrefetcher(plan, sequential_degree=sequential_degree)
