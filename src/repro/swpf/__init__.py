"""Software (compiler-inserted) instruction prefetching.

The paper's §2.3 discusses Luk & Mowry's cooperative approach [13]: the
compiler inserts instruction-prefetch instructions for *non-sequential*
targets ahead of the control transfer, leaving sequential misses to a
simple hardware prefetcher.  This package implements that scheme against
our synthetic programs:

- :mod:`repro.swpf.analysis` — the "compiler": a probability-weighted
  forward walk of the static CFG/call graph that plans, for each basic
  block, which distant target lines to prefetch (far enough ahead to
  cover latency, likely enough to be worth the instruction overhead);
- :mod:`repro.swpf.prefetcher` — the runtime: a
  :class:`~repro.prefetch.Prefetcher` that fires the planned prefetches
  whenever the trigger block's line is fetched (software prefetches
  execute unconditionally with the code), paired with next-N-line
  hardware prefetching for the sequential misses, and charging an
  instruction-overhead cost per executed prefetch.

This enables the §2.3 comparison: software non-sequential prefetching +
sequential HW vs. the paper's all-hardware discontinuity prefetcher.
"""

from repro.swpf.analysis import PrefetchPlan, build_prefetch_plan
from repro.swpf.prefetcher import SoftwarePrefetcher, software_prefetcher_for

__all__ = [
    "PrefetchPlan",
    "build_prefetch_plan",
    "SoftwarePrefetcher",
    "software_prefetcher_for",
]
