"""The "compiler" side of software instruction prefetching.

:func:`build_prefetch_plan` performs a probability-weighted forward walk
from every basic block of a program, asking: *which distant cache lines is
execution likely to reach within the prefetch window?*  For each block it
plans prefetches for targets that are

- **far enough ahead** (``min_distance`` instructions) that the prefetch
  has time to cover a good part of the miss latency;
- **near enough** (``max_distance``) that the line won't be evicted again
  before use;
- **likely enough** (path probability >= ``min_probability``) to justify
  the instruction overhead; and
- **non-sequential** relative to the trigger block (within
  ``sequential_window`` lines the hardware next-N-line prefetcher already
  covers them — exactly Luk & Mowry's division of labour).

The walk uses the static branch probabilities the generator assigned —
i.e. perfect profile feedback, which is *generous* to the software scheme,
making the comparison against the paper's hardware prefetcher conservative.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.trace.synth.program import Program, TermKind

#: default analysis parameters (instruction distances).
DEFAULT_MIN_DISTANCE = 24
DEFAULT_MAX_DISTANCE = 160
DEFAULT_MIN_PROBABILITY = 0.20
DEFAULT_SEQUENTIAL_WINDOW = 4
#: cap on (block, probability) frontier states explored per source block.
_MAX_STATES_PER_BLOCK = 64


class PrefetchPlan:
    """Mapping from trigger line to the planned target lines."""

    __slots__ = ("line_shift", "_targets_by_line", "n_sites", "n_targets")

    def __init__(self, line_shift: int, targets_by_line: Dict[int, Tuple[int, ...]]) -> None:
        self.line_shift = line_shift
        self._targets_by_line = targets_by_line
        self.n_sites = len(targets_by_line)
        self.n_targets = sum(len(targets) for targets in targets_by_line.values())

    def targets_for(self, line: int) -> Tuple[int, ...]:
        """Planned prefetch target lines when *line* is fetched."""
        return self._targets_by_line.get(line, ())

    def __len__(self) -> int:
        return self.n_sites

    def rebased(self, boundary_line: int, shift_lines: int) -> "PrefetchPlan":
        """Shift all lines at/above *boundary_line* by *shift_lines*.

        Mirrors the per-core private-text rebasing of
        :func:`repro.trace.synth.walker.generate_program_trace`, so a plan
        built for core 0 can be reused on any core.
        """

        def move(line: int) -> int:
            return line + shift_lines if line >= boundary_line else line

        return PrefetchPlan(
            self.line_shift,
            {
                move(line): tuple(move(target) for target in targets)
                for line, targets in self._targets_by_line.items()
            },
        )


def build_prefetch_plan(
    program: Program,
    line_size: int = 64,
    min_distance: int = DEFAULT_MIN_DISTANCE,
    max_distance: int = DEFAULT_MAX_DISTANCE,
    min_probability: float = DEFAULT_MIN_PROBABILITY,
    sequential_window: int = DEFAULT_SEQUENTIAL_WINDOW,
) -> PrefetchPlan:
    """Plan software prefetches for every block of *program*.

    Returns a :class:`PrefetchPlan` keyed by the trigger block's cache
    line.  Multiple blocks in one line merge their plans (the trigger in
    hardware terms is the line fetch).
    """
    if min_distance < 0 or max_distance <= min_distance:
        raise ValueError(
            f"invalid distance window [{min_distance}, {max_distance}]"
        )
    if not 0.0 < min_probability <= 1.0:
        raise ValueError(f"min_probability must be in (0, 1], got {min_probability}")
    shift = line_size.bit_length() - 1

    targets_by_line: Dict[int, set] = {}
    functions = program.functions
    for fn in functions:
        blocks = fn.blocks
        for index, block in enumerate(blocks):
            trigger_line = block.addr >> shift
            found = _reachable_targets(
                program,
                fn.index,
                index,
                shift,
                min_distance,
                max_distance,
                min_probability,
            )
            if not found:
                continue
            bucket = targets_by_line.setdefault(trigger_line, set())
            for target_line in found:
                # Leave near-sequential targets to the HW prefetcher.
                if 0 <= target_line - trigger_line <= sequential_window:
                    continue
                bucket.add(target_line)

    return PrefetchPlan(
        shift,
        {
            line: tuple(sorted(targets))
            for line, targets in targets_by_line.items()
            if targets
        },
    )


def _reachable_targets(
    program: Program,
    fn_index: int,
    block_index: int,
    shift: int,
    min_distance: int,
    max_distance: int,
    min_probability: float,
) -> List[int]:
    """Lines reachable from (fn, block) within the distance window.

    Breadth-first expansion of (function, block, distance, probability)
    states.  Call sites descend into the callee; returns are treated as
    path ends (the caller's continuation is planned from its own blocks).
    """
    functions = program.functions
    start_block = functions[fn_index].blocks[block_index]
    start_line = start_block.addr >> shift

    frontier: List[Tuple[int, int, int, float]] = [
        (fn_index, block_index, 0, 1.0)
    ]
    found: Dict[int, float] = {}
    states = 0

    while frontier and states < _MAX_STATES_PER_BLOCK:
        fn_i, blk_i, distance, probability = frontier.pop()
        states += 1
        blocks = functions[fn_i].blocks
        block = blocks[blk_i]

        if distance >= min_distance:
            line = block.addr >> shift
            if line != start_line:
                previous = found.get(line, 0.0)
                if probability > previous:
                    found[line] = probability

        next_distance = distance + block.ninstr
        if next_distance > max_distance:
            continue

        term = block.term
        successors: List[Tuple[int, int, float]] = []
        if term == TermKind.FALLTHROUGH:
            if blk_i + 1 < len(blocks):
                successors.append((fn_i, blk_i + 1, probability))
        elif term == TermKind.COND:
            taken = probability * block.taken_prob
            not_taken = probability * (1.0 - block.taken_prob)
            successors.append((fn_i, block.target, taken))
            if blk_i + 1 < len(blocks):
                successors.append((fn_i, blk_i + 1, not_taken))
        elif term == TermKind.UNCOND:
            successors.append((fn_i, block.target, probability))
        elif term == TermKind.CALL:
            share = probability / len(block.callees)
            for callee in block.callees:
                successors.append((callee, 0, share))
        elif term == TermKind.SWITCH:
            share = probability / len(block.switch_targets)
            for target in block.switch_targets:
                successors.append((fn_i, target, share))
        # RETURN: path ends here for this analysis.

        for next_fn, next_blk, next_prob in successors:
            if next_prob >= min_probability:
                frontier.append((next_fn, next_blk, next_distance, next_prob))

    return [line for line, probability in found.items() if probability >= min_probability]
