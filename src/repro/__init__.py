"""repro — reproduction of "Effective Instruction Prefetching in Chip
Multiprocessors for Modern Commercial Applications" (HPCA 2005).

The package is organised bottom-up:

- :mod:`repro.util`      — small shared helpers (seeded RNG, units, containers).
- :mod:`repro.isa`       — mini-ISA: instruction kinds and the control-transfer
  taxonomy used to categorise instruction-cache misses.
- :mod:`repro.trace`     — trace records, streams, file I/O and the synthetic
  commercial-workload generators (``repro.trace.synth``).
- :mod:`repro.caches`    — set-associative cache substrate with replacement
  policies, per-line prefetch/used metadata and in-flight (MSHR) tracking.
- :mod:`repro.prefetch`  — the prefetcher family: the sequential baselines,
  the history-based target prefetcher and the paper's discontinuity
  prefetcher, plus the prefetch queue and filtering machinery.
- :mod:`repro.core`      — the per-core front-end engine that ties demand
  fetch, prefetch generation, the L2 install policy and timing together.
- :mod:`repro.cmp`       — the chip-multiprocessor system model (shared L2,
  shared off-chip link, multi-core interleaving).
- :mod:`repro.timing`    — the simplified performance model parameters.
- :mod:`repro.eval`      — one experiment driver per paper figure.

Quickstart::

    from repro import quick_run

    result = quick_run(workload="db", prefetcher="discontinuity")
    print(result.summary())
"""

from repro.api import (
    available_prefetchers,
    available_workloads,
    make_prefetcher,
    make_system,
    make_workload_trace,
    quick_run,
)
from repro.version import __version__

__all__ = [
    "__version__",
    "available_prefetchers",
    "available_workloads",
    "make_prefetcher",
    "make_system",
    "make_workload_trace",
    "quick_run",
]
