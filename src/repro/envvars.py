"""The single registry of every ``REPRO_*`` environment variable.

Each variable the harness reads is declared here exactly once: a module
constant whose *name equals its value* (``REPRO_JOBS = "REPRO_JOBS"``)
plus an :class:`EnvVar` metadata record (default and documentation row).
Everything else in the tree imports the constant instead of spelling the
string — lint rule R7 enforces that statically, so a typo'd variable name
(``REPRO_JOB``) can never silently read an empty environment.

The registry is also the single source of the environment table in
``docs/performance.md``: ``scripts/gen_env_docs.py`` regenerates the
marked block from :func:`render_env_table`, and R7 fails lint whenever the
committed block differs from the rendered one — the docs cannot drift.

This module deliberately has **no imports from the rest of the package**
(everything may import it, including ``repro.trace`` which must not depend
on ``repro.eval``) and never reads ``os.environ`` itself: it names the
knobs; the owning modules interpret them.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

# --------------------------------------------------------------------- #
# The constants: name == value, one per knob.  Import these; never spell
# the string at a read site (lint R7).
# --------------------------------------------------------------------- #

REPRO_PROFILE = "REPRO_PROFILE"
REPRO_JOBS = "REPRO_JOBS"
REPRO_CACHE_DIR = "REPRO_CACHE_DIR"
REPRO_DISK_CACHE = "REPRO_DISK_CACHE"
REPRO_COMPILED_TRACES = "REPRO_COMPILED_TRACES"
REPRO_ENGINE_BACKEND = "REPRO_ENGINE_BACKEND"
REPRO_JIT_CACHE_DIR = "REPRO_JIT_CACHE_DIR"
REPRO_TRACE_DIR = "REPRO_TRACE_DIR"
REPRO_TRACE_STORE = "REPRO_TRACE_STORE"
REPRO_EXTERNAL_TRACES = "REPRO_EXTERNAL_TRACES"
REPRO_SYNTH_LOG = "REPRO_SYNTH_LOG"
REPRO_STRICT_EXPECTATIONS = "REPRO_STRICT_EXPECTATIONS"


class EnvVar(NamedTuple):
    """One declared environment knob (name, display default, doc row)."""

    name: str
    #: the default shown in the docs table (display text, not a value the
    #: registry applies — the owning module implements the default).
    default: str
    #: one-cell Markdown description for the docs table.
    description: str


#: every declared variable, in docs-table order.
REGISTRY: Tuple[EnvVar, ...] = (
    EnvVar(
        REPRO_PROFILE,
        "`default`",
        "Experiment scale (`smoke` / `default` / `full`); "
        "`repro-experiment --scale` overrides it per invocation.",
    ),
    EnvVar(
        REPRO_JOBS,
        "CPU count",
        "Worker processes for a batch; `1` forces the serial in-process path "
        "(no pool, no pickling). `repro-experiment --jobs N` overrides it per "
        "invocation.",
    ),
    EnvVar(
        REPRO_CACHE_DIR,
        "`.repro-cache`",
        "Disk-cache directory; safe to share between concurrent invocations "
        "(writes are atomic tmp-file + rename, with the parent process as "
        "single writer; entries are world-readable `0644`).",
    ),
    EnvVar(
        REPRO_DISK_CACHE,
        "`1`",
        "Set to `0`/`off`/`false`/`no` to disable the disk cache entirely.",
    ),
    EnvVar(
        REPRO_COMPILED_TRACES,
        "`1`",
        "Set to `0`/`off`/`false`/`no` to feed the engine raw traces (lazy "
        "per-visit lowering) instead of compiled packed columns.  Results "
        "are bit-identical either way.",
    ),
    EnvVar(
        REPRO_ENGINE_BACKEND,
        "`reference`",
        "Engine backend used when a run asks for `auto` (the default "
        "everywhere): `reference`, `vectorized` or `jit`.  Backends are "
        "bit-identical — this changes speed, not results — so it is *not* "
        "part of any cache key.  Multi-core systems resolve `auto` to "
        "`jit` when a C compiler is available and to `reference` otherwise "
        "(never `vectorized`: its span-of-1 stepping measures ~0.9x "
        "there).  `repro-experiment --backend` overrides it per "
        "invocation; see [Engine backends](#engine-backends).",
    ),
    EnvVar(
        REPRO_JIT_CACHE_DIR,
        "`$REPRO_CACHE_DIR/jit`",
        "Directory caching the jit backend's compiled kernel (one shared "
        "object per kernel-source hash; compile once, load ever after).  "
        "CI caches it keyed on the kernel source hash.",
    ),
    EnvVar(
        REPRO_TRACE_DIR,
        "`$REPRO_CACHE_DIR/traces`",
        "Directory of the compiled trace store (one packed binary file per "
        "`(workload, seed, core, n_instructions, line_size)` key).",
    ),
    EnvVar(
        REPRO_TRACE_STORE,
        "`1`",
        "Set to `0`/`off`/`false`/`no` to skip the on-disk trace store "
        "while keeping the in-memory compiled path.",
    ),
    EnvVar(
        REPRO_EXTERNAL_TRACES,
        "`$REPRO_CACHE_DIR/external`",
        "Directory of ingested external traces: `repro-trace ingest` "
        "writes one RPTRACE1 file plus a JSON manifest (content-addressed "
        "by source SHA-256) per name, and the `external:<name>` trace "
        "source reads them back.",
    ),
    EnvVar(
        REPRO_SYNTH_LOG,
        "unset",
        "Path of a JSON-lines file appended to on every *actual* trace "
        'synthesis (`{"pid", "workload", "n_cores", "seed", '
        '"n_instructions"}`) — observability for "did the workers really '
        'load from the store?".',
    ),
    EnvVar(
        REPRO_STRICT_EXPECTATIONS,
        "unset",
        "Set to `1`/`true`/`yes`/`on` to make `repro-experiment` exit "
        "non-zero when any declared paper-expectation verdict fails (same "
        "as `--strict`).  CI sets it on the replication-check step; see "
        "[experiments.md](experiments.md) for the declared bands.",
    ),
)

#: declared names, for membership checks (lint R7, tests).
DECLARED_NAMES = frozenset(entry.name for entry in REGISTRY)


def render_env_table() -> str:
    """The docs environment table, rendered from the registry.

    ``scripts/gen_env_docs.py`` writes this between the marker comments in
    ``docs/performance.md``; lint R7 recomputes it and fails on any
    difference, so the committed table can never drift from the code.
    """
    lines = [
        "| Variable | Default | Meaning |",
        "| --- | --- | --- |",
    ]
    for entry in REGISTRY:
        lines.append(f"| `{entry.name}` | {entry.default} | {entry.description} |")
    return "\n".join(lines)
