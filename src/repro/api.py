"""High-level convenience API.

Everything here is sugar over the underlying packages; library users doing
custom experiments should reach for :mod:`repro.cmp`, :mod:`repro.core` and
:mod:`repro.trace.synth` directly.
"""

from __future__ import annotations

from typing import List

from repro.cmp.system import System, SystemConfig, SystemResult
from repro.prefetch.base import Prefetcher
from repro.prefetch.registry import PREFETCHER_NAMES, create_prefetcher
from repro.trace.source import source_names, traces_for
from repro.trace.stream import Trace


def available_workloads() -> List[str]:
    """Names of the registered trace sources (synthetic profiles, the
    scenario families and ``"mix"``; ingested external traces are
    additionally addressable as ``external:<name>``)."""
    return source_names()


def available_prefetchers() -> List[str]:
    """Names of the registered prefetch schemes."""
    return list(PREFETCHER_NAMES)


def make_prefetcher(name: str, **overrides) -> Prefetcher:
    """Instantiate a prefetcher by registry name."""
    return create_prefetcher(name, **overrides)


def make_workload_trace(workload: str, seed: int = 42, n_instructions: int = 1_000_000) -> Trace:
    """Produce one single-core trace for any registered trace source."""
    return traces_for(workload, 1, seed, n_instructions)[0]


def make_traces(
    workload: str,
    n_cores: int,
    seed: int,
    n_instructions: int,
) -> List[Trace]:
    """Produce the per-core traces for a workload/core-count combination.

    Resolution goes through the trace-source registry
    (:mod:`repro.trace.source`):

    - ``workload="mix"`` produces the paper's multiprogrammed mix (one of
      the four applications per core, disjoint address spaces);
    - ``workload="external:<name>"`` replays an ingested external trace
      (:mod:`repro.trace.ingest`);
    - otherwise every core runs the *same* program with decorrelated
      transaction sequences (threads of one server application), so cores
      share code in the L2 — exactly the paper's homogeneous CMP setup.

    Unknown names raise ``ValueError`` listing the available sources.
    """
    return traces_for(workload, n_cores, seed, n_instructions)


def make_system(
    workload: str = "db",
    prefetcher: str = "none",
    n_cores: int = 1,
    seed: int = 42,
    n_instructions: int = 1_000_000,
    warm_instructions: int = 250_000,
    **config_overrides,
) -> System:
    """Build a ready-to-run :class:`~repro.cmp.System`.

    ``config_overrides`` are forwarded to :class:`SystemConfig` (e.g.
    ``l2_policy="bypass"``, ``hierarchy=...``, ``offchip_gbps=...``).
    """
    traces = make_traces(workload, n_cores, seed, n_instructions)
    config = SystemConfig(
        n_cores=n_cores,
        prefetcher=prefetcher,
        warm_instructions=warm_instructions,
        **config_overrides,
    )
    return System(config, traces)


def quick_run(
    workload: str = "db",
    prefetcher: str = "discontinuity",
    n_cores: int = 1,
    seed: int = 42,
    n_instructions: int = 600_000,
    warm_instructions: int = 150_000,
    **config_overrides,
) -> SystemResult:
    """Generate, simulate and return results in one call (quickstart API)."""
    system = make_system(
        workload,
        prefetcher,
        n_cores,
        seed,
        n_instructions,
        warm_instructions,
        **config_overrides,
    )
    return system.run()
