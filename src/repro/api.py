"""High-level convenience API.

Everything here is sugar over the underlying packages; library users doing
custom experiments should reach for :mod:`repro.cmp`, :mod:`repro.core` and
:mod:`repro.trace.synth` directly.
"""

from __future__ import annotations

from typing import List

from repro.cmp.system import System, SystemConfig, SystemResult
from repro.prefetch.base import Prefetcher
from repro.prefetch.registry import PREFETCHER_NAMES, create_prefetcher
from repro.trace.stream import Trace
from repro.trace.synth.mix import mixed_traces
from repro.trace.synth.workloads import generate_trace, workload_names


def available_workloads() -> List[str]:
    """Names of the built-in synthetic workloads (plus ``"mix"``)."""
    return workload_names() + ["mix"]


def available_prefetchers() -> List[str]:
    """Names of the registered prefetch schemes."""
    return list(PREFETCHER_NAMES)


def make_prefetcher(name: str, **overrides) -> Prefetcher:
    """Instantiate a prefetcher by registry name."""
    return create_prefetcher(name, **overrides)


def make_workload_trace(workload: str, seed: int = 42, n_instructions: int = 1_000_000) -> Trace:
    """Generate one synthetic workload trace."""
    return generate_trace(workload, seed, n_instructions)


def make_traces(
    workload: str,
    n_cores: int,
    seed: int,
    n_instructions: int,
) -> List[Trace]:
    """Generate the per-core traces for a workload/core-count combination.

    - ``workload="mix"`` produces the paper's multiprogrammed mix (one of
      the four applications per core, disjoint address spaces).
    - otherwise every core runs the *same* program with decorrelated
      transaction sequences (threads of one server application), so cores
      share code in the L2 — exactly the paper's homogeneous CMP setup.
    """
    if workload == "mix":
        names = None
        if n_cores != 4:
            base = workload_names()
            names = [base[i % len(base)] for i in range(n_cores)]
        return mixed_traces(seed, n_instructions, names or ())
    return [
        generate_trace(workload, seed, n_instructions, core=core)
        for core in range(n_cores)
    ]


def make_system(
    workload: str = "db",
    prefetcher: str = "none",
    n_cores: int = 1,
    seed: int = 42,
    n_instructions: int = 1_000_000,
    warm_instructions: int = 250_000,
    **config_overrides,
) -> System:
    """Build a ready-to-run :class:`~repro.cmp.System`.

    ``config_overrides`` are forwarded to :class:`SystemConfig` (e.g.
    ``l2_policy="bypass"``, ``hierarchy=...``, ``offchip_gbps=...``).
    """
    traces = make_traces(workload, n_cores, seed, n_instructions)
    config = SystemConfig(
        n_cores=n_cores,
        prefetcher=prefetcher,
        warm_instructions=warm_instructions,
        **config_overrides,
    )
    return System(config, traces)


def quick_run(
    workload: str = "db",
    prefetcher: str = "discontinuity",
    n_cores: int = 1,
    seed: int = 42,
    n_instructions: int = 600_000,
    warm_instructions: int = 150_000,
    **config_overrides,
) -> SystemResult:
    """Generate, simulate and return results in one call (quickstart API)."""
    system = make_system(
        workload,
        prefetcher,
        n_cores,
        seed,
        n_instructions,
        warm_instructions,
        **config_overrides,
    )
    return system.run()
