"""Timing model parameters (see DESIGN.md §5 for the model itself)."""

from repro.timing.params import DEFAULT_TIMING, TimingParams

__all__ = ["TimingParams", "DEFAULT_TIMING"]
