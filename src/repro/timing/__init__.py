"""Timing model parameters (see DESIGN.md §5 for the model itself)."""

from repro.timing.params import TimingParams, DEFAULT_TIMING

__all__ = ["TimingParams", "DEFAULT_TIMING"]
