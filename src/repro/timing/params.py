"""Parameters of the simplified performance model.

The paper uses a cycle-accurate OoO simulator; we substitute an analytic-
within-simulation model (DESIGN.md §2) whose cycle account is::

    cycles = instructions / issue_width            (back-end issue bound)
           + Σ fetch stalls                        (I-miss latency, minus any
                                                    part hidden by an early
                                                    prefetch fill)
           + Σ exposed data stalls                 (miss latency × exposure
                                                    fraction modelling the
                                                    64-entry ROB's overlap)
           + off-chip queueing delays              (shared-link contention)

Instruction misses stall the front end for (most of) their latency — the
paper's observation that instruction misses are more expensive than data
misses because they stall the pipeline, while data misses overlap.  The
``fetch_stall_exposed_fraction`` (85%) models the slice of each fetch
stall the draining OoO window hides; data misses expose only 25%/38% of
their L2/memory latency (ROB-level MLP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class TimingParams:
    """Latency/throughput parameters (paper §5 values by default)."""

    #: sustained issue width of each OoO core (instructions/cycle).
    issue_width: float = 3.0
    #: additional back-end cycles per instruction covering everything the
    #: simplified model does not simulate explicitly: branch mispredicts
    #: (gshare on branchy commercial code, 16-stage pipeline), load-use
    #: delays and issue-window stalls.  Dilutes the share of CPI that
    #: instruction-fetch stalls represent, keeping prefetcher speedups in
    #: the regime the paper's cycle-accurate OoO simulator reports.
    base_cpi_overhead: float = 0.70
    #: fraction of an instruction-miss stall the core actually loses.  The
    #: 64-entry window keeps draining while the front end refills, hiding a
    #: slice of every fetch stall (the paper quotes its CPI contributions
    #: with the caveat "if the latency cannot be hidden").
    fetch_stall_exposed_fraction: float = 0.85
    #: L1 instruction cache hit latency (cycles); hidden by the pipeline.
    l1_latency: int = 4
    #: unified L2 hit latency (cycles).
    l2_latency: int = 25
    #: memory latency (cycles), excluding off-chip queueing.
    memory_latency: int = 400
    #: core clock (GHz) — converts the off-chip GB/s figures to bytes/cycle.
    clock_ghz: float = 3.0
    #: fraction of an L2-hit data miss's latency the OoO core cannot hide.
    data_l2_exposed_fraction: float = 0.25
    #: fraction of a memory data miss's latency the OoO core cannot hide
    #: (the 64-entry ROB overlaps a good part of the 400 cycles via MLP).
    data_memory_exposed_fraction: float = 0.38
    #: prefetch tag-probe slots per cycle (prefetches only get the tag port
    #: when no demand fetch needs it — §4.1; modest but sufficient rate).
    prefetch_slot_rate: float = 0.5
    #: maximum outstanding prefetch fills per core (MSHR file size).
    prefetch_mshr_capacity: int = 16

    def __post_init__(self) -> None:
        check_positive("issue_width", self.issue_width)
        if self.base_cpi_overhead < 0:
            raise ValueError(
                f"base_cpi_overhead must be >= 0, got {self.base_cpi_overhead}"
            )
        check_positive("l1_latency", self.l1_latency)
        check_positive("l2_latency", self.l2_latency)
        check_positive("memory_latency", self.memory_latency)
        check_positive("clock_ghz", self.clock_ghz)
        check_probability("fetch_stall_exposed_fraction", self.fetch_stall_exposed_fraction)
        check_probability("data_l2_exposed_fraction", self.data_l2_exposed_fraction)
        check_probability("data_memory_exposed_fraction", self.data_memory_exposed_fraction)
        check_positive("prefetch_slot_rate", self.prefetch_slot_rate)
        check_positive("prefetch_mshr_capacity", self.prefetch_mshr_capacity)

    def bytes_per_cycle(self, gigabytes_per_second: float) -> float:
        """Convert an off-chip bandwidth in GB/s to bytes per core cycle."""
        check_positive("gigabytes_per_second", gigabytes_per_second)
        return gigabytes_per_second / self.clock_ghz


DEFAULT_TIMING = TimingParams()
