"""Pluggable trace sources: the one registry owning name → trace resolution.

Everything that turns a workload *name* into per-core
:class:`~repro.trace.stream.Trace` lists goes through this module: the
runner's raw/compiled trace caches, the executor's pre-compilation pass,
``RunSpec`` validation and the experiment catalog all resolve here.  A
:class:`TraceSource` produces the traces; :data:`_SOURCES` registers one
source per name:

- the synthetic profiles (the paper's four applications plus the scenario
  families), served by :class:`SynthSource` — **bit-identical** to the
  pre-registry resolution, which is what keeps the golden spec-parity
  hashes (and therefore every stored compiled trace) valid without a
  ``TRACE_SCHEMA_VERSION`` bump;
- the multiprogrammed ``mix`` composition (:class:`MixSource`);
- ingested external PC streams, addressable as ``external:<name>`` and
  resolved dynamically against the :mod:`repro.trace.ingest` directory.

Lint rule R5 statically cross-checks :data:`_SOURCES` against the profile
registries and ``DISPLAY_NAMES`` (a new profile that is not registered
here is a lint error, mirroring the prefetcher-registry sync check).

This module must not import :mod:`repro.eval` (layering: eval depends on
trace, never the reverse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.trace.ingest import EXTERNAL_PREFIX
from repro.trace.stream import Trace
from repro.trace.synth.mix import mixed_traces
from repro.trace.synth.workloads import (
    DISPLAY_NAMES,
    generate_trace,
    workload_names,
)

__all__ = [
    "EXTERNAL_PREFIX",
    "TraceSource",
    "SynthSource",
    "MixSource",
    "ExternalSource",
    "source_names",
    "available_sources",
    "is_external",
    "resolve",
    "validate_workload",
    "traces_for",
    "source_display_name",
]


class TraceSource:
    """One named producer of per-core traces.

    Subclasses implement :meth:`traces`; ``name`` is the workload string a
    :class:`~repro.eval.runspec.RunSpec` carries.  Sources must be
    deterministic in ``(n_cores, seed, n_instructions)``.
    """

    name: str

    def traces(self, n_cores: int, seed: int, n_instructions: int) -> List[Trace]:
        raise NotImplementedError

    def display_name(self) -> str:
        return DISPLAY_NAMES.get(self.name, self.name)


@dataclass(frozen=True)
class SynthSource(TraceSource):
    """A registered synthetic profile: every core runs the same program
    with decorrelated transaction sequences (threads of one server
    application), so cores share code in the L2 — the paper's homogeneous
    CMP setup."""

    name: str

    def traces(self, n_cores: int, seed: int, n_instructions: int) -> List[Trace]:
        return [
            generate_trace(self.name, seed, n_instructions, core=core)
            for core in range(n_cores)
        ]


@dataclass(frozen=True)
class MixSource(TraceSource):
    """The paper's multiprogrammed mix: one application per core, disjoint
    address spaces (non-4-core systems cycle the base four)."""

    name: str = "mix"

    def traces(self, n_cores: int, seed: int, n_instructions: int) -> List[Trace]:
        names = None
        if n_cores != 4:
            base = workload_names()
            names = [base[i % len(base)] for i in range(n_cores)]
        return mixed_traces(seed, n_instructions, names or ())


@dataclass(frozen=True)
class ExternalSource(TraceSource):
    """An ingested external PC stream (``external:<name>``); cores replay
    the stream cyclically from staggered offsets (see
    :func:`repro.trace.ingest.external_traces`).  Content carries no seed,
    so every seed serves identical traces."""

    name: str

    @property
    def external_name(self) -> str:
        return self.name[len(EXTERNAL_PREFIX):]

    def traces(self, n_cores: int, seed: int, n_instructions: int) -> List[Trace]:
        from repro.trace import ingest

        return ingest.external_traces(self.external_name, n_cores, n_instructions)

    def display_name(self) -> str:
        return self.external_name


#: the registered sources, in presentation order (kept a literal dict with
#: one ``SynthSource`` per profile for lint R5's static sync check).
_SOURCES: Dict[str, TraceSource] = {
    "db": SynthSource("db"),
    "tpcw": SynthSource("tpcw"),
    "japp": SynthSource("japp"),
    "web": SynthSource("web"),
    "mix": MixSource(),
    "microsvc": SynthSource("microsvc"),
    "interp": SynthSource("interp"),
    "osmix": SynthSource("osmix"),
}


def source_names() -> List[str]:
    """Registered source names (synthetic profiles plus ``mix``), in order."""
    return list(_SOURCES)


def available_sources() -> List[str]:
    """Every name :func:`resolve` accepts right now: the registered
    sources plus one ``external:<name>`` entry per ingested trace."""
    from repro.trace import ingest

    return source_names() + [
        EXTERNAL_PREFIX + name for name in ingest.available_external()
    ]


def is_external(workload: str) -> bool:
    return workload.startswith(EXTERNAL_PREFIX)


def resolve(workload: str) -> TraceSource:
    """The source registered under *workload*; raises ``ValueError`` with
    the available names on a miss (eager, so catalog/RunSpec typos fail at
    declaration time rather than deep inside a worker)."""
    source = _SOURCES.get(workload)
    if source is not None:
        return source
    if is_external(workload):
        from repro.trace import ingest

        name = workload[len(EXTERNAL_PREFIX):]
        if name and ingest.external_exists(name):
            return ExternalSource(workload)
        raise ValueError(
            f"external trace {name!r} is not ingested — run "
            f"'repro-trace ingest' first (ingested: {ingest.available_external()})"
        )
    raise ValueError(
        f"unknown workload {workload!r}; available sources: {available_sources()}"
    )


def validate_workload(workload: str) -> None:
    """Eagerly check *workload* names a resolvable source (see
    :func:`resolve`)."""
    resolve(workload)


def traces_for(
    workload: str, n_cores: int, seed: int, n_instructions: int
) -> List[Trace]:
    """Resolve and produce: the single name → traces entry point."""
    return resolve(workload).traces(n_cores, seed, n_instructions)


def source_display_name(workload: str) -> str:
    """Human-readable label for any resolvable workload name."""
    source = _SOURCES.get(workload)
    if source is not None:
        return source.display_name()
    if is_external(workload):
        return workload[len(EXTERNAL_PREFIX):]
    return DISPLAY_NAMES.get(workload, workload)
