"""Keyed on-disk store of :class:`~repro.trace.compiled.CompiledTrace` files.

One binary file per ``(workload, seed, core, n_instructions, line_size)``
request key under ``$REPRO_TRACE_DIR`` (default: a ``traces/`` subdirectory
of the result-cache directory), so a sweep compiles each per-core visit
stream once and every later process — pool workers, reruns, other
invocations sharing the directory — loads the packed file instead of
re-running synthesis and lowering.

Robustness contract (mirrors :mod:`repro.eval.diskcache`):

- writes are atomic (same-directory tmp file + ``os.replace``), entries are
  chmod'd world-readable, and an unwritable directory degrades to "no
  store", never a crash;
- corrupt, truncated or stale-schema files read as **misses** (the caller
  recompiles); so does a file whose embedded provenance does not match the
  requested key (e.g. a renamed file);
- ``REPRO_TRACE_STORE=0`` disables the store entirely (reads and writes).

Invalidation is by :data:`~repro.trace.compiled.TRACE_SCHEMA_VERSION`,
which every file embeds — lint rule R2 pins the trace-affecting modules to
that constant (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.envvars import REPRO_CACHE_DIR, REPRO_TRACE_DIR, REPRO_TRACE_STORE
from repro.trace.compiled import CompiledTrace, CompiledTraceError

TRACE_DIR_ENV = REPRO_TRACE_DIR
DISABLE_ENV = REPRO_TRACE_STORE

#: mirrors :data:`repro.eval.diskcache.CACHE_DIR_ENV` / ``DEFAULT_CACHE_DIR``
#: without importing eval from trace (layering — both alias constants from
#: the shared top-level :mod:`repro.envvars` registry).
_RESULT_CACHE_DIR_ENV = REPRO_CACHE_DIR
_DEFAULT_RESULT_CACHE_DIR = ".repro-cache"
_SUBDIR = "traces"

#: entries are written via ``mkstemp`` (mode 0600); chmod so a shared
#: store directory stays readable by other users.
ENTRY_MODE = 0o644

SUFFIX = ".ctrace"


def enabled() -> bool:
    """Is the trace store active?  ``REPRO_TRACE_STORE=0`` opts out."""
    return os.environ.get(DISABLE_ENV, "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def trace_dir() -> Path:
    explicit = os.environ.get(TRACE_DIR_ENV)
    if explicit:
        return Path(explicit)
    cache_root = os.environ.get(_RESULT_CACHE_DIR_ENV) or _DEFAULT_RESULT_CACHE_DIR
    return Path(cache_root) / _SUBDIR


def path_for(
    workload: str, seed: int, core: int, n_instructions: int, line_size: int
) -> Path:
    """Store path for one request key (workload names are identifiers)."""
    return trace_dir() / (
        f"{workload}-s{seed}-c{core}-n{n_instructions}-l{line_size}{SUFFIX}"
    )


def load(
    workload: str, seed: int, core: int, n_instructions: int, line_size: int
) -> Optional[CompiledTrace]:
    """Return the stored compiled trace for a key, or None (a miss).

    Disabled store, missing file, stale schema, corruption and provenance
    mismatches all read as misses; the store never raises on a bad entry.
    """
    if not enabled():
        return None
    path = path_for(workload, seed, core, n_instructions, line_size)
    try:
        blob = path.read_bytes()
        compiled = CompiledTrace.from_bytes(blob)
    except (OSError, CompiledTraceError):
        return None
    if (
        compiled.workload != workload
        or compiled.seed != seed
        or compiled.core != core
        or compiled.n_instructions != n_instructions
        or compiled.line_size != line_size
    ):
        # The file is internally consistent but filed under the wrong key
        # (e.g. renamed by hand); never serve it for this request.
        return None
    return compiled


def store(compiled: CompiledTrace) -> bool:
    """Persist one compiled trace under its key; False when disabled/unwritable.

    Atomic tmp-file + rename, so concurrent sweeps can share a directory
    without readers ever seeing a partial file.
    """
    if not enabled():
        return False
    directory = trace_dir()
    target = path_for(
        compiled.workload,
        compiled.seed,
        compiled.core,
        compiled.n_instructions,
        compiled.line_size,
    )
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(compiled.to_bytes())
            os.chmod(tmp_name, ENTRY_MODE)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        # An unwritable store degrades to "no store", not a crash.
        return False
    return True


def clear() -> int:
    """Delete every stored trace (and tmp orphans); returns files removed."""
    directory = trace_dir()
    removed = 0
    if directory.is_dir():
        for pattern in (f"*{SUFFIX}", "*.tmp"):
            for path in directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
    return removed


def entry_count() -> int:
    """Number of compiled traces currently stored."""
    directory = trace_dir()
    if not directory.is_dir():
        return 0
    return sum(1 for _ in directory.glob(f"*{SUFFIX}"))
