"""``repro-trace`` — generate, inspect, convert and ingest trace files.

Commands::

    repro-trace generate db out.trc --instructions 1000000 --seed 42
    repro-trace info out.trc
    repro-trace head out.trc --count 20
    repro-trace ingest stream.txt --name mytrace
    repro-trace ingest stream.txt --name mytrace --compile --cores 4

Traces are stored in the RPTRACE1 binary format (see
:mod:`repro.trace.io`), so expensive generations can be snapshotted and
replayed.  ``ingest`` imports a ChampSim-like external PC stream (text or
binary, see :mod:`repro.trace.ingest`) into the external-trace directory,
after which experiments can name it as the ``external:<name>`` workload;
``--compile`` additionally packs it into the compiled trace store.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.isa.classify import kind_label
from repro.isa.kinds import TransitionKind
from repro.trace.ingest import (
    EXTERNAL_PREFIX,
    IngestError,
    compile_external,
    ingest_file,
    trace_path,
)
from repro.trace.io import TraceFormatError, read_trace, write_trace
from repro.trace.stats import compute_trace_stats
from repro.trace.synth.workloads import generate_trace, synth_workload_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Generate and inspect repro trace files."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic workload trace")
    gen.add_argument("workload", choices=synth_workload_names())
    gen.add_argument("output", help="output file path")
    gen.add_argument("--instructions", type=int, default=1_000_000)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--core", type=int, default=0, help="core index (walk decorrelation)")

    info = sub.add_parser("info", help="print summary statistics of a trace file")
    info.add_argument("input", help="trace file path")

    head = sub.add_parser("head", help="print the first events of a trace file")
    head.add_argument("input", help="trace file path")
    head.add_argument("--count", type=int, default=20)

    ingest = sub.add_parser(
        "ingest",
        help="import an external PC stream as an 'external:<name>' source",
    )
    ingest.add_argument("input", help="PC-stream file (text or binary)")
    ingest.add_argument(
        "--name", default=None, help="source name (default: the input file stem)"
    )
    ingest.add_argument(
        "--format",
        dest="fmt",
        default="auto",
        choices=("auto", "text", "binary"),
        help="input encoding (default: auto-detect)",
    )
    ingest.add_argument(
        "--compile",
        action="store_true",
        help="also pack the per-core streams into the compiled trace store",
    )
    ingest.add_argument(
        "--cores", type=int, default=1, help="core count for --compile (default 1)"
    )
    ingest.add_argument(
        "--instructions",
        type=int,
        default=1_000_000,
        help="per-core instruction budget for --compile",
    )
    ingest.add_argument(
        "--line-size", type=int, default=64, help="cache-line size for --compile"
    )
    ingest.add_argument(
        "--seed", type=int, default=1337, help="store request seed for --compile"
    )
    return parser


def _cmd_generate(args) -> int:
    trace = generate_trace(args.workload, args.seed, args.instructions, core=args.core)
    write_trace(trace, args.output)
    print(
        f"wrote {args.output}: {len(trace.events)} events, "
        f"{trace.total_instructions} instructions"
    )
    return 0


def _cmd_info(args) -> int:
    trace = read_trace(args.input)
    stats = compute_trace_stats(trace.events)
    print(f"name                 : {trace.name}")
    print(f"seed                 : {trace.seed}")
    print(f"events               : {stats.total_events}")
    print(f"instructions         : {stats.total_instructions}")
    print(f"data accesses        : {stats.total_data_accesses}")
    print(f"mean block size      : {stats.mean_block_instructions:.2f} instructions")
    print(f"code footprint       : {stats.instruction_footprint_bytes / 1024:.0f} KB")
    print(f"data footprint       : {stats.data_footprint_bytes / 1024:.0f} KB")
    print("transition mix:")
    for kind in TransitionKind:
        share = 100.0 * stats.kind_fraction(kind)
        print(f"  {kind_label(kind):<18} {share:5.1f}%")
    return 0


def _cmd_head(args) -> int:
    trace = read_trace(args.input)
    for event in list(trace.events)[: args.count]:
        label = kind_label(TransitionKind(event.kind))
        print(
            f"{event.addr:#012x}  {event.ninstr:>4} instr  {label:<18} "
            f"{len(event.data)} data"
        )
    return 0


def _cmd_ingest(args) -> int:
    manifest = ingest_file(args.input, name=args.name, fmt=args.fmt)
    name = manifest["name"]
    state = "unchanged" if manifest.get("unchanged") else "ingested"
    print(
        f"{state} {EXTERNAL_PREFIX}{name}: {manifest['n_pcs']} PCs, "
        f"{manifest['n_events']} events, {manifest['n_instructions']} "
        f"instructions ({manifest['format']}, sha256 "
        f"{str(manifest['sha256'])[:12]}…) -> {trace_path(str(name))}"
    )
    if args.compile:
        written = compile_external(
            str(name),
            args.cores,
            args.instructions,
            line_size=args.line_size,
            seed=args.seed,
        )
        print(
            f"compiled {args.cores} core stream(s) at {args.instructions} "
            f"instructions each into the trace store ({written} files written)"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "ingest":
            return _cmd_ingest(args)
        return _cmd_head(args)
    except (TraceFormatError, IngestError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
