"""Fetch-stream analysis: the trace-level facts behind the paper's design.

Two of the paper's design decisions rest on properties of the fetch stream
itself, not on any cache configuration:

- *"most taken forward branches ... have targets that are within four
  cache lines of the current cache line"* (§5) — which is why the
  next-4-line prefetcher covers short branches and the discontinuity
  table "only needs to store large discontinuities";
- *"for the majority of discontinuities, for any one start address ...
  there is just one associated target"* (§4) — which is why one target
  per table entry suffices.

:func:`analyze_stream` measures both directly on a trace, plus the
reuse/run-length statistics useful when calibrating new workload profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.isa.classify import is_discontinuity
from repro.isa.kinds import TransitionKind
from repro.trace.record import BlockEvent
from repro.trace.stream import iter_line_visits

_TF = int(TransitionKind.COND_TAKEN_FWD)


@dataclass
class StreamAnalysis:
    """Fetch-stream statistics of one trace at a given line size."""

    line_size: int
    total_visits: int = 0
    #: histogram of forward-branch distances in lines (clipped at 16).
    tf_distance_histogram: Dict[int, int] = field(default_factory=dict)
    #: count of discontinuity transitions observed.
    discontinuities: int = 0
    #: distinct (source line → target line) pairs.
    distinct_discontinuity_pairs: int = 0
    #: distinct discontinuity source lines.
    distinct_sources: int = 0
    #: sources whose single most common target covers >= 90% of their
    #: transitions ("monomorphic" sources).
    monomorphic_sources: int = 0
    #: fraction of dynamic discontinuities going to each source's dominant
    #: target (weighted).
    dominant_target_fraction: float = 0.0
    #: histogram of sequential run lengths (consecutive +1 transitions),
    #: clipped at 32.
    run_length_histogram: Dict[int, int] = field(default_factory=dict)

    def tf_within(self, lines: int) -> float:
        """Fraction of taken-forward branch transitions with distance <= n."""
        total = sum(self.tf_distance_histogram.values())
        if total == 0:
            return 0.0
        near = sum(
            count
            for distance, count in self.tf_distance_histogram.items()
            if distance <= lines
        )
        return near / total

    @property
    def monomorphic_fraction(self) -> float:
        """Fraction of discontinuity sources with one dominant target."""
        if self.distinct_sources == 0:
            return 0.0
        return self.monomorphic_sources / self.distinct_sources

    @property
    def mean_run_length(self) -> float:
        total_runs = sum(self.run_length_histogram.values())
        if total_runs == 0:
            return 0.0
        weighted = sum(
            length * count for length, count in self.run_length_histogram.items()
        )
        return weighted / total_runs

    def summary(self) -> str:
        lines = [
            f"line size               : {self.line_size}B",
            f"line visits             : {self.total_visits}",
            f"tf branches <= 4 lines  : {100 * self.tf_within(4):.1f}%",
            f"discontinuities         : {self.discontinuities}",
            f"distinct sources        : {self.distinct_sources}",
            f"monomorphic sources     : {100 * self.monomorphic_fraction:.1f}%",
            f"dominant-target dynamic : {100 * self.dominant_target_fraction:.1f}%",
            f"mean sequential run     : {self.mean_run_length:.2f} lines",
        ]
        return "\n".join(lines)


def analyze_stream(
    events: Iterable[BlockEvent], line_size: int = 64
) -> StreamAnalysis:
    """Measure the fetch-stream properties of *events* at *line_size*."""
    analysis = StreamAnalysis(line_size=line_size)
    tf_histogram: Dict[int, int] = {}
    run_histogram: Dict[int, int] = {}
    targets_by_source: Dict[int, Dict[int, int]] = {}

    previous = -1
    run_length = 0
    for line, kind, _, _ in iter_line_visits(events, line_size):
        analysis.total_visits += 1
        if previous >= 0 and line != previous:
            if line == previous + 1:
                run_length += 1
            else:
                if run_length:
                    clipped = min(run_length, 32)
                    run_histogram[clipped] = run_histogram.get(clipped, 0) + 1
                run_length = 0
            if kind == _TF and line > previous:
                distance = min(line - previous, 16)
                tf_histogram[distance] = tf_histogram.get(distance, 0) + 1
            if is_discontinuity(TransitionKind(kind), previous, line):
                analysis.discontinuities += 1
                bucket = targets_by_source.setdefault(previous, {})
                bucket[line] = bucket.get(line, 0) + 1
        previous = line
    if run_length:
        clipped = min(run_length, 32)
        run_histogram[clipped] = run_histogram.get(clipped, 0) + 1

    analysis.tf_distance_histogram = tf_histogram
    analysis.run_length_histogram = run_histogram
    analysis.distinct_sources = len(targets_by_source)
    analysis.distinct_discontinuity_pairs = sum(
        len(bucket) for bucket in targets_by_source.values()
    )
    monomorphic = 0
    dominant_dynamic = 0
    total_dynamic = 0
    for bucket in targets_by_source.values():
        source_total = sum(bucket.values())
        dominant = max(bucket.values())
        total_dynamic += source_total
        dominant_dynamic += dominant
        if dominant >= 0.9 * source_total:
            monomorphic += 1
    analysis.monomorphic_sources = monomorphic
    analysis.dominant_target_fraction = (
        dominant_dynamic / total_dynamic if total_dynamic else 0.0
    )
    return analysis
