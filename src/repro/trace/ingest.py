"""External PC-stream ingestion: ChampSim-style traces → the trace pipeline.

The synthetic profiles cover the paper's workloads; this module lets the
harness replay *real* fetch streams.  Two input encodings are accepted:

- **text** — one program counter per line, hexadecimal (a ``0x`` prefix is
  optional); blank lines and ``#`` comments are skipped;
- **binary** — packed little-endian ``u64`` program counters, no header
  (the raw PC column of a ChampSim-like tracer).

Ingestion reconstructs :class:`~repro.trace.record.BlockEvent` streams by
collapsing sequential ``pc + 4`` runs into basic-block visits and
classifying every taken transition with distance heuristics plus a
return-address stack (forward/backward conditional windows, far-forward
jumps treated as calls, targets matching the stack treated as returns).
The result is a first-class :class:`~repro.trace.stream.Trace`: it rides
the exact same lowering, compiled-trace and store path as the synthetic
workloads.

Ingested traces are persisted under ``$REPRO_EXTERNAL_TRACES`` (default:
an ``external/`` subdirectory of the result-cache directory) as one
RPTRACE1 file plus a JSON manifest per name.  The manifest records the
SHA-256 of the *source* bytes, so an entry is content-addressed: re-ingest
of identical input is a no-op, and a changed source is detectable.  The
``external:<name>`` trace source (:mod:`repro.trace.source`) serves these
entries to the runner; :func:`compile_external` additionally pre-packs
them into content-addressed RPCTRC01 entries in the compiled trace store
so sweep workers only ever load.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import struct
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.envvars import REPRO_CACHE_DIR, REPRO_EXTERNAL_TRACES
from repro.isa.kinds import TransitionKind
from repro.trace import store as trace_store
from repro.trace.compiled import CompiledTrace
from repro.trace.io import read_trace, write_trace
from repro.trace.record import INSTRUCTION_SIZE, BlockEvent
from repro.trace.stream import Trace

EXTERNAL_DIR_ENV = REPRO_EXTERNAL_TRACES

#: workload-name prefix under which ingested traces are addressable from a
#: :class:`~repro.eval.runspec.RunSpec` (resolved by :mod:`repro.trace.source`).
EXTERNAL_PREFIX = "external:"

#: mirrors the trace store's default-directory derivation without importing
#: eval (both alias constants from the shared :mod:`repro.envvars` registry).
_RESULT_CACHE_DIR_ENV = REPRO_CACHE_DIR
_DEFAULT_RESULT_CACHE_DIR = ".repro-cache"
_SUBDIR = "external"

TRACE_SUFFIX = ".trc"
MANIFEST_SUFFIX = ".json"

#: ingested names must be filesystem- and store-key-safe.
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")

#: a taken forward branch landing within this many bytes is a conditional
#: taken-forward; the paper observes most such targets fall within a few
#: cache lines.
COND_FWD_WINDOW = 1024
#: a taken backward branch within this many bytes is a loop branch.
COND_BWD_WINDOW = 4096
#: depth of the return-address stack used to classify returns.
RAS_DEPTH = 64

#: seed recorded on ingested traces — external content carries no seed; the
#: store still files compiled entries under each *request* seed.
INGEST_SEED = 0

_SEQ = int(TransitionKind.SEQUENTIAL)
_COND_FWD = int(TransitionKind.COND_TAKEN_FWD)
_COND_BWD = int(TransitionKind.COND_TAKEN_BWD)
_CALL = int(TransitionKind.CALL)
_JUMP = int(TransitionKind.JUMP)
_RETURN = int(TransitionKind.RETURN)

#: RPTRACE1 caps a block's instruction count at u16.
_MAX_BLOCK_INSTR = 0xFFFF

_PC_LIMIT = 1 << 64


class IngestError(ValueError):
    """Raised when an external PC stream cannot be ingested."""


# --------------------------------------------------------------------- #
# The external-trace directory (one RPTRACE1 + manifest per name)
# --------------------------------------------------------------------- #


def external_dir() -> Path:
    """Directory holding ingested external traces."""
    explicit = os.environ.get(EXTERNAL_DIR_ENV)
    if explicit:
        return Path(explicit)
    cache_root = os.environ.get(_RESULT_CACHE_DIR_ENV) or _DEFAULT_RESULT_CACHE_DIR
    return Path(cache_root) / _SUBDIR


def trace_path(name: str) -> Path:
    return external_dir() / f"{name}{TRACE_SUFFIX}"


def manifest_path(name: str) -> Path:
    return external_dir() / f"{name}{MANIFEST_SUFFIX}"


def validate_name(name: str) -> str:
    """Check *name* is usable as a file stem and store-key component."""
    if not _NAME_RE.match(name):
        raise IngestError(
            f"invalid external trace name {name!r} (use letters, digits, "
            "'.', '_' and '-', starting with a letter or digit)"
        )
    return name


def available_external() -> List[str]:
    """Names of every ingested external trace, sorted."""
    directory = external_dir()
    if not directory.is_dir():
        return []
    return sorted(path.stem for path in directory.glob(f"*{TRACE_SUFFIX}"))


def external_exists(name: str) -> bool:
    return trace_path(name).is_file()


def load_external(name: str) -> Trace:
    """Load one ingested trace (raises :class:`IngestError` on a miss)."""
    path = trace_path(name)
    if not path.is_file():
        raise IngestError(
            f"external trace {name!r} is not ingested "
            f"(ingested: {available_external()})"
        )
    return read_trace(path)


def load_manifest(name: str) -> Optional[Dict[str, object]]:
    """The ingest manifest for *name*, or None if absent/unreadable."""
    try:
        return json.loads(manifest_path(name).read_text())
    except (OSError, ValueError):
        return None


# --------------------------------------------------------------------- #
# Parsing: PC streams → block events
# --------------------------------------------------------------------- #


def parse_text(lines: Iterable[str]) -> List[int]:
    """Parse a text PC stream: one hexadecimal PC per line."""
    pcs: List[int] = []
    for lineno, raw in enumerate(lines, start=1):
        token = raw.split("#", 1)[0].strip()
        if not token:
            continue
        try:
            pc = int(token, 16)
        except ValueError:
            raise IngestError(
                f"line {lineno}: {token!r} is not a hexadecimal program counter"
            ) from None
        if not 0 <= pc < _PC_LIMIT:
            raise IngestError(f"line {lineno}: PC {token!r} out of u64 range")
        pcs.append(pc)
    return pcs


def parse_binary(blob: bytes) -> List[int]:
    """Parse a binary PC stream: packed little-endian u64 PCs."""
    if len(blob) % 8:
        raise IngestError(
            f"binary PC stream length {len(blob)} is not a multiple of 8"
        )
    return list(struct.unpack(f"<{len(blob) // 8}Q", blob))


def _classify(prev_pc: int, target: int, ras: List[int]) -> int:
    """Transition kind of a taken control transfer ``prev_pc → target``."""
    if target in ras[-2:]:
        while ras[-1] != target:
            ras.pop()
        ras.pop()
        return _RETURN
    if prev_pc < target <= prev_pc + COND_FWD_WINDOW:
        return _COND_FWD
    if prev_pc - COND_BWD_WINDOW <= target < prev_pc:
        return _COND_BWD
    if target > prev_pc:
        ras.append(prev_pc + INSTRUCTION_SIZE)
        del ras[:-RAS_DEPTH]
        return _CALL
    return _JUMP


def events_from_pcs(pcs: Sequence[int]) -> List[BlockEvent]:
    """Collapse a PC stream into classified block events.

    Sequential ``pc + 4`` runs become one block; every taken transition
    terminates the open block and stamps the *next* block's entry kind
    (matching the synth walker's convention: an event's kind is the
    transition that brought the fetch stream to it).
    """
    if not pcs:
        raise IngestError("empty PC stream")
    events: List[BlockEvent] = []
    ras: List[int] = []
    block_start = pcs[0]
    count = 1
    kind = _SEQ
    prev = pcs[0]
    for pc in pcs[1:]:
        if pc == prev + INSTRUCTION_SIZE and count < _MAX_BLOCK_INSTR:
            count += 1
            prev = pc
            continue
        events.append(BlockEvent(block_start, count, kind, ()))
        kind = _SEQ if pc == prev + INSTRUCTION_SIZE else _classify(prev, pc, ras)
        block_start = pc
        count = 1
        prev = pc
    events.append(BlockEvent(block_start, count, kind, ()))
    return events


# --------------------------------------------------------------------- #
# Ingestion entry points
# --------------------------------------------------------------------- #


def ingest_text(name: str, lines: Iterable[str]) -> Trace:
    """Build a :class:`Trace` from a text PC stream (no persistence)."""
    validate_name(name)
    return Trace(name, INGEST_SEED, events_from_pcs(parse_text(lines)))


def ingest_bytes(name: str, blob: bytes, fmt: str = "auto") -> Tuple[Trace, Dict[str, object]]:
    """Ingest raw source bytes; returns ``(trace, manifest)``.

    ``fmt`` is ``"text"``, ``"binary"`` or ``"auto"`` (text if the bytes
    decode as UTF-8, binary otherwise).
    """
    validate_name(name)
    if fmt == "auto":
        try:
            blob.decode("utf-8")
            fmt = "text"
        except UnicodeDecodeError:
            fmt = "binary"
    if fmt == "text":
        pcs = parse_text(blob.decode("utf-8").splitlines())
    elif fmt == "binary":
        pcs = parse_binary(blob)
    else:
        raise IngestError(f"unknown ingest format {fmt!r} (text/binary/auto)")
    trace = Trace(name, INGEST_SEED, events_from_pcs(pcs))
    manifest: Dict[str, object] = {
        "name": name,
        "format": fmt,
        "sha256": hashlib.sha256(blob).hexdigest(),
        "n_pcs": len(pcs),
        "n_events": len(trace.events),
        "n_instructions": trace.total_instructions,
    }
    return trace, manifest


def _write_atomic(path: Path, blob: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.chmod(tmp_name, 0o644)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def ingest_file(
    source: Union[str, Path], name: Optional[str] = None, fmt: str = "auto"
) -> Dict[str, object]:
    """Ingest *source* into the external-trace directory; returns the manifest.

    Re-ingesting an unchanged source under the same name is a cheap no-op
    (the manifest's content hash matches).
    """
    source = Path(source)
    if name is None:
        name = source.stem
    blob = source.read_bytes()
    previous = load_manifest(name)
    if previous is not None and previous.get("sha256") == hashlib.sha256(blob).hexdigest():
        if external_exists(name):
            previous["unchanged"] = True
            return previous
    trace, manifest = ingest_bytes(name, blob, fmt=fmt)
    external_dir().mkdir(parents=True, exist_ok=True)
    write_trace(trace, trace_path(name))
    _write_atomic(
        manifest_path(name),
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )
    return manifest


# --------------------------------------------------------------------- #
# Serving and pre-compilation
# --------------------------------------------------------------------- #


def _tiled_events(
    events: Sequence[BlockEvent], start: int, n_instructions: int
) -> List[BlockEvent]:
    """Cyclically replay *events* from *start* until ≥ *n_instructions*."""
    picked: List[BlockEvent] = []
    total = 0
    index = start
    n = len(events)
    while total < n_instructions:
        event = events[index]
        picked.append(event)
        total += event[1]
        index += 1
        if index == n:
            index = 0
    return picked


def external_traces(name: str, n_cores: int, n_instructions: int) -> List[Trace]:
    """Per-core traces served from one ingested external stream.

    The finite stream is treated as a steady-state loop: each core replays
    it cyclically until the instruction budget is met, starting at a
    core-staggered event offset (decorrelated threads of one binary, the
    same convention the synth walker uses for its cores).
    """
    base = load_external(name)
    events = list(base.events)
    return [
        Trace(
            name,
            INGEST_SEED,
            _tiled_events(events, (core * len(events)) // n_cores, n_instructions),
        )
        for core in range(n_cores)
    ]


def compile_external(
    name: str,
    n_cores: int,
    n_instructions: int,
    line_size: int = 64,
    seed: int = 1337,
) -> int:
    """Pack one ingested trace into the compiled trace store.

    Compiles the per-core tiled streams exactly as the runner would and
    persists them under the ``external:<name>`` workload key; returns the
    number of store files written.  Workers of a later sweep then *load*
    instead of re-parsing.
    """
    workload = EXTERNAL_PREFIX + name
    written = 0
    for core, trace in enumerate(external_traces(name, n_cores, n_instructions)):
        compiled = CompiledTrace.compile(
            trace,
            line_size,
            workload=workload,
            seed=seed,
            core=core,
            n_instructions=n_instructions,
        )
        if trace_store.store(compiled):
            written += 1
    return written
