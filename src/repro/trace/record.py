"""Trace record definitions.

A :class:`BlockEvent` is the unit of a trace: one visit to one basic block.
Events are plain ``NamedTuple`` s because traces contain hundreds of
thousands of them and attribute access must stay cheap.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

#: Fixed instruction size in bytes (SPARC-style RISC encoding).
INSTRUCTION_SIZE = 4


class BlockEvent(NamedTuple):
    """One visit to a basic block by the fetch stream.

    Attributes:
        addr: byte address of the first instruction executed in the block.
        ninstr: number of instructions executed during this visit (>= 1).
        kind: the :class:`~repro.isa.TransitionKind` (as ``int``) describing
            how the stream arrived at ``addr`` from the previous event.
        data: byte addresses of the data accesses (loads/stores) performed
            while executing this block visit; may be empty.
    """

    addr: int
    ninstr: int
    kind: int
    data: Tuple[int, ...]

    @property
    def end_addr(self) -> int:
        """Byte address one past the last instruction of this visit."""
        return self.addr + self.ninstr * INSTRUCTION_SIZE
