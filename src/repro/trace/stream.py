"""Trace containers and the block-event → line-visit lowering.

The front-end engine consumes :class:`LineVisit` tuples: one per contiguous
stretch of execution within a single instruction-cache line.  The lowering
in :func:`iter_line_visits` merges consecutive block events that stay in the
same line (so the engine performs one tag lookup per line *visit*, not per
basic block) and splits block visits that span line boundaries into one
visit per line, marking the continuation lines as sequential transitions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.isa.kinds import TransitionKind
from repro.trace.record import INSTRUCTION_SIZE, BlockEvent

_SEQUENTIAL = int(TransitionKind.SEQUENTIAL)


class LineVisit(NamedTuple):
    """One contiguous stretch of execution within a single cache line.

    Attributes:
        line: cache-line index (byte address >> line_shift).
        kind: :class:`~repro.isa.TransitionKind` (as int) of the transition
            that brought the fetch stream into this line.
        ninstr: instructions executed during the visit.
        data: byte addresses of data accesses attributed to this visit.
    """

    line: int
    kind: int
    ninstr: int
    data: Tuple[int, ...]


class Trace:
    """An in-memory instruction/data trace plus its provenance metadata.

    Instances are cheap views over a list of :class:`BlockEvent`; they are
    immutable by convention (the event list must not be mutated after
    construction).
    """

    __slots__ = ("name", "seed", "events", "_total_instructions")

    def __init__(self, name: str, seed: int, events: Sequence[BlockEvent]) -> None:
        self.name = name
        self.seed = seed
        self.events: Sequence[BlockEvent] = events
        self._total_instructions: Optional[int] = None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[BlockEvent]:
        return iter(self.events)

    @property
    def total_instructions(self) -> int:
        """Total instructions executed across all events (cached)."""
        if self._total_instructions is None:
            self._total_instructions = sum(event[1] for event in self.events)
        return self._total_instructions

    def head(self, max_instructions: int) -> "Trace":
        """Return a prefix of this trace containing ~``max_instructions``.

        The cut happens at an event boundary, so the returned trace may hold
        slightly fewer instructions than requested (never more than one
        block's worth fewer).
        """
        if max_instructions <= 0:
            raise ValueError(f"max_instructions must be positive, got {max_instructions}")
        kept: List[BlockEvent] = []
        running = 0
        for event in self.events:
            if running + event[1] > max_instructions and kept:
                break
            kept.append(event)
            running += event[1]
            if running >= max_instructions:
                break
        return Trace(self.name, self.seed, kept)

    def rebased(self, offset: int) -> "Trace":
        """Return a copy with all instruction/data addresses shifted by *offset*.

        Used by the mixed-workload composition to give each program a
        disjoint address region.
        """
        shifted = [
            BlockEvent(event[0] + offset, event[1], event[2], tuple(a + offset for a in event[3]))
            for event in self.events
        ]
        return Trace(self.name, self.seed, shifted)


def iter_line_visits(
    events: Iterable[BlockEvent],
    line_size: int,
) -> Iterator[LineVisit]:
    """Lower block events to per-cache-line visits for *line_size* bytes.

    Rules:

    - Consecutive events within the same line are merged into one visit
      (their data accesses are concatenated).
    - A block visit spanning multiple lines produces one visit per line;
      the first carries the block's entry transition kind, the remainder are
      ``SEQUENTIAL``.  Data accesses are attributed to the first line of the
      block (attribution granularity does not affect any measured statistic,
      since data accesses are timed against the data caches only).
    - A block entering a line that is exactly ``previous + 1`` keeps its
      declared transition kind: the paper attributes such misses to the
      responsible instruction (e.g. a not-taken branch falling through into
      a new line is a "Cond branch (nt)" miss, not a sequential one).
    """
    if line_size <= 0 or (line_size & (line_size - 1)) != 0:
        raise ValueError(f"line_size must be a power of two, got {line_size}")
    if line_size < INSTRUCTION_SIZE:
        raise ValueError(f"line_size must be >= instruction size, got {line_size}")

    shift = line_size.bit_length() - 1
    instr_per_line = line_size // INSTRUCTION_SIZE
    instr_shift = INSTRUCTION_SIZE.bit_length() - 1

    current_line = -1
    current_kind = _SEQUENTIAL
    current_ninstr = 0
    # The open visit's data stays the original event tuple until a second
    # event merges into it; only then is it promoted to a list accumulator
    # (appending per merge, not re-copying the whole tuple per event, which
    # was quadratic for data-heavy same-line runs) and tuple-ized on yield.
    current_data: Sequence[int] = ()
    merging = False

    for addr, ninstr, kind, data in events:
        line = addr >> shift
        offset_instr = (addr >> instr_shift) % instr_per_line
        take = min(ninstr, instr_per_line - offset_instr)
        if line == current_line:
            # Same line: merge into the open visit.
            current_ninstr += take
            if data:
                if not current_data:
                    current_data = data
                elif merging:
                    current_data.extend(data)
                else:
                    current_data = list(current_data)
                    current_data.extend(data)
                    merging = True
        else:
            if current_line >= 0:
                yield LineVisit(
                    current_line,
                    current_kind,
                    current_ninstr,
                    tuple(current_data) if merging else current_data,
                )
            current_line = line
            current_kind = kind
            current_ninstr = take
            current_data = data
            merging = False
        # Spill continuation lines for blocks crossing line boundaries.
        remaining = ninstr - take
        while remaining > 0:
            yield LineVisit(
                current_line,
                current_kind,
                current_ninstr,
                tuple(current_data) if merging else current_data,
            )
            current_line += 1
            current_kind = _SEQUENTIAL
            current_ninstr = min(remaining, instr_per_line)
            current_data = ()
            merging = False
            remaining -= current_ninstr

    if current_line >= 0:
        yield LineVisit(
            current_line,
            current_kind,
            current_ninstr,
            tuple(current_data) if merging else current_data,
        )
