"""Workload profile parameters.

A :class:`WorkloadProfile` fully determines a synthetic workload given a
seed: the static program shape (code footprint, function/block geometry,
control-flow mix, call-graph skew) and the dynamic behaviour (transaction
entry popularity, loop trip counts, data-access rate and working sets).

The four shipped profiles (``db``, ``tpcw``, ``japp``, ``web``) live in
:mod:`repro.trace.synth.workloads`; their values are calibrated so the
resulting traces land in the paper's published bands (Figure 1 miss rates,
Figure 3 miss-category mix).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class WorkloadProfile:
    """All knobs of a synthetic commercial workload.

    Static program shape:

    Attributes:
        name: short identifier (``"db"``, ``"tpcw"``, ...).
        n_functions: number of functions in the program.
        fn_median_instr: median function size in instructions (log-normal).
        fn_sigma: spread (in octaves) of the function-size distribution.
        fn_min_instr / fn_max_instr: clamp bounds for function sizes.
        block_mean_instr: mean basic-block size in instructions (geometric);
            commercial workloads have small blocks (~5-8 instructions).
        entry_fraction: fraction of functions that are transaction entry
            points (service roots).

    Control-flow mix (per interior basic block, probabilities of each
    terminator; the remainder falls through):

    Attributes:
        p_cond: conditional branch.
        p_uncond: unconditional forward branch.
        p_call: function call.
        p_switch: indirect intra-function jump (switch/computed goto).
        p_early_return: return before the last block.
        p_backward: given a conditional branch, probability its target is
            backward (a loop); forward otherwise.
        fwd_skip_mean: mean forward-skip distance in blocks for taken-forward
            branches (geometric; small values keep most tf targets within
            the 4-line window the paper observes).
        fwd_taken_lo / fwd_taken_hi: per-branch taken-probability range for
            forward conditional branches.
        loop_taken_lo / loop_taken_hi: per-branch taken-probability range
            for backward (loop) branches; e.g. 0.85 gives ~6.7 iterations.
        loop_span_max: maximum backward distance (blocks) of a loop branch.
        p_poly_call: probability a call site is polymorphic (indirect call
            through a register — recorded as a ``JUMP`` transition, like
            SPARC ``jmpl``); monomorphic sites are direct ``CALL`` s.
        poly_targets: number of candidate callees at a polymorphic site.
        switch_targets: number of targets of an intra-function switch.
        far_jump_fraction: fraction of unconditional branches that target
            distant code (cleanup/error paths at the end of the function)
            rather than skipping a few blocks.
        callee_zipf: Zipf skew of static callee popularity (call graph).
        entry_zipf: Zipf skew of transaction entry-point popularity.
        text_shared_fraction: fraction of functions whose text is shared
            between the cores of a homogeneous CMP (kernel, libc, shared
            libraries); the remainder is per-core private (per-process
            server code, JIT-compiled method bodies).  Controls how much
            the CMP's combined code footprint exceeds the single core's —
            the paper's Figure 2 CMP increase.
        max_call_depth: call-stack depth limit; deeper calls are elided.
        max_transaction_instr: per-transaction instruction budget.  The call
            graph is a super-critical branching process (several call sites
            per function execution), so an uncapped transaction would be
            astronomically long; real OLTP/web transactions run tens of
            thousands of instructions, which is what this models.
        p_trap: per-block-visit probability of taking a trap (tiny, matching
            the paper's "traps account for a negligible fraction").

    Data stream:

    Attributes:
        data_rate: mean data accesses per instruction (loads + stores).
        p_reuse: probability a data access re-touches a recently used line
            (stack/locals/hot fields); directly dials the L1D hit rate.
        reuse_window_lines: number of recent distinct lines the reuse
            accesses draw from (kept below the L1D's line count so reuse
            accesses are L1D hits).
        hot_bytes: size of the hot data region (mostly L2-resident);
            fresh (non-reuse) accesses usually land here.
        hot_zipf: Zipf skew of hot-region line popularity; the popular head
            stays L2-resident while the tail is capacity-sensitive, which
            is what makes the L2 data miss rate respond to instruction-
            prefetch pollution (Figure 7).
        cold_bytes: size of the cold data region (buffer pool / heap);
            drives L2 data misses and keeps the L2 under capacity pressure.
        p_cold: probability a *fresh* access targets the cold region.
        cold_zipf: Zipf skew of cold-region line popularity.
        cold_private_fraction: fraction of cold accesses that target a
            per-core *private* slice of the heap (connection state, session
            caches) instead of the shared buffer pool; multiplies the CMP's
            distinct-line flow through the shared L2.
    """

    name: str
    # --- static program shape ---
    n_functions: int = 3000
    fn_median_instr: int = 90
    fn_sigma: float = 1.0
    fn_min_instr: int = 6
    fn_max_instr: int = 4000
    block_mean_instr: float = 6.0
    entry_fraction: float = 0.15
    # --- control-flow mix ---
    p_cond: float = 0.34
    p_uncond: float = 0.08
    p_call: float = 0.12
    p_switch: float = 0.02
    p_early_return: float = 0.03
    p_backward: float = 0.22
    fwd_skip_mean: float = 2.0
    fwd_taken_lo: float = 0.25
    fwd_taken_hi: float = 0.65
    loop_taken_lo: float = 0.75
    loop_taken_hi: float = 0.92
    loop_span_max: int = 12
    p_poly_call: float = 0.10
    poly_targets: int = 3
    switch_targets: int = 4
    far_jump_fraction: float = 0.15
    callee_zipf: float = 0.85
    entry_zipf: float = 0.55
    text_shared_fraction: float = 0.45
    max_call_depth: int = 24
    max_transaction_instr: int = 20_000
    p_trap: float = 0.00015
    # --- data stream ---
    data_rate: float = 0.36
    p_reuse: float = 0.88
    reuse_window_lines: int = 384
    hot_bytes: int = 256 * 1024
    hot_zipf: float = 0.60
    cold_bytes: int = 24 * 1024 * 1024
    p_cold: float = 0.08
    cold_zipf: float = 0.70
    cold_private_fraction: float = 0.25

    #: address-space base for code (functions are laid out from here).
    code_base: int = 0x10000
    #: alignment (bytes) of function entry points.
    fn_align: int = 16

    def __post_init__(self) -> None:
        check_positive("n_functions", self.n_functions)
        check_positive("fn_median_instr", self.fn_median_instr)
        check_positive("block_mean_instr", self.block_mean_instr)
        if self.fn_min_instr < 1 or self.fn_max_instr < self.fn_min_instr:
            raise ValueError(
                f"invalid function size bounds [{self.fn_min_instr}, {self.fn_max_instr}]"
            )
        for attr in (
            "entry_fraction",
            "p_cond",
            "p_uncond",
            "p_call",
            "p_switch",
            "p_early_return",
            "p_backward",
            "fwd_taken_lo",
            "fwd_taken_hi",
            "loop_taken_lo",
            "loop_taken_hi",
            "p_poly_call",
            "far_jump_fraction",
            "p_trap",
            "p_cold",
            "p_reuse",
            "cold_private_fraction",
            "text_shared_fraction",
        ):
            check_probability(attr, getattr(self, attr))
        total = self.p_cond + self.p_uncond + self.p_call + self.p_switch + self.p_early_return
        if total > 1.0:
            raise ValueError(f"terminator probabilities sum to {total:.3f} > 1")
        if self.fwd_taken_hi < self.fwd_taken_lo:
            raise ValueError("fwd_taken_hi < fwd_taken_lo")
        if self.loop_taken_hi < self.loop_taken_lo:
            raise ValueError("loop_taken_hi < loop_taken_lo")
        check_positive("max_call_depth", self.max_call_depth)
        check_positive("max_transaction_instr", self.max_transaction_instr)
        check_positive("data_rate", self.data_rate)
        check_positive("reuse_window_lines", self.reuse_window_lines)
        check_positive("hot_bytes", self.hot_bytes)
        check_positive("cold_bytes", self.cold_bytes)
        check_positive("fn_align", self.fn_align)

    @property
    def approx_code_footprint_bytes(self) -> int:
        """Rough expected code footprint (mean fn size × count × 4B)."""
        # Log-normal mean exceeds the median; 1.3x is a serviceable estimate
        # for the sigma range the shipped profiles use.
        mean_instr = int(self.fn_median_instr * 1.3)
        return self.n_functions * mean_instr * 4
