"""Mixed (multiprogrammed) workload composition.

The paper's ``Mix`` workload runs one of the four applications on each core
of the 4-way CMP — a multiprogrammed workload, so the four programs share
no code.  We realise that by *rebasing* each workload's trace into a
disjoint address region before handing one trace to each core.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.trace.stream import Trace
from repro.trace.synth.workloads import generate_trace, workload_names
from repro.util.rng import derive_seed

#: address-region stride between programs of the mix (1TB apart: far larger
#: than any code+data footprint, so regions can never overlap).
MIX_REGION_STRIDE = 1 << 40


def mixed_traces(
    seed: int,
    n_instructions_per_core: int,
    names: Sequence[str] = (),
) -> List[Trace]:
    """Return one rebased trace per core for the mixed workload.

    Args:
        seed: experiment seed.
        n_instructions_per_core: instruction budget for each core's trace.
        names: workload names, one per core; defaults to the paper's
            four applications in order.
    """
    chosen = list(names) if names else workload_names()
    traces: List[Trace] = []
    for core, name in enumerate(chosen):
        trace = generate_trace(name, derive_seed(seed, "mix", core, name), n_instructions_per_core)
        traces.append(trace.rebased(core * MIX_REGION_STRIDE))
    return traces
