"""Synthetic commercial-workload generation.

The paper traces four proprietary Sun workloads (an OLTP database, TPC-W,
SPECjAppServer2002, SPECweb99).  We cannot obtain those traces, so this
package builds the closest synthetic equivalent (see DESIGN.md §2):

1. :mod:`repro.trace.synth.program` constructs a *static program* — a set of
   functions laid out in a flat address space, each a list of basic blocks
   with fixed terminators (conditional branches with fixed targets and
   per-branch taken probabilities, direct calls with fixed callees,
   indirect jumps with fixed target sets, returns).  The static structure
   is what makes fetch-stream discontinuities *repeatable*, the property
   the paper's discontinuity prefetcher exploits.
2. :mod:`repro.trace.synth.walker` performs a stochastic transaction-
   oriented walk over the program (matching the paper's "all four
   applications are transaction-oriented" observation), emitting
   :class:`~repro.trace.BlockEvent` records.
3. :mod:`repro.trace.synth.datagen` attaches a data-access stream with a
   hot working set plus a large Zipf-distributed cold region, providing the
   L2 data pressure behind the paper's pollution study (Figure 7).
4. :mod:`repro.trace.synth.workloads` holds the calibrated per-workload
   profiles and the public :func:`generate_trace` entry point.
"""

from repro.trace.synth.datagen import DataStream
from repro.trace.synth.mix import mixed_traces
from repro.trace.synth.params import WorkloadProfile
from repro.trace.synth.program import (
    BasicBlock,
    Function,
    Program,
    TermKind,
    build_program,
)
from repro.trace.synth.walker import TraceWalker
from repro.trace.synth.workloads import (
    WORKLOADS,
    generate_trace,
    get_profile,
    workload_names,
)

__all__ = [
    "WorkloadProfile",
    "Program",
    "Function",
    "BasicBlock",
    "TermKind",
    "build_program",
    "TraceWalker",
    "DataStream",
    "WORKLOADS",
    "generate_trace",
    "get_profile",
    "workload_names",
    "mixed_traces",
]
