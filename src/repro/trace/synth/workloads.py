"""Calibrated per-workload profiles and the trace-generation entry point.

The four profiles model the paper's four commercial applications.  Each is
tuned toward the published characteristics:

========  =====================  ==========================================
Workload  Paper observation      Profile consequence
========  =====================  ==========================================
``db``    OLTP database; high    large code footprint, call-heavy, deep
          L1I and L2 I-miss      call chains, very large cold data region
          rates                  (buffer pool)
``tpcw``  transactional web      mid-size footprint, moderate branching,
          benchmark              large session data
``japp``  SPECjAppServer2002:    largest footprint, smallest basic blocks,
          *highest* L1I miss     deepest call stacks, most polymorphic call
          rate (≈3.2%/instr)     sites (Java virtual dispatch)
``web``   SPECweb99: *lowest*    smallest footprint, more loop-oriented
          L1I miss rate          (content streaming), shallow calls
          (≈1.3%/instr)
========  =====================  ==========================================

Calibration is validated by ``tests/integration/test_calibration.py``
against the paper's Figure 1/Figure 3 bands.
"""

from __future__ import annotations

from typing import Dict, List

from repro.trace.stream import Trace
from repro.trace.synth.params import WorkloadProfile
from repro.trace.synth.walker import generate_program_trace
from repro.util.units import KB, MB

DB_PROFILE = WorkloadProfile(
    name="db",
    n_functions=3400,
    fn_median_instr=105,
    fn_sigma=1.0,
    block_mean_instr=6.5,
    entry_fraction=0.12,
    p_cond=0.33,
    p_uncond=0.08,
    p_call=0.13,
    p_switch=0.02,
    p_early_return=0.03,
    p_backward=0.20,
    fwd_skip_mean=2.2,
    p_poly_call=0.08,
    callee_zipf=0.65,
    entry_zipf=0.30,
    text_shared_fraction=0.48,
    max_call_depth=26,
    max_transaction_instr=10_000,
    data_rate=0.38,
    p_reuse=0.87,
    reuse_window_lines=384,
    hot_bytes=256 * KB,
    hot_zipf=0.95,
    cold_bytes=48 * MB,
    p_cold=0.10,
    cold_zipf=0.72,
)

TPCW_PROFILE = WorkloadProfile(
    name="tpcw",
    n_functions=3100,
    fn_median_instr=95,
    fn_sigma=0.95,
    block_mean_instr=6.0,
    entry_fraction=0.14,
    p_cond=0.34,
    p_uncond=0.08,
    p_call=0.12,
    p_switch=0.02,
    p_early_return=0.03,
    p_backward=0.22,
    fwd_skip_mean=2.0,
    p_poly_call=0.12,
    callee_zipf=0.68,
    entry_zipf=0.32,
    text_shared_fraction=0.48,
    max_call_depth=24,
    max_transaction_instr=8_000,
    data_rate=0.36,
    p_reuse=0.88,
    reuse_window_lines=384,
    hot_bytes=224 * KB,
    hot_zipf=0.95,
    cold_bytes=32 * MB,
    p_cold=0.08,
    cold_zipf=0.75,
)

JAPP_PROFILE = WorkloadProfile(
    name="japp",
    n_functions=5200,
    fn_median_instr=80,
    fn_sigma=1.05,
    block_mean_instr=5.2,
    entry_fraction=0.12,
    p_cond=0.33,
    p_uncond=0.09,
    p_call=0.15,
    p_switch=0.02,
    p_early_return=0.04,
    p_backward=0.16,
    fwd_skip_mean=2.0,
    p_poly_call=0.22,
    poly_targets=3,
    callee_zipf=0.59,
    entry_zipf=0.28,
    text_shared_fraction=0.60,
    max_call_depth=32,
    max_transaction_instr=10_000,
    data_rate=0.34,
    p_reuse=0.88,
    reuse_window_lines=416,
    hot_bytes=288 * KB,
    hot_zipf=0.95,
    cold_bytes=40 * MB,
    p_cold=0.08,
    cold_zipf=0.72,
)

WEB_PROFILE = WorkloadProfile(
    name="web",
    n_functions=2300,
    fn_median_instr=90,
    fn_sigma=0.9,
    block_mean_instr=7.0,
    entry_fraction=0.16,
    p_cond=0.36,
    p_uncond=0.07,
    p_call=0.10,
    p_switch=0.015,
    p_early_return=0.025,
    p_backward=0.30,
    fwd_skip_mean=1.8,
    loop_taken_lo=0.80,
    loop_taken_hi=0.94,
    p_poly_call=0.06,
    callee_zipf=0.70,
    entry_zipf=0.40,
    text_shared_fraction=0.55,
    max_call_depth=18,
    max_transaction_instr=3_200,
    data_rate=0.35,
    p_reuse=0.90,
    reuse_window_lines=384,
    hot_bytes=160 * KB,
    hot_zipf=0.95,
    cold_bytes=24 * MB,
    p_cold=0.06,
    cold_zipf=0.78,
)

#: Registry of the paper's workloads in presentation order.
WORKLOADS: Dict[str, WorkloadProfile] = {
    "db": DB_PROFILE,
    "tpcw": TPCW_PROFILE,
    "japp": JAPP_PROFILE,
    "web": WEB_PROFILE,
}

# --------------------------------------------------------------------------
# Beyond-the-paper scenario families.
#
# The paper's four applications stress discontinuity prefetching in the
# regime it was designed for.  These three families deliberately push past
# it (ROADMAP "scenario expansion"): traversal-heavy call graphs in the
# style of Murthy & Sohi's program-map workloads, indirect-dispatch code
# the discontinuity table tracks poorly, and trap-dominated kernels.

MICROSVC_PROFILE = WorkloadProfile(
    name="microsvc",
    n_functions=6400,
    fn_median_instr=60,
    fn_sigma=1.0,
    block_mean_instr=5.5,
    entry_fraction=0.10,
    p_cond=0.30,
    p_uncond=0.07,
    p_call=0.21,
    p_switch=0.015,
    p_early_return=0.05,
    p_backward=0.14,
    fwd_skip_mean=2.0,
    p_poly_call=0.16,
    poly_targets=4,
    callee_zipf=0.50,
    entry_zipf=0.25,
    text_shared_fraction=0.55,
    max_call_depth=48,
    max_transaction_instr=6_000,
    data_rate=0.34,
    p_reuse=0.86,
    reuse_window_lines=384,
    hot_bytes=192 * KB,
    hot_zipf=0.90,
    cold_bytes=28 * MB,
    p_cold=0.09,
    cold_zipf=0.74,
)

INTERP_PROFILE = WorkloadProfile(
    name="interp",
    n_functions=2800,
    fn_median_instr=120,
    fn_sigma=1.1,
    block_mean_instr=5.0,
    entry_fraction=0.08,
    p_cond=0.28,
    p_uncond=0.06,
    p_call=0.09,
    p_switch=0.12,
    p_early_return=0.02,
    p_backward=0.34,
    fwd_skip_mean=2.4,
    loop_taken_lo=0.82,
    loop_taken_hi=0.95,
    loop_span_max=16,
    p_poly_call=0.28,
    poly_targets=8,
    switch_targets=24,
    callee_zipf=0.72,
    entry_zipf=0.35,
    text_shared_fraction=0.65,
    max_call_depth=22,
    max_transaction_instr=12_000,
    data_rate=0.40,
    p_reuse=0.90,
    reuse_window_lines=448,
    hot_bytes=320 * KB,
    hot_zipf=0.92,
    cold_bytes=20 * MB,
    p_cold=0.05,
    cold_zipf=0.75,
)

OSMIX_PROFILE = WorkloadProfile(
    name="osmix",
    n_functions=4200,
    fn_median_instr=100,
    fn_sigma=1.0,
    block_mean_instr=6.0,
    entry_fraction=0.13,
    p_cond=0.33,
    p_uncond=0.09,
    p_call=0.13,
    p_switch=0.02,
    p_early_return=0.03,
    p_backward=0.20,
    fwd_skip_mean=2.2,
    far_jump_fraction=0.30,
    p_poly_call=0.10,
    callee_zipf=0.62,
    entry_zipf=0.30,
    text_shared_fraction=0.70,
    max_call_depth=30,
    max_transaction_instr=9_000,
    p_trap=0.012,
    data_rate=0.37,
    p_reuse=0.86,
    reuse_window_lines=384,
    hot_bytes=256 * KB,
    hot_zipf=0.93,
    cold_bytes=36 * MB,
    p_cold=0.10,
    cold_zipf=0.72,
)

#: the scenario families, kept *separate* from :data:`WORKLOADS` so the
#: paper-replication experiments (whose grids expand ``workload_names()``)
#: keep their exact pre-existing RunSpec sets.
SCENARIO_WORKLOADS: Dict[str, WorkloadProfile] = {
    "microsvc": MICROSVC_PROFILE,
    "interp": INTERP_PROFILE,
    "osmix": OSMIX_PROFILE,
}

#: Paper display names, used by the figure formatters.
DISPLAY_NAMES: Dict[str, str] = {
    "db": "DB",
    "tpcw": "TPC-W",
    "japp": "jApp",
    "web": "Web",
    "mix": "Mixed",
    "microsvc": "MicroSvc",
    "interp": "Interp",
    "osmix": "OSMix",
}


def workload_names() -> List[str]:
    """Return the four workload identifiers in the paper's order."""
    return list(WORKLOADS)


def synth_workload_names() -> List[str]:
    """Every synthesizable profile name: the paper's four plus the
    scenario families (``mix`` is a composition, not a profile)."""
    return list(WORKLOADS) + list(SCENARIO_WORKLOADS)


def get_profile(name: str) -> WorkloadProfile:
    """Return the profile registered under *name*.

    Raises ``KeyError`` with the available names on a miss.
    """
    profile = WORKLOADS.get(name) or SCENARIO_WORKLOADS.get(name)
    if profile is None:
        raise KeyError(
            f"unknown workload {name!r}; available: {synth_workload_names()}"
        )
    return profile


def generate_trace(name: str, seed: int, n_instructions: int, core: int = 0) -> Trace:
    """Generate a trace for the named workload.

    Args:
        name: one of :func:`workload_names`.
        seed: experiment seed; the same (name, seed, n, core) tuple always
            produces an identical trace.
        n_instructions: minimum instruction count (the walk finishes its
            last transaction, so the result may slightly exceed this).
        core: decorrelates the *walk* only — all cores of one seed share
            the same program structure (same binary, different threads).
    """
    profile = get_profile(name)
    return generate_program_trace(profile, seed, n_instructions, core=core)
