"""Calibrated per-workload profiles and the trace-generation entry point.

The four profiles model the paper's four commercial applications.  Each is
tuned toward the published characteristics:

========  =====================  ==========================================
Workload  Paper observation      Profile consequence
========  =====================  ==========================================
``db``    OLTP database; high    large code footprint, call-heavy, deep
          L1I and L2 I-miss      call chains, very large cold data region
          rates                  (buffer pool)
``tpcw``  transactional web      mid-size footprint, moderate branching,
          benchmark              large session data
``japp``  SPECjAppServer2002:    largest footprint, smallest basic blocks,
          *highest* L1I miss     deepest call stacks, most polymorphic call
          rate (≈3.2%/instr)     sites (Java virtual dispatch)
``web``   SPECweb99: *lowest*    smallest footprint, more loop-oriented
          L1I miss rate          (content streaming), shallow calls
          (≈1.3%/instr)
========  =====================  ==========================================

Calibration is validated by ``tests/integration/test_calibration.py``
against the paper's Figure 1/Figure 3 bands.
"""

from __future__ import annotations

from typing import Dict, List

from repro.trace.stream import Trace
from repro.trace.synth.params import WorkloadProfile
from repro.trace.synth.walker import generate_program_trace
from repro.util.units import KB, MB

DB_PROFILE = WorkloadProfile(
    name="db",
    n_functions=3400,
    fn_median_instr=105,
    fn_sigma=1.0,
    block_mean_instr=6.5,
    entry_fraction=0.12,
    p_cond=0.33,
    p_uncond=0.08,
    p_call=0.13,
    p_switch=0.02,
    p_early_return=0.03,
    p_backward=0.20,
    fwd_skip_mean=2.2,
    p_poly_call=0.08,
    callee_zipf=0.65,
    entry_zipf=0.30,
    text_shared_fraction=0.48,
    max_call_depth=26,
    max_transaction_instr=10_000,
    data_rate=0.38,
    p_reuse=0.87,
    reuse_window_lines=384,
    hot_bytes=256 * KB,
    hot_zipf=0.95,
    cold_bytes=48 * MB,
    p_cold=0.10,
    cold_zipf=0.72,
)

TPCW_PROFILE = WorkloadProfile(
    name="tpcw",
    n_functions=3100,
    fn_median_instr=95,
    fn_sigma=0.95,
    block_mean_instr=6.0,
    entry_fraction=0.14,
    p_cond=0.34,
    p_uncond=0.08,
    p_call=0.12,
    p_switch=0.02,
    p_early_return=0.03,
    p_backward=0.22,
    fwd_skip_mean=2.0,
    p_poly_call=0.12,
    callee_zipf=0.68,
    entry_zipf=0.32,
    text_shared_fraction=0.48,
    max_call_depth=24,
    max_transaction_instr=8_000,
    data_rate=0.36,
    p_reuse=0.88,
    reuse_window_lines=384,
    hot_bytes=224 * KB,
    hot_zipf=0.95,
    cold_bytes=32 * MB,
    p_cold=0.08,
    cold_zipf=0.75,
)

JAPP_PROFILE = WorkloadProfile(
    name="japp",
    n_functions=5200,
    fn_median_instr=80,
    fn_sigma=1.05,
    block_mean_instr=5.2,
    entry_fraction=0.12,
    p_cond=0.33,
    p_uncond=0.09,
    p_call=0.15,
    p_switch=0.02,
    p_early_return=0.04,
    p_backward=0.16,
    fwd_skip_mean=2.0,
    p_poly_call=0.22,
    poly_targets=3,
    callee_zipf=0.59,
    entry_zipf=0.28,
    text_shared_fraction=0.60,
    max_call_depth=32,
    max_transaction_instr=10_000,
    data_rate=0.34,
    p_reuse=0.88,
    reuse_window_lines=416,
    hot_bytes=288 * KB,
    hot_zipf=0.95,
    cold_bytes=40 * MB,
    p_cold=0.08,
    cold_zipf=0.72,
)

WEB_PROFILE = WorkloadProfile(
    name="web",
    n_functions=2300,
    fn_median_instr=90,
    fn_sigma=0.9,
    block_mean_instr=7.0,
    entry_fraction=0.16,
    p_cond=0.36,
    p_uncond=0.07,
    p_call=0.10,
    p_switch=0.015,
    p_early_return=0.025,
    p_backward=0.30,
    fwd_skip_mean=1.8,
    loop_taken_lo=0.80,
    loop_taken_hi=0.94,
    p_poly_call=0.06,
    callee_zipf=0.70,
    entry_zipf=0.40,
    text_shared_fraction=0.55,
    max_call_depth=18,
    max_transaction_instr=3_200,
    data_rate=0.35,
    p_reuse=0.90,
    reuse_window_lines=384,
    hot_bytes=160 * KB,
    hot_zipf=0.95,
    cold_bytes=24 * MB,
    p_cold=0.06,
    cold_zipf=0.78,
)

#: Registry of the paper's workloads in presentation order.
WORKLOADS: Dict[str, WorkloadProfile] = {
    "db": DB_PROFILE,
    "tpcw": TPCW_PROFILE,
    "japp": JAPP_PROFILE,
    "web": WEB_PROFILE,
}

#: Paper display names, used by the figure formatters.
DISPLAY_NAMES: Dict[str, str] = {
    "db": "DB",
    "tpcw": "TPC-W",
    "japp": "jApp",
    "web": "Web",
    "mix": "Mixed",
}


def workload_names() -> List[str]:
    """Return the four workload identifiers in the paper's order."""
    return list(WORKLOADS)


def get_profile(name: str) -> WorkloadProfile:
    """Return the profile registered under *name*.

    Raises ``KeyError`` with the available names on a miss.
    """
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}") from None


def generate_trace(name: str, seed: int, n_instructions: int, core: int = 0) -> Trace:
    """Generate a trace for the named workload.

    Args:
        name: one of :func:`workload_names`.
        seed: experiment seed; the same (name, seed, n, core) tuple always
            produces an identical trace.
        n_instructions: minimum instruction count (the walk finishes its
            last transaction, so the result may slightly exceed this).
        core: decorrelates the *walk* only — all cores of one seed share
            the same program structure (same binary, different threads).
    """
    profile = get_profile(name)
    return generate_program_trace(profile, seed, n_instructions, core=core)
