"""The trace walker: stochastic execution of a static program.

The walker runs *transactions*: it picks an entry function (Zipf popularity
over the program's entry points — a few services dominate), walks the call
graph until the entry returns, then starts the next transaction.  This
matches the paper's workloads, which are "transaction-oriented and do not
exhibit phase changes".

Only outcomes are sampled at walk time (conditional taken/not-taken, switch
target, polymorphic callee); all targets are static program structure, so
discontinuities repeat across transactions — the property the discontinuity
prefetcher learns.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.isa.kinds import TransitionKind
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace
from repro.trace.synth.datagen import DataStream
from repro.trace.synth.params import WorkloadProfile
from repro.trace.synth.program import Program, TermKind, build_program
from repro.util.rng import SplitMix64, derive_seed

_SEQ = int(TransitionKind.SEQUENTIAL)
_TF = int(TransitionKind.COND_TAKEN_FWD)
_TB = int(TransitionKind.COND_TAKEN_BWD)
_NT = int(TransitionKind.COND_NOT_TAKEN)
_UNCOND = int(TransitionKind.UNCOND_BRANCH)
_CALL = int(TransitionKind.CALL)
_JUMP = int(TransitionKind.JUMP)
_RETURN = int(TransitionKind.RETURN)
_TRAP = int(TransitionKind.TRAP)


class TraceWalker:
    """Walks a :class:`~repro.trace.synth.program.Program`, emitting events."""

    def __init__(self, program: Program, seed: int, core: int = 0) -> None:
        self.program = program
        self.profile: WorkloadProfile = program.profile
        self._rng = SplitMix64(derive_seed(seed, "walker"))
        self._data = DataStream(self.profile, derive_seed(seed, "datastream"), core=core)
        self._seed = seed

    def walk(self, n_instructions: int) -> Trace:
        """Generate a trace of at least *n_instructions* instructions.

        The walk always completes the transaction in progress when the
        budget is reached, so the trace ends at a transaction boundary and
        may slightly exceed the requested count.
        """
        if n_instructions <= 0:
            raise ValueError(f"n_instructions must be positive, got {n_instructions}")

        rng = self._rng
        profile = self.profile
        program = self.program
        functions = program.functions
        entries = program.entry_indices
        trap_handlers = program.trap_handler_indices
        data = self._data
        events: List[BlockEvent] = []
        emitted = 0
        p_trap = profile.p_trap
        max_depth = profile.max_call_depth

        max_txn = profile.max_transaction_instr
        while emitted < n_instructions:
            # --- one transaction ---
            entry_rank = rng.zipf_index(len(entries), profile.entry_zipf)
            fn_index = entries[entry_rank]
            # (function index, block index) frames; the stack holds the
            # *continuation* of each suspended caller.
            stack: List[Tuple[int, int]] = []
            fn = functions[fn_index]
            blocks = fn.blocks
            block_index = 0
            pending_kind = _CALL  # transaction dispatch is itself a call
            txn_budget = emitted + max_txn

            while True:
                if emitted >= txn_budget:
                    # Transaction instruction budget exhausted: the service
                    # completes (remaining unwinding elided).
                    break
                block = blocks[block_index]
                ninstr = block.ninstr
                data.set_stack_depth(len(stack))
                accesses = data.accesses_for_block(ninstr)
                events.append(BlockEvent(block.addr, ninstr, pending_kind, accesses))
                emitted += ninstr

                # Rare trap injection: call a distant trap handler, then
                # resume at the interrupted block's terminator decision.
                if p_trap and rng.random() < p_trap and len(stack) < max_depth:
                    handler = functions[trap_handlers[rng.randrange(len(trap_handlers))]]
                    hblock = handler.blocks[0]
                    data.set_stack_depth(len(stack) + 1)
                    events.append(
                        BlockEvent(
                            hblock.addr,
                            hblock.ninstr,
                            _TRAP,
                            data.accesses_for_block(hblock.ninstr),
                        )
                    )
                    emitted += hblock.ninstr
                    pending_kind = _RETURN
                else:
                    pending_kind = _SEQ

                term = block.term
                if term == TermKind.FALLTHROUGH:
                    block_index += 1
                elif term == TermKind.COND:
                    if rng.random() < block.taken_prob:
                        target = block.target
                        if pending_kind == _SEQ:
                            pending_kind = _TB if target <= block_index else _TF
                        block_index = target
                    else:
                        if pending_kind == _SEQ:
                            pending_kind = _NT
                        block_index += 1
                elif term == TermKind.UNCOND:
                    if pending_kind == _SEQ:
                        pending_kind = _UNCOND
                    block_index = block.target
                elif term == TermKind.CALL:
                    if len(stack) >= max_depth:
                        # Depth cap: elide the call, fall through.
                        block_index += 1
                    else:
                        callees = block.callees
                        if len(callees) == 1:
                            callee = callees[0]
                            if pending_kind == _SEQ:
                                pending_kind = _CALL
                        else:
                            callee = callees[rng.randrange(len(callees))]
                            if pending_kind == _SEQ:
                                pending_kind = _JUMP
                        stack.append((fn_index, block_index + 1))
                        fn_index = callee
                        fn = functions[fn_index]
                        blocks = fn.blocks
                        block_index = 0
                        continue
                elif term == TermKind.SWITCH:
                    targets = block.switch_targets
                    if pending_kind == _SEQ:
                        pending_kind = _JUMP
                    block_index = targets[rng.randrange(len(targets))]
                elif term == TermKind.RETURN:
                    if not stack:
                        break  # transaction complete
                    fn_index, block_index = stack.pop()
                    fn = functions[fn_index]
                    blocks = fn.blocks
                    if pending_kind == _SEQ:
                        pending_kind = _RETURN
                    continue
                else:  # pragma: no cover - exhaustive enum
                    raise AssertionError(f"unknown terminator {term}")

                if block_index >= len(blocks):
                    # A fall-through past the last block behaves as a return.
                    if not stack:
                        break
                    fn_index, block_index = stack.pop()
                    fn = functions[fn_index]
                    blocks = fn.blocks
                    if pending_kind == _SEQ:
                        pending_kind = _RETURN

        return Trace(self.profile.name, self._seed, events)


#: address stride between the per-core instances of one program (32MB —
#: far larger than any code footprint, far below the data region base).
CORE_CODE_STRIDE = 1 << 25


def generate_program_trace(
    profile: WorkloadProfile, seed: int, n_instructions: int, core: int = 0
) -> Trace:
    """Build the program for *profile* and walk *n_instructions*.

    The program *structure* is derived from ``seed`` alone; ``core``
    decorrelates the walk (transaction sequence and outcomes) and offsets
    the code region.  Each core of a homogeneous CMP thus runs its own
    *instance* of the same application — identical structure, private text.

    Modeling decision (see DESIGN.md): commercial middleware of the
    paper's era commonly ran one process/JVM per core, and JIT-compiled or
    per-process text is not shared between instances.  Only the
    *shared-text* region of the program (kernel/libraries — the profile's
    ``text_shared_fraction``) occupies common L2 lines across cores; the
    private-text region is rebased per core.  The resulting CMP code
    footprint exceeds the single core's, which is the mechanism behind
    the paper's Figure 2 observation that CMP L2 instruction miss rates
    substantially exceed the single core's.  The per-core *data* streams
    still share the cold region (buffer pool / shared heap) — see
    :mod:`repro.trace.synth.datagen`.
    """
    program = build_program(profile, derive_seed(seed, "structure", profile.name))
    walker = TraceWalker(program, derive_seed(seed, "run", profile.name, core), core=core)
    trace = walker.walk(n_instructions)
    if core:
        shift = core * CORE_CODE_STRIDE
        boundary = program.private_text_start
        trace = Trace(
            trace.name,
            trace.seed,
            [
                BlockEvent(
                    event[0] + shift if event[0] >= boundary else event[0],
                    event[1],
                    event[2],
                    event[3],
                )
                for event in trace.events
            ],
        )
    return trace
