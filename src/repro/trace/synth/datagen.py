"""Data-access stream generation.

The paper's pollution study (Figure 7) hinges on the unified L2 holding
*data* lines that aggressive instruction prefetching evicts.  Each workload
therefore carries a data stream whose locality is explicitly dialled by
three knobs:

- **reuse** (``p_reuse``): most accesses re-touch one of the last
  ``reuse_window_lines`` distinct lines (stack slots, locals, hot object
  fields).  The window is smaller than the L1D, so reuse accesses are L1D
  hits — this sets the L1D hit rate.
- **hot region** (``hot_bytes``): fresh accesses usually land in a region
  sized to be L2-resident (database caches, JVM nursery); these are L1D
  misses but mostly L2 hits.  The hot region is **per-core private**
  (session state, connection buffers, thread-local working data), so a
  4-way CMP carries 4× the hot-data pressure of a single core — the
  mechanism behind the paper's higher CMP L2 miss rates.
- **cold region** (``cold_bytes``, ``p_cold``, ``cold_zipf``): a large
  Zipf-popularity region (buffer pool, heap) producing the steady L2 data
  miss rate and the L2 capacity pressure the paper's CMP study depends
  on.  The cold region is **shared** across cores of one workload, as a
  buffer pool would be.

Addresses are byte addresses in regions placed far above the code, so
instruction and data lines never collide.
"""

from __future__ import annotations

from typing import List

from repro.trace.synth.params import WorkloadProfile
from repro.util.rng import SplitMix64

#: data regions start at 1GB, far above any code address.
DATA_BASE = 1 << 30

#: generation granularity: distinct "lines" are 64B apart.  Accesses get a
#: sub-line offset so replay at smaller line sizes still exercises
#: neighbouring lines.
_LINE = 64


class DataStream:
    """Generates the data addresses attached to block visits."""

    __slots__ = (
        "_rng",
        "_profile",
        "_hot_base",
        "_hot_lines",
        "_cold_base",
        "_cold_lines",
        "_cold_private_base",
        "_cold_private_lines",
        "_window",
        "_window_size",
        "_window_cursor",
    )

    def __init__(self, profile: WorkloadProfile, seed: int, core: int = 0) -> None:
        self._rng = SplitMix64(seed).spawn("data")
        self._profile = profile
        # Private hot region per core; 64MB stride keeps them disjoint.
        self._hot_base = DATA_BASE + (1 << 28) + core * (1 << 26)
        self._hot_lines = max(1, profile.hot_bytes // _LINE)
        self._cold_base = DATA_BASE + (1 << 29)
        self._cold_lines = max(1, profile.cold_bytes // _LINE)
        # Per-core private heap slice: a quarter of the cold footprint,
        # disjoint between cores (16GB stride).
        self._cold_private_base = DATA_BASE + (1 << 35) + core * (1 << 34)
        self._cold_private_lines = max(1, profile.cold_bytes // (4 * _LINE))
        self._window_size = profile.reuse_window_lines
        self._window: List[int] = []
        self._window_cursor = 0

    def set_stack_depth(self, depth: int) -> None:
        """Call-depth hook (kept for walker compatibility).

        The reuse window already models frame-local locality, so depth has
        no direct effect; the hook remains so alternative data models can
        be dropped in without touching the walker.
        """

    def accesses_for_block(self, ninstr: int) -> tuple:
        """Return the data addresses for a block visit of *ninstr* instructions.

        The count is ``ninstr * data_rate`` with stochastic rounding so the
        long-run rate matches the profile exactly.
        """
        expected = ninstr * self._profile.data_rate
        count = int(expected)
        if self._rng.random() < expected - count:
            count += 1
        if count == 0:
            return ()
        return tuple(self._one_address() for _ in range(count))

    def _one_address(self) -> int:
        rng = self._rng
        window = self._window
        if window and rng.random() < self._profile.p_reuse:
            line_addr = window[rng.randrange(len(window))]
        else:
            line_addr = self._fresh_line()
            if len(window) < self._window_size:
                window.append(line_addr)
            else:
                window[self._window_cursor] = line_addr
                self._window_cursor = (self._window_cursor + 1) % self._window_size
        return line_addr + rng.randrange(_LINE)

    def _fresh_line(self) -> int:
        rng = self._rng
        profile = self._profile
        if rng.random() < profile.p_cold:
            if rng.random() < profile.cold_private_fraction:
                line = rng.zipf_index(self._cold_private_lines, profile.cold_zipf)
                return self._cold_private_base + line * _LINE
            line = rng.zipf_index(self._cold_lines, profile.cold_zipf)
            return self._cold_base + line * _LINE
        line = rng.zipf_index(self._hot_lines, profile.hot_zipf)
        return self._hot_base + line * _LINE

    def region_summary(self) -> dict:
        """Describe the configured regions (for documentation/tests)."""
        return {
            "hot_base": self._hot_base,
            "hot_bytes": self._hot_lines * _LINE,
            "cold_base": self._cold_base,
            "cold_bytes": self._cold_lines * _LINE,
            "cold_private_base": self._cold_private_base,
            "cold_private_bytes": self._cold_private_lines * _LINE,
            "reuse_window_lines": self._window_size,
        }
