"""Static program construction.

A *program* is a set of functions laid out in a flat byte address space.
Each function is a list of basic blocks; each block ends in a fixed
*terminator* (conditional branch with a fixed target and a per-branch taken
probability, unconditional branch, direct call with a fixed callee,
polymorphic call with a fixed small callee set, intra-function switch,
return, or plain fall-through).

Structure is fixed at build time; only conditional-branch outcomes, switch
target selection and polymorphic-callee selection are sampled during the
walk.  This mirrors real binaries: the discontinuity (source line → target
line) pairs the paper's prefetcher learns are properties of the *code*, not
of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum, unique
from typing import List, Optional, Tuple

from repro.trace.record import INSTRUCTION_SIZE
from repro.trace.synth.params import WorkloadProfile
from repro.util.rng import SplitMix64


@unique
class TermKind(IntEnum):
    """Basic-block terminator kinds."""

    FALLTHROUGH = 0
    COND = 1
    UNCOND = 2
    CALL = 3
    SWITCH = 4
    RETURN = 5


class BasicBlock:
    """One basic block of a function.

    Attributes:
        addr: byte address of the first instruction.
        ninstr: number of instructions in the block.
        term: the :class:`TermKind` of the terminator.
        target: for ``COND``/``UNCOND``: target block index in the function.
        taken_prob: for ``COND``: probability the branch is taken.
        callees: for ``CALL``: tuple of callable function indices (length 1
            for a direct call; >1 for a polymorphic/indirect call site).
        switch_targets: for ``SWITCH``: tuple of target block indices.
    """

    __slots__ = ("addr", "ninstr", "term", "target", "taken_prob", "callees", "switch_targets")

    def __init__(
        self,
        addr: int,
        ninstr: int,
        term: TermKind = TermKind.FALLTHROUGH,
        target: Optional[int] = None,
        taken_prob: float = 0.0,
        callees: Tuple[int, ...] = (),
        switch_targets: Tuple[int, ...] = (),
    ) -> None:
        self.addr = addr
        self.ninstr = ninstr
        self.term = term
        self.target = target
        self.taken_prob = taken_prob
        self.callees = callees
        self.switch_targets = switch_targets

    @property
    def end_addr(self) -> int:
        """Address one past the last instruction (the branch/terminator)."""
        return self.addr + self.ninstr * INSTRUCTION_SIZE

    @property
    def terminator_addr(self) -> int:
        """Address of the terminator instruction itself."""
        return self.addr + (self.ninstr - 1) * INSTRUCTION_SIZE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicBlock(addr={self.addr:#x}, ninstr={self.ninstr}, "
            f"term={TermKind(self.term).name})"
        )


@dataclass
class Function:
    """One function: an entry address and its blocks, laid out contiguously."""

    index: int
    entry_addr: int
    blocks: List[BasicBlock]
    is_entry_point: bool = False
    is_trap_handler: bool = False

    @property
    def size_bytes(self) -> int:
        last = self.blocks[-1]
        return last.end_addr - self.entry_addr

    @property
    def total_instructions(self) -> int:
        return sum(block.ninstr for block in self.blocks)


@dataclass
class Program:
    """A complete static program.

    Functions are laid out in two contiguous regions: the *shared-text*
    region first (kernel/libraries — shared between the cores of a
    homogeneous CMP) and the *private-text* region after it (per-process
    or JIT code — one copy per core).  ``private_text_start`` is the byte
    address where the private region begins; trace rebasing for core *k*
    shifts only addresses at or above it.
    """

    profile: WorkloadProfile
    seed: int
    functions: List[Function]
    entry_indices: List[int]
    trap_handler_indices: List[int]
    private_text_start: int = 0

    @property
    def code_footprint_bytes(self) -> int:
        """Total code bytes (sum of function sizes, gaps excluded)."""
        return sum(fn.size_bytes for fn in self.functions)

    @property
    def end_addr(self) -> int:
        """One past the highest code address."""
        return max(fn.entry_addr + fn.size_bytes for fn in self.functions)

    def function_of(self, index: int) -> Function:
        return self.functions[index]


#: number of tiny trap-handler functions appended to every program.
N_TRAP_HANDLERS = 4

#: trap handlers live far from regular code so traps are real discontinuities.
TRAP_REGION_GAP = 1 << 22  # 4MB beyond the end of regular code


def build_program(profile: WorkloadProfile, seed: int) -> Program:
    """Construct the static program for *profile* deterministically from *seed*.

    Layout (low to high addresses):

    1. **shared text** — functions drawn (with probability
       ``text_shared_fraction``) to represent kernel/library code shared
       between the cores of a homogeneous CMP;
    2. **trap handlers** — kernel code, a :data:`TRAP_REGION_GAP` beyond
       the shared text so traps are genuine fetch-stream discontinuities;
    3. **private text** — per-process / JIT application code; trace
       rebasing replicates this region per core.
    """
    rng = SplitMix64(seed).spawn("program")

    n_regular = profile.n_functions
    sizes = [
        rng.lognormal_int(
            profile.fn_median_instr,
            profile.fn_sigma,
            profile.fn_min_instr,
            profile.fn_max_instr,
        )
        for _ in range(n_regular)
    ]

    # Independent stream: sharing flags must not perturb the structural
    # randomness (sizes/terminators) that the miss-rate calibration rests on.
    shared_rng = rng.spawn("shared-text")
    shared = [shared_rng.random() < profile.text_shared_fraction for _ in range(n_regular)]
    layout_order = [i for i in range(n_regular) if shared[i]] + [
        i for i in range(n_regular) if not shared[i]
    ]

    align = profile.fn_align
    cursor = profile.code_base
    entry_addr_of = {}
    n_shared = sum(shared)
    trap_region_base = None
    private_text_start = None
    for position, index in enumerate(layout_order):
        if position == n_shared:
            # Shared text ends here: reserve the trap-handler region, then
            # start the private text after a second gap.
            cursor += TRAP_REGION_GAP
            trap_region_base = cursor
            cursor += TRAP_REGION_GAP
            private_text_start = cursor
        cursor = -(-cursor // align) * align
        entry_addr_of[index] = cursor
        cursor += sizes[index] * INSTRUCTION_SIZE
    if trap_region_base is None:
        # Every function is shared (or none exist past the boundary).
        cursor += TRAP_REGION_GAP
        trap_region_base = cursor
        cursor += TRAP_REGION_GAP
        private_text_start = cursor

    functions: List[Function] = []
    for index in range(n_regular):
        blocks = _build_blocks(
            entry_addr_of[index], sizes[index], index, n_regular, profile, rng
        )
        functions.append(Function(index=index, entry_addr=entry_addr_of[index], blocks=blocks))

    # Trap handlers: tiny leaf functions in their reserved (shared) region.
    trap_indices: List[int] = []
    cursor = trap_region_base
    for handler in range(N_TRAP_HANDLERS):
        cursor = -(-cursor // align) * align
        index = len(functions)
        ninstr = rng.randint(8, 24)
        blocks = [
            BasicBlock(cursor, ninstr, term=TermKind.RETURN),
        ]
        functions.append(
            Function(index=index, entry_addr=cursor, blocks=blocks, is_trap_handler=True)
        )
        trap_indices.append(index)
        cursor = blocks[-1].end_addr

    # Entry points: a deterministic subset of the regular functions.
    n_entries = max(1, int(n_regular * profile.entry_fraction))
    entry_candidates = list(range(n_regular))
    rng.shuffle(entry_candidates)
    entry_indices = sorted(entry_candidates[:n_entries])
    for index in entry_indices:
        functions[index].is_entry_point = True

    return Program(
        profile=profile,
        seed=seed,
        functions=functions,
        entry_indices=entry_indices,
        trap_handler_indices=trap_indices,
        private_text_start=private_text_start,
    )


def _build_blocks(
    entry_addr: int,
    total_instr: int,
    fn_index: int,
    n_functions: int,
    profile: WorkloadProfile,
    rng: SplitMix64,
) -> List[BasicBlock]:
    """Split a function body into blocks and assign terminators."""
    # Partition total_instr into geometric block sizes.
    sizes: List[int] = []
    remaining = total_instr
    while remaining > 0:
        size = min(remaining, rng.geometric(profile.block_mean_instr))
        sizes.append(size)
        remaining -= size

    blocks: List[BasicBlock] = []
    addr = entry_addr
    for size in sizes:
        blocks.append(BasicBlock(addr, size))
        addr += size * INSTRUCTION_SIZE

    nblocks = len(blocks)
    last = nblocks - 1
    blocks[last].term = TermKind.RETURN

    # Cumulative terminator weights for interior blocks.
    for i in range(last):
        point = rng.random()
        if point < profile.p_cond:
            _assign_cond(blocks, i, profile, rng)
        elif point < profile.p_cond + profile.p_uncond:
            _assign_uncond(blocks, i, profile, rng)
        elif point < profile.p_cond + profile.p_uncond + profile.p_call:
            _assign_call(blocks, i, fn_index, n_functions, profile, rng)
        elif point < profile.p_cond + profile.p_uncond + profile.p_call + profile.p_switch:
            _assign_switch(blocks, i, profile, rng)
        elif (
            point
            < profile.p_cond
            + profile.p_uncond
            + profile.p_call
            + profile.p_switch
            + profile.p_early_return
        ):
            blocks[i].term = TermKind.RETURN
        # else: FALLTHROUGH (the default)
    return blocks


def _assign_cond(
    blocks: List[BasicBlock], i: int, profile: WorkloadProfile, rng: SplitMix64
) -> None:
    nblocks = len(blocks)
    block = blocks[i]
    block.term = TermKind.COND
    if i > 0 and rng.random() < profile.p_backward:
        # Loop: branch back to an earlier block.
        span = min(i, max(1, profile.loop_span_max))
        block.target = i - rng.randint(1, span)
        block.taken_prob = profile.loop_taken_lo + rng.random() * (
            profile.loop_taken_hi - profile.loop_taken_lo
        )
    else:
        # Forward skip (if-then shape).
        skip = rng.geometric(profile.fwd_skip_mean)
        block.target = min(nblocks - 1, i + 1 + skip)
        block.taken_prob = profile.fwd_taken_lo + rng.random() * (
            profile.fwd_taken_hi - profile.fwd_taken_lo
        )


def _assign_uncond(
    blocks: List[BasicBlock], i: int, profile: WorkloadProfile, rng: SplitMix64
) -> None:
    nblocks = len(blocks)
    block = blocks[i]
    block.term = TermKind.UNCOND
    if rng.random() < profile.far_jump_fraction:
        # Distant intra-function jump (cleanup / error path near the end).
        low = min(nblocks - 1, i + 2)
        block.target = rng.randint(low, nblocks - 1)
    else:
        skip = 1 + rng.geometric(profile.fwd_skip_mean)
        block.target = min(nblocks - 1, i + 1 + skip)


def _assign_call(
    blocks: List[BasicBlock],
    i: int,
    fn_index: int,
    n_functions: int,
    profile: WorkloadProfile,
    rng: SplitMix64,
) -> None:
    block = blocks[i]
    block.term = TermKind.CALL
    if rng.random() < profile.p_poly_call:
        n_targets = max(2, profile.poly_targets)
        callees = tuple(
            _pick_callee(fn_index, n_functions, profile, rng) for _ in range(n_targets)
        )
    else:
        callees = (_pick_callee(fn_index, n_functions, profile, rng),)
    block.callees = callees


def _pick_callee(
    fn_index: int, n_functions: int, profile: WorkloadProfile, rng: SplitMix64
) -> int:
    callee = rng.zipf_index(n_functions, profile.callee_zipf)
    if callee == fn_index:
        callee = (callee + 1) % n_functions
    return callee


def _assign_switch(
    blocks: List[BasicBlock], i: int, profile: WorkloadProfile, rng: SplitMix64
) -> None:
    nblocks = len(blocks)
    block = blocks[i]
    if nblocks - 1 <= i + 1:
        return  # no room for a switch; keep fall-through
    block.term = TermKind.SWITCH
    n_targets = min(max(2, profile.switch_targets), nblocks - 1 - i)
    targets = set()
    while len(targets) < n_targets:
        targets.add(rng.randint(i + 1, nblocks - 1))
    block.switch_targets = tuple(sorted(targets))
