"""Trace infrastructure.

Traces are sequences of *block-visit events* — each event records that the
fetch stream entered a basic block at a byte address, executed ``ninstr``
instructions there, and how it arrived (a :class:`~repro.isa.TransitionKind`).
Data accesses performed while in the block are attached as byte addresses.

Keeping traces at block granularity (instead of per-line) makes them
**line-size agnostic**: the same trace replays correctly for the 32B–256B
line-size sweep of the paper's Figure 1.  :func:`iter_line_visits` lowers a
block-event stream to cache-line visits for a concrete line size.

The synthetic commercial-workload generators live in
:mod:`repro.trace.synth`.  :mod:`repro.trace.compiled` packs a lowered
visit stream into flat columns (the engine's allocation-free fast path and
the unit the on-disk trace store of :mod:`repro.trace.store` persists).
"""

from repro.trace.analysis import StreamAnalysis, analyze_stream
from repro.trace.compiled import (
    TRACE_SCHEMA_VERSION,
    CompiledTrace,
    CompiledTraceError,
    TraceLike,
    compile_traces,
)
from repro.trace.io import TraceFormatError, read_trace, write_trace
from repro.trace.record import INSTRUCTION_SIZE, BlockEvent
from repro.trace.stats import TraceStats, compute_trace_stats
from repro.trace.stream import LineVisit, Trace, iter_line_visits

__all__ = [
    "BlockEvent",
    "INSTRUCTION_SIZE",
    "Trace",
    "LineVisit",
    "iter_line_visits",
    "CompiledTrace",
    "CompiledTraceError",
    "TraceLike",
    "compile_traces",
    "TRACE_SCHEMA_VERSION",
    "TraceStats",
    "compute_trace_stats",
    "read_trace",
    "write_trace",
    "TraceFormatError",
    "StreamAnalysis",
    "analyze_stream",
]
