"""Compiled (pre-lowered) traces: packed line-visit columns + file format.

:func:`~repro.trace.stream.iter_line_visits` lowers block events to line
visits lazily, allocating one generator frame and one ``LineVisit`` tuple
per visit — fine for a single pass, wasteful when the same trace replays
across a line-size sweep or a pool of worker processes.  A
:class:`CompiledTrace` materializes that stream **once** into parallel
packed columns (``array`` typecodes keep them compact and index-addressable
with no per-visit allocation):

- ``lines``   (``'q'``) — cache-line index per visit;
- ``kinds``   (``'b'``) — :class:`~repro.isa.TransitionKind` as int;
- ``ninstr``  (``'i'``) — instructions executed in the visit;
- ``data``    (``'q'``) — flat byte addresses of all data accesses, with
  ``offsets`` (``'q'``, ``n_visits + 1`` entries) delimiting each visit's
  slice;
- ``disc``    (``'b'``) — precomputed "this visit is a discontinuity from
  the previous one" flag (:func:`~repro.isa.classify.is_discontinuity`
  depends only on trace content, so it is compile-time constant).

:meth:`CompiledTrace.iter_visits` reproduces the generator's output
*exactly* (property-tested), and :class:`~repro.core.engine.CoreEngine`
consumes the columns directly by index on its fast path.

The on-disk form (see :mod:`repro.trace.store` for the keyed store) is a
little-endian binary file: magic, ``TRACE_SCHEMA_VERSION``, the full
provenance key (workload, seed, core, n_instructions, line_size), column
lengths, a CRC-32 of the column payload, and an exact-length check.  Any
mismatch — wrong magic, stale schema, truncation, bit rot, provenance that
does not match the requested key — raises :class:`CompiledTraceError`,
which callers treat as a miss and recompile.  **Bump
:data:`TRACE_SCHEMA_VERSION` whenever trace synthesis, the lowering, the
discontinuity taxonomy or this layout changes** — lint rule R2 hashes the
responsible modules against the behavior manifest to make forgetting that
bump a static error.
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from typing import Iterator, List, Tuple, Union

from repro.isa.classify import is_discontinuity
from repro.isa.kinds import TransitionKind
from repro.trace.stream import LineVisit, Trace, iter_line_visits

#: bump whenever compiled-trace *content* for an unchanged key could change:
#: trace synthesis, iter_line_visits, the transition taxonomy, the
#: discontinuity rule, or this file layout.  Every stored file becomes
#: invisible and is recompiled on demand.
TRACE_SCHEMA_VERSION = 1

_MAGIC = b"RPCTRC01"

#: fixed-size header: magic, schema, line_size, seed, core, n_instructions,
#: n_visits, n_data, payload crc32, workload-name length, trace-name length.
_HEADER = struct.Struct("<8sIIqiQQQIHH")

_KIND_MEMBERS = list(TransitionKind)


class CompiledTraceError(ValueError):
    """A compiled-trace blob is corrupt, truncated, stale or mismatched."""


def _column_bytes(column: array) -> bytes:
    """Column payload bytes, normalized to little-endian."""
    if sys.byteorder == "big":
        swapped = array(column.typecode, column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


def _column_from(typecode: str, blob: bytes) -> array:
    column = array(typecode)
    column.frombytes(blob)
    if sys.byteorder == "big":
        column.byteswap()
    return column


class CompiledTrace:
    """Packed, index-addressable form of one core's line-visit stream."""

    __slots__ = (
        "workload",
        "name",
        "seed",
        "core",
        "n_instructions",
        "line_size",
        "lines",
        "kinds",
        "ninstr",
        "data",
        "offsets",
        "disc",
    )

    def __init__(
        self,
        workload: str,
        name: str,
        seed: int,
        core: int,
        n_instructions: int,
        line_size: int,
        lines: array,
        kinds: array,
        ninstr: array,
        data: array,
        offsets: array,
        disc: array,
    ) -> None:
        self.workload = workload
        self.name = name
        self.seed = seed
        self.core = core
        self.n_instructions = n_instructions
        self.line_size = line_size
        self.lines = lines
        self.kinds = kinds
        self.ninstr = ninstr
        self.data = data
        self.offsets = offsets
        self.disc = disc

    @property
    def visit_count(self) -> int:
        return len(self.lines)

    @property
    def total_instructions(self) -> int:
        return sum(self.ninstr)

    def __len__(self) -> int:
        return len(self.lines)

    # ------------------------------------------------------------------ #
    # Compilation and replay
    # ------------------------------------------------------------------ #

    @classmethod
    def compile(
        cls,
        trace: Trace,
        line_size: int,
        workload: str,
        seed: int,
        core: int,
        n_instructions: int,
    ) -> "CompiledTrace":
        """Materialize ``iter_line_visits(trace.events, line_size)``.

        ``workload``/``seed``/``core``/``n_instructions`` are the *request*
        key the store files this trace under — NOT ``trace.seed``: for
        ``mix`` the per-core trace name differs from the workload name, and
        ``trace.seed`` is a derived (hashed, 64-bit) sub-seed, while store
        lookups present the experiment seed.  ``trace.name`` still travels
        along as informational provenance.
        """
        lines = array("q")
        kinds = array("b")
        ninstr = array("i")
        data = array("q")
        offsets = array("q", [0])
        disc = array("b")
        members = _KIND_MEMBERS
        prev = -1
        for line, kind, count, visit_data in iter_line_visits(trace.events, line_size):
            lines.append(line)
            kinds.append(kind)
            ninstr.append(count)
            if visit_data:
                data.extend(visit_data)
            offsets.append(len(data))
            disc.append(
                1
                if prev >= 0 and line != prev and is_discontinuity(members[kind], prev, line)
                else 0
            )
            prev = line
        return cls(
            workload=workload,
            name=trace.name,
            seed=seed,
            core=core,
            n_instructions=n_instructions,
            line_size=line_size,
            lines=lines,
            kinds=kinds,
            ninstr=ninstr,
            data=data,
            offsets=offsets,
            disc=disc,
        )

    def iter_visits(self) -> Iterator[LineVisit]:
        """Replay the exact :func:`iter_line_visits` output (round-trip)."""
        lines, kinds, ninstr = self.lines, self.kinds, self.ninstr
        data, offsets = self.data, self.offsets
        for i in range(len(lines)):
            start, end = offsets[i], offsets[i + 1]
            yield LineVisit(
                lines[i],
                kinds[i],
                ninstr[i],
                tuple(data[start:end]) if end > start else (),
            )

    # ------------------------------------------------------------------ #
    # Binary serialization
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        workload_raw = self.workload.encode("utf-8")
        name_raw = self.name.encode("utf-8")
        columns = [
            _column_bytes(self.lines),
            _column_bytes(self.kinds),
            _column_bytes(self.ninstr),
            _column_bytes(self.disc),
            _column_bytes(self.offsets),
            _column_bytes(self.data),
        ]
        crc = 0
        for blob in columns:
            crc = zlib.crc32(blob, crc)
        header = _HEADER.pack(
            _MAGIC,
            TRACE_SCHEMA_VERSION,
            self.line_size,
            self.seed,
            self.core,
            self.n_instructions,
            len(self.lines),
            len(self.data),
            crc & 0xFFFFFFFF,
            len(workload_raw),
            len(name_raw),
        )
        return b"".join([header, workload_raw, name_raw] + columns)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompiledTrace":
        if len(blob) < _HEADER.size:
            raise CompiledTraceError(
                f"blob too short for header ({len(blob)} < {_HEADER.size} bytes)"
            )
        (
            magic,
            schema,
            line_size,
            seed,
            core,
            n_instructions,
            n_visits,
            n_data,
            crc_expected,
            workload_len,
            name_len,
        ) = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise CompiledTraceError(f"bad magic {magic!r} (expected {_MAGIC!r})")
        if schema != TRACE_SCHEMA_VERSION:
            raise CompiledTraceError(
                f"stale schema {schema} (current {TRACE_SCHEMA_VERSION})"
            )
        sizes = [n_visits * 8, n_visits, n_visits * 4, n_visits, (n_visits + 1) * 8, n_data * 8]
        expected_len = _HEADER.size + workload_len + name_len + sum(sizes)
        if len(blob) != expected_len:
            raise CompiledTraceError(
                f"length mismatch: {len(blob)} bytes, expected {expected_len} "
                "(truncated or trailing garbage)"
            )
        pos = _HEADER.size
        workload = blob[pos : pos + workload_len].decode("utf-8")
        pos += workload_len
        name = blob[pos : pos + name_len].decode("utf-8")
        pos += name_len
        payload = blob[pos:]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc_expected:
            raise CompiledTraceError("payload checksum mismatch (corrupt columns)")
        chunks: List[bytes] = []
        for size in sizes:
            chunks.append(payload[:size])
            payload = payload[size:]
        offsets = _column_from("q", chunks[4])
        if offsets[0] != 0 or offsets[-1] != n_data:
            raise CompiledTraceError("offsets column inconsistent with data length")
        return cls(
            workload=workload,
            name=name,
            seed=seed,
            core=core,
            n_instructions=n_instructions,
            line_size=line_size,
            lines=_column_from("q", chunks[0]),
            kinds=_column_from("b", chunks[1]),
            ninstr=_column_from("i", chunks[2]),
            disc=_column_from("b", chunks[3]),
            offsets=offsets,
            data=_column_from("q", chunks[5]),
        )


#: what :class:`~repro.cmp.system.System` / the engine accept per core.
TraceLike = Union[Trace, CompiledTrace]


def compile_traces(
    traces: List[Trace],
    line_size: int,
    workload: str,
    seed: int,
    n_instructions: int,
) -> List[CompiledTrace]:
    """Compile one trace per core under a shared request key."""
    return [
        CompiledTrace.compile(
            trace,
            line_size,
            workload=workload,
            seed=seed,
            core=core,
            n_instructions=n_instructions,
        )
        for core, trace in enumerate(traces)
    ]


def visits_equal(compiled: CompiledTrace, trace: Trace) -> Tuple[bool, int]:
    """Exhaustively compare a compiled trace against the live lowering.

    Returns ``(equal, first_mismatch_index)`` (index is -1 when equal);
    used by tests and by ``scripts/profile_engine.py --verify``.
    """
    live = iter_line_visits(trace.events, compiled.line_size)
    for index, replayed in enumerate(compiled.iter_visits()):
        expected = next(live, None)
        if expected != replayed:
            return False, index
    if next(live, None) is not None:
        return False, compiled.visit_count
    return True, -1
