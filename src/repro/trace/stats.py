"""Trace-level statistics.

These are *trace* properties (independent of any cache configuration):
instruction counts, transition-kind histogram, instruction/data footprints,
and basic-block geometry.  They are used by the workload-profile calibration
tests to check that the synthetic generators produce streams with the
published characteristics (large instruction footprint, small basic blocks,
call-heavy control flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.isa.kinds import TransitionKind
from repro.trace.record import INSTRUCTION_SIZE, BlockEvent


@dataclass
class TraceStats:
    """Summary statistics of a trace."""

    total_instructions: int = 0
    total_events: int = 0
    total_data_accesses: int = 0
    kind_counts: Dict[TransitionKind, int] = field(default_factory=dict)
    instruction_footprint_bytes: int = 0
    data_footprint_bytes: int = 0

    @property
    def mean_block_instructions(self) -> float:
        """Mean instructions per block visit."""
        if self.total_events == 0:
            return 0.0
        return self.total_instructions / self.total_events

    @property
    def data_accesses_per_instruction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.total_data_accesses / self.total_instructions

    def kind_fraction(self, kind: TransitionKind) -> float:
        """Fraction of block-visit transitions of the given kind."""
        if self.total_events == 0:
            return 0.0
        return self.kind_counts.get(kind, 0) / self.total_events


def compute_trace_stats(
    events: Iterable[BlockEvent],
    footprint_granularity: int = 64,
) -> TraceStats:
    """Compute :class:`TraceStats` over *events*.

    ``footprint_granularity`` sets the block size (bytes) used to measure
    instruction and data footprints; the default matches the paper's 64B
    cache lines.
    """
    if footprint_granularity <= 0:
        raise ValueError("footprint_granularity must be positive")
    shift = footprint_granularity.bit_length() - 1
    if 1 << shift != footprint_granularity:
        raise ValueError("footprint_granularity must be a power of two")

    stats = TraceStats()
    kind_counts: Dict[int, int] = {}
    instr_lines = set()
    data_lines = set()

    for addr, ninstr, kind, data in events:
        stats.total_events += 1
        stats.total_instructions += ninstr
        stats.total_data_accesses += len(data)
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        first = addr >> shift
        last = (addr + ninstr * INSTRUCTION_SIZE - 1) >> shift
        for line in range(first, last + 1):
            instr_lines.add(line)
        for daddr in data:
            data_lines.add(daddr >> shift)

    stats.kind_counts = {TransitionKind(k): v for k, v in kind_counts.items()}
    stats.instruction_footprint_bytes = len(instr_lines) * footprint_granularity
    stats.data_footprint_bytes = len(data_lines) * footprint_granularity
    return stats
