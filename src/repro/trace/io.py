"""Binary trace file format.

The paper's traces are proprietary; this repo generates synthetic ones.  To
let users snapshot a generated trace (generation is the slowest step for
large runs) or import traces from their own tools, we define a compact
binary format:

Header (little endian)::

    magic     : 8 bytes  = b"RPTRACE1"
    seed      : u64
    n_events  : u64
    name_len  : u16
    name      : utf-8 bytes

Per event::

    addr   : u64   byte address of the block visit
    ninstr : u16   instructions executed
    kind   : u8    TransitionKind value
    ndata  : u8    number of data accesses (capped at 255 at write time)
    data   : ndata * u64

The format is deliberately boring: fixed-width struct records, no
compression, validated eagerly on read.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import List, Union

from repro.isa.kinds import TransitionKind
from repro.trace.record import BlockEvent
from repro.trace.stream import Trace

_MAGIC = b"RPTRACE1"
_HEADER = struct.Struct("<8sQQH")
_EVENT = struct.Struct("<QHBB")

_VALID_KINDS = frozenset(int(kind) for kind in TransitionKind)


class TraceFormatError(Exception):
    """Raised when a trace file is malformed."""


def write_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Serialise *trace* to *path* in the RPTRACE1 format."""
    name_bytes = trace.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ValueError("trace name too long to serialise")
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, trace.seed, len(trace.events), len(name_bytes)))
        handle.write(name_bytes)
        pack_event = _EVENT.pack
        write = handle.write
        for addr, ninstr, kind, data in trace.events:
            ndata = len(data)
            if ndata > 255:
                data = data[:255]
                ndata = 255
            write(pack_event(addr, ninstr, kind, ndata))
            if ndata:
                write(struct.pack(f"<{ndata}Q", *data))


def read_trace(path: Union[str, Path]) -> Trace:
    """Deserialise a trace previously written by :func:`write_trace`.

    Raises :class:`TraceFormatError` on any structural problem (bad magic,
    truncation, unknown transition kinds).
    """
    with open(path, "rb") as handle:
        blob = handle.read()

    if len(blob) < _HEADER.size:
        raise TraceFormatError("file shorter than header")
    magic, seed, n_events, name_len = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    offset = _HEADER.size
    if len(blob) < offset + name_len:
        raise TraceFormatError("truncated name field")
    try:
        name = blob[offset : offset + name_len].decode("utf-8")
    except UnicodeDecodeError:
        raise TraceFormatError("trace name is not valid UTF-8") from None
    offset += name_len

    # Reject absurd event counts up front: every event needs at least one
    # fixed-width record, so a header declaring more events than the file
    # could possibly hold is corrupt (and would otherwise spin the read
    # loop through n_events iterations before noticing).
    if n_events * _EVENT.size > len(blob) - offset:
        raise TraceFormatError(
            f"header declares {n_events} events but only "
            f"{len(blob) - offset} bytes follow the name"
        )

    events: List[BlockEvent] = []
    unpack_event = _EVENT.unpack_from
    event_size = _EVENT.size
    for index in range(n_events):
        if len(blob) < offset + event_size:
            raise TraceFormatError(f"truncated at event {index}")
        addr, ninstr, kind, ndata = unpack_event(blob, offset)
        offset += event_size
        if kind not in _VALID_KINDS:
            raise TraceFormatError(f"unknown transition kind {kind} at event {index}")
        if ninstr == 0:
            raise TraceFormatError(f"zero-instruction event at index {index}")
        if ndata:
            end = offset + 8 * ndata
            if len(blob) < end:
                raise TraceFormatError(f"truncated data list at event {index}")
            data = struct.unpack_from(f"<{ndata}Q", blob, offset)
            offset = end
        else:
            data = ()
        events.append(BlockEvent(addr, ninstr, kind, data))

    if offset != len(blob):
        raise TraceFormatError(f"{len(blob) - offset} trailing bytes after last event")
    return Trace(name, seed, events)
