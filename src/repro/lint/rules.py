"""The project-specific invariant rules (R1–R5).

Each rule encodes one contract the reproduction's results depend on:

- **R1 determinism** — simulator code never reads ambient randomness or the
  host clock; only :mod:`repro.util.rng` streams (and the allowlisted
  :mod:`repro.util.clock` shim) are permitted.
- **R2 cache-safety** — every result-affecting module is hashed into a
  committed manifest; changing one without bumping the disk cache's
  ``SCHEMA_VERSION`` fails lint (see :mod:`repro.lint.manifest`).
- **R3 RunSpec sync** — ``run_system`` cannot gain a parameter that RunSpec
  does not carry, and every RunSpec field must feed ``canonical_dict`` so
  it keys the persistent cache.
- **R4 executor boundary** — worker-payload builders construct JSON-safe
  plain data only (no sets, lambdas, or ad-hoc class instances).
- **R5 catalog sync** — every catalog ``Experiment`` declaration carries a
  grid, panels and expectations, and is registered exactly once.

Every rule takes an optional ``allowlist`` so legitimate exceptions are
explicit constructor data (tests exercise this; ``docs/static_analysis.md``
documents the workflow).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lint import manifest as manifest_mod
from repro.lint.engine import LintError, Project, Rule, Violation, dotted_name

# --------------------------------------------------------------------- #
# R1 — determinism
# --------------------------------------------------------------------- #

#: modules that are nondeterministic by construction; importing them (or a
#: submodule) anywhere in simulator code is a violation.
FORBIDDEN_MODULES = ("random", "secrets", "numpy.random")

#: attribute paths that read ambient state (clock, OS entropy).
FORBIDDEN_ATTRS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

R1_HINT = (
    "derive randomness from repro.util.rng (SplitMix64 / derive_seed) and "
    "wall-clock readings from repro.util.clock; if this module legitimately "
    "needs ambient state, add it to the R1 allowlist with a reason"
)


def _module_matches(module: str, forbidden: str) -> bool:
    return module == forbidden or module.startswith(forbidden + ".")


class DeterminismRule(Rule):
    """R1: no ambient randomness or wall-clock reads in simulator code."""

    name = "R1"
    title = "determinism: no random/clock/entropy outside repro.util.rng"

    DEFAULT_SCAN_DIRS = ("src/repro", "scripts")
    DEFAULT_ALLOWLIST: Mapping[str, str] = {
        "src/repro/util/clock.py": "the one sanctioned wall-clock gateway",
        "scripts/profile_engine.py": "benchmark harness; timing wall-clock is its purpose",
    }

    def __init__(
        self,
        scan_dirs: Optional[Sequence[str]] = None,
        allowlist: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.scan_dirs = tuple(scan_dirs if scan_dirs is not None else self.DEFAULT_SCAN_DIRS)
        self.allowlist = dict(self.DEFAULT_ALLOWLIST if allowlist is None else allowlist)

    def check(self, project: Project) -> List[Violation]:
        violations: List[Violation] = []
        for rel in self._scan_files(project):
            if rel in self.allowlist:
                continue
            violations.extend(self._check_file(project, rel))
        return violations

    def _scan_files(self, project: Project) -> List[str]:
        files: List[str] = []
        for rel_dir in self.scan_dirs:
            files.extend(project.iter_python(rel_dir))
        return sorted(set(files))

    def _check_file(self, project: Project, rel: str) -> List[Violation]:
        tree = project.tree(rel)
        violations: List[Violation] = []
        #: name bound in this module -> the dotted path it resolves to.
        bindings: Dict[str, str] = {}

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    bindings[bound] = alias.name if alias.asname else alias.name.split(".")[0]
                    for forbidden in FORBIDDEN_MODULES:
                        if _module_matches(alias.name, forbidden):
                            violations.append(
                                self.violation(
                                    rel,
                                    node.lineno,
                                    f"import of nondeterministic module {alias.name!r}",
                                    R1_HINT,
                                )
                            )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level:  # relative import; nothing forbidden is local
                    continue
                if any(_module_matches(module, forbidden) for forbidden in FORBIDDEN_MODULES):
                    violations.append(
                        self.violation(
                            rel,
                            node.lineno,
                            f"import from nondeterministic module {module!r}",
                            R1_HINT,
                        )
                    )
                    continue
                for alias in node.names:
                    resolved = f"{module}.{alias.name}" if module else alias.name
                    bindings[alias.asname or alias.name] = resolved
                    if resolved in FORBIDDEN_ATTRS:
                        violations.append(
                            self.violation(
                                rel,
                                node.lineno,
                                f"import of ambient-state function {resolved!r}",
                                R1_HINT,
                            )
                        )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = dotted_name(node)
            if dotted is None:
                continue
            root, _, rest = dotted.partition(".")
            resolved = bindings.get(root)
            if resolved is None:
                continue
            full = f"{resolved}.{rest}" if rest else resolved
            if full in FORBIDDEN_ATTRS:
                violations.append(
                    self.violation(
                        rel,
                        node.lineno,
                        f"use of ambient-state function {full!r}",
                        R1_HINT,
                    )
                )
            elif any(_module_matches(full, forbidden) for forbidden in FORBIDDEN_MODULES):
                violations.append(
                    self.violation(
                        rel,
                        node.lineno,
                        f"use of nondeterministic API {full!r}",
                        R1_HINT,
                    )
                )
        return violations


# --------------------------------------------------------------------- #
# R2 — cache-safety (behavior manifest vs SCHEMA_VERSION)
# --------------------------------------------------------------------- #

def _artifact_hint(artifact: "manifest_mod.Artifact") -> str:
    return (
        f"bump {artifact.schema_constant} in {artifact.schema_module} "
        f"(invalidating stale cache entries), then run `python -m repro.lint "
        "--update-manifest`; if the edit provably cannot change results "
        "(comments, formatting), running --update-manifest alone is "
        "acceptable — say so in review"
    )


R2_HINT = _artifact_hint(manifest_mod.ARTIFACTS[0])


class BehaviorManifestRule(Rule):
    """R2: result-affecting modules may not change under a frozen schema.

    The committed manifest records, per schema-versioned artifact (the
    disk result cache, the compiled-trace store), a hash of each module the
    artifact's contents depend on plus the schema version the hashes were
    taken under.  While an artifact's current version equals its recorded
    one, any hash drift under that artifact is a violation.  A version bump
    acknowledges the behavior change (every entry of that artifact is
    already invalidated by it) and silences that artifact's checks until
    the manifest is refreshed — the *other* artifacts keep checking, so a
    trace-affecting edit must move ``TRACE_SCHEMA_VERSION`` even when
    ``SCHEMA_VERSION`` was already bumped.
    """

    name = "R2"
    title = "cache-safety: behavior changes require a schema-version bump"

    def check(self, project: Project) -> List[Violation]:
        recorded = manifest_mod.load_manifest(project)
        if recorded is None:
            return [
                self.violation(
                    manifest_mod.MANIFEST_PATH,
                    0,
                    "behavior manifest is missing",
                    "run `python -m repro.lint --update-manifest` and commit the result",
                )
            ]
        violations: List[Violation] = []
        reported: Set[str] = set()
        for artifact in manifest_mod.active_artifacts(project):
            current_version = manifest_mod.artifact_schema_version(project, artifact)
            if recorded.get(artifact.version_key) != current_version:
                # The bump already invalidated this artifact's entries;
                # hashes refresh with the accompanying --update-manifest run.
                continue
            hint = _artifact_hint(artifact)
            expected: Dict[str, str] = dict(recorded.get(artifact.files_key, {}))
            actual = manifest_mod.artifact_hashes(project, artifact)
            for path in sorted(set(expected) | set(actual)):
                if path in reported:
                    continue
                if path not in actual:
                    violations.append(
                        self.violation(
                            manifest_mod.MANIFEST_PATH,
                            0,
                            f"manifest lists {path} but the module is gone",
                            hint,
                        )
                    )
                    reported.add(path)
                elif path not in expected:
                    violations.append(
                        self.violation(
                            path,
                            0,
                            "new result-affecting module is not in the behavior manifest",
                            hint,
                        )
                    )
                    reported.add(path)
                elif expected[path] != actual[path]:
                    violations.append(
                        self.violation(
                            path,
                            0,
                            "result-affecting module changed without a "
                            f"{artifact.schema_constant} bump (schema still "
                            f"{current_version}); stale {artifact.noun} entries "
                            "would be served as current",
                            hint,
                        )
                    )
                    reported.add(path)
        return violations


# --------------------------------------------------------------------- #
# R3 — RunSpec sync
# --------------------------------------------------------------------- #

R3_RUNNER = "src/repro/eval/runner.py"
R3_RUNSPEC = "src/repro/eval/runspec.py"


class RunSpecSyncRule(Rule):
    """R3: every ``run_system`` parameter is carried (and hashed) by RunSpec.

    Two checks: (a) each ``run_system`` parameter has a matching RunSpec
    field, so the executor and the caches can represent every run the
    drivers can ask for; (b) each RunSpec field appears as a key in
    ``canonical_dict``, so it participates in the persistent cache hash.
    The executor's one structural hole — ``prefetcher_factory`` cannot be
    carried by a plain-data spec — stays explicit via the allowlist, and
    fields that provably never change results (``engine_backend``) are
    exempted from (b) via the non-keyed allowlist so identical results are
    not duplicated across cache entries.
    """

    name = "R3"
    title = "RunSpec sync: run_system parameters ⊆ RunSpec fields ⊆ cache hash"

    DEFAULT_ALLOWLIST: Mapping[str, str] = {
        "prefetcher_factory": (
            "process-local callable; unpicklable and unhashable, carried "
            "declaratively as RunSpec.software_prefetch instead"
        ),
    }

    #: RunSpec fields deliberately excluded from canonical_dict: parameters
    #: that provably never change results, where keying the persistent
    #: cache on them would split identical results across entries.
    DEFAULT_NON_KEYED: Mapping[str, str] = {
        "engine_backend": (
            "execution strategy, not semantics: backends are bit-identical "
            "(pinned by the backend parity suite and the golden spec-parity "
            "hashes), so all backends share one cache entry"
        ),
    }

    def __init__(
        self,
        allowlist: Optional[Mapping[str, str]] = None,
        non_keyed_allowlist: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.allowlist = dict(self.DEFAULT_ALLOWLIST if allowlist is None else allowlist)
        self.non_keyed_allowlist = dict(
            self.DEFAULT_NON_KEYED if non_keyed_allowlist is None else non_keyed_allowlist
        )

    def check(self, project: Project) -> List[Violation]:
        run_system = _find_function(project.tree(R3_RUNNER), "run_system", R3_RUNNER)
        runspec_cls = _find_class(project.tree(R3_RUNSPEC), "RunSpec", R3_RUNSPEC)
        fields = _class_fields(runspec_cls)
        canonical_keys = _canonical_dict_keys(runspec_cls)

        violations: List[Violation] = []
        for arg in _all_args(run_system):
            if arg.arg in fields or arg.arg in self.allowlist:
                continue
            violations.append(
                self.violation(
                    R3_RUNNER,
                    arg.lineno,
                    f"run_system parameter {arg.arg!r} has no RunSpec field — the "
                    "executor and result caches cannot carry it",
                    f"add a {arg.arg!r} field to RunSpec (plus canonical_dict and "
                    "run_kwargs entries), or allowlist it with a reason if it is "
                    "genuinely uncarriable",
                )
            )
        for field in sorted(fields):
            if field in canonical_keys or field in self.non_keyed_allowlist:
                continue
            violations.append(
                self.violation(
                    R3_RUNSPEC,
                    fields[field],
                    f"RunSpec field {field!r} is missing from canonical_dict — it "
                    "would not key the persistent disk cache, so two different "
                    "runs could collide on one cache entry",
                    f"add a {field!r} entry to RunSpec.canonical_dict()",
                )
            )
        return violations


def _find_function(tree: ast.Module, name: str, rel: str) -> ast.FunctionDef:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    raise LintError(f"{rel}: expected a top-level function {name!r}")


def _find_class(tree: ast.Module, name: str, rel: str) -> ast.ClassDef:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    raise LintError(f"{rel}: expected a top-level class {name!r}")


def _all_args(func: ast.FunctionDef) -> List[ast.arg]:
    args = func.args
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


def _class_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """Dataclass field name -> line number (annotated class-body targets)."""
    fields: Dict[str, int] = {}
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            fields[node.target.id] = node.lineno
    return fields


def _canonical_dict_keys(cls: ast.ClassDef) -> Set[str]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == "canonical_dict":
            for inner in ast.walk(node):
                if isinstance(inner, ast.Return) and isinstance(inner.value, ast.Dict):
                    return {
                        key.value
                        for key in inner.value.keys
                        if isinstance(key, ast.Constant) and isinstance(key.value, str)
                    }
            raise LintError(
                f"{R3_RUNSPEC}: canonical_dict must return a dict literal so the "
                "cache key stays statically checkable"
            )
    raise LintError(f"{R3_RUNSPEC}: RunSpec has no canonical_dict method")


# --------------------------------------------------------------------- #
# R4 — executor boundary
# --------------------------------------------------------------------- #

#: builtins that construct values JSON cannot represent faithfully.
NON_JSON_BUILTINS = frozenset(
    {"set", "frozenset", "bytes", "bytearray", "complex", "memoryview", "object"}
)

#: NumPy scalar constructors: ``json.dump`` rejects their instances, and a
#: permissive encoder would persist them in a different textual form than
#: the plain int/float the reference backend produces.  Payload builders
#: must route such values through ``diskcache._plain_number`` instead.
NUMPY_SCALAR_CTORS = frozenset(
    {
        "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        "float16", "float32", "float64",
        "bool_", "intc", "intp", "longlong", "ulonglong",
    }
)

R4_HINT = (
    "worker payloads must be JSON-safe plain data (dict/list/str/int/float/"
    "bool/None): encode sets as sorted lists and objects via their "
    "plain-data form, exactly like diskcache.result_to_payload does"
)


class ExecutorBoundaryRule(Rule):
    """R4: worker-payload builders construct JSON-safe plain data only.

    The executor ships payloads across process boundaries and persists them
    as JSON; anything that is not plain data either crashes the pool or —
    worse — silently round-trips to a different value (sets to lists,
    tuples losing identity).  This rule walks the designated payload
    builders and rejects non-plain constructions.
    """

    name = "R4"
    title = "executor boundary: payload builders emit JSON-safe plain data"

    DEFAULT_TARGETS: Mapping[str, Tuple[str, ...]] = {
        "src/repro/eval/diskcache.py": (
            "result_to_payload",
            "_config_to_dict",
            "_core_to_dict",
            "_link_to_dict",
        ),
        "src/repro/eval/executor.py": ("_worker", "report_to_summary"),
    }

    def __init__(
        self,
        targets: Optional[Mapping[str, Iterable[str]]] = None,
        allowed_calls: Optional[Mapping[str, str]] = None,
    ) -> None:
        source = self.DEFAULT_TARGETS if targets is None else targets
        self.targets = {path: tuple(names) for path, names in source.items()}
        self.allowed_calls = dict(allowed_calls or {})

    def check(self, project: Project) -> List[Violation]:
        violations: List[Violation] = []
        for rel, names in sorted(self.targets.items()):
            tree = project.tree(rel)
            functions = {
                node.name: node
                for node in tree.body
                if isinstance(node, ast.FunctionDef)
            }
            for name in names:
                func = functions.get(name)
                if func is None:
                    violations.append(
                        self.violation(
                            rel,
                            0,
                            f"payload builder {name!r} not found — R4 no longer "
                            "guards the executor boundary",
                            "update ExecutorBoundaryRule.DEFAULT_TARGETS to the "
                            "current payload-builder names",
                        )
                    )
                    continue
                violations.extend(self._check_builder(rel, func))
        return violations

    def _check_builder(self, rel: str, func: ast.FunctionDef) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(func):
            if isinstance(node, (ast.Set, ast.SetComp)):
                violations.append(
                    self.violation(
                        rel,
                        node.lineno,
                        f"set constructed inside payload builder {func.name!r} "
                        "(JSON cannot represent sets)",
                        R4_HINT,
                    )
                )
            elif isinstance(node, ast.Lambda):
                violations.append(
                    self.violation(
                        rel,
                        node.lineno,
                        f"lambda inside payload builder {func.name!r} "
                        "(functions cannot cross the worker boundary)",
                        R4_HINT,
                    )
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                root, _, attr = dotted.partition(".")
                if root in ("np", "numpy") and attr in NUMPY_SCALAR_CTORS:
                    violations.append(
                        self.violation(
                            rel,
                            node.lineno,
                            f"numpy scalar {dotted}() constructed inside payload "
                            f"builder {func.name!r} is not JSON-representable",
                            R4_HINT + "; coerce numpy scalars to plain int/float "
                            "at the boundary (diskcache._plain_number)",
                        )
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                called = node.func.id
                if called in self.allowed_calls:
                    continue
                if called in NON_JSON_BUILTINS:
                    violations.append(
                        self.violation(
                            rel,
                            node.lineno,
                            f"{called}() constructed inside payload builder "
                            f"{func.name!r} is not JSON-representable",
                            R4_HINT,
                        )
                    )
                elif called[:1].isupper():
                    violations.append(
                        self.violation(
                            rel,
                            node.lineno,
                            f"class instance {called}() constructed inside payload "
                            f"builder {func.name!r}; payloads must stay plain data",
                            R4_HINT + "; or allowlist the call if it provably "
                            "returns plain data",
                        )
                    )
        return violations


# --------------------------------------------------------------------- #
# R5 — catalog sync
# --------------------------------------------------------------------- #

R5_CATALOG_INIT = "src/repro/eval/catalog/__init__.py"
R5_CATALOG_DIR = "src/repro/eval/catalog"

#: every Experiment declaration must pass these keywords explicitly.
R5_REQUIRED_KWARGS = (
    "name",
    "title",
    "paper",
    "tags",
    "grid",
    "panels",
    "expectations",
)

R5_HINT = (
    "declare every Experiment with explicit name/title/paper/tags/grid/"
    "panels/expectations keywords and list it exactly once in the module's "
    "EXPERIMENTS tuple"
)


class CatalogSyncRule(Rule):
    """R5: every catalog ``Experiment`` declaration is complete and registered.

    The declarative catalog replaced the old dual ``EXPERIMENTS``/
    ``EXPERIMENT_SPECS`` registry dicts, so the old drift mode (a driver
    missing its specs declarer) is gone by construction.  The remaining
    drift modes are: a catalog module not listed in ``CATALOG_MODULES``
    (its experiments silently vanish from the catalog), a declared
    ``Experiment`` missing from its module's ``EXPERIMENTS`` tuple (same
    silent vanishing), a declaration registered twice, a duplicate
    experiment name across modules, a declaration missing one of the
    required keywords, or a literal-empty ``panels``/``expectations``
    tuple.  Underscore-prefixed modules are plumbing and carry no
    declarations.  Sharing one grid object between several experiments
    (Figures 5/6/7) is explicitly fine — the rule checks the keyword is
    present, not that the value is private.
    """

    name = "R5"
    title = "catalog sync: Experiment declarations complete and registered once"

    DEFAULT_ALLOWLIST: Mapping[str, str] = {}

    def __init__(self, allowlist: Optional[Mapping[str, str]] = None) -> None:
        self.allowlist = dict(self.DEFAULT_ALLOWLIST if allowlist is None else allowlist)

    def check(self, project: Project) -> List[Violation]:
        listed = _catalog_modules(project.tree(R5_CATALOG_INIT))
        violations: List[Violation] = []
        for rel in project.iter_python(R5_CATALOG_DIR):
            stem = rel.rsplit("/", 1)[-1][:-3]
            if stem == "__init__" or stem.startswith("_"):
                continue
            if stem not in listed:
                violations.append(
                    self.violation(
                        R5_CATALOG_INIT,
                        0,
                        f"catalog module {stem!r} ({rel}) is not listed in "
                        "CATALOG_MODULES — its experiments are invisible to the catalog",
                        "add the module to CATALOG_MODULES (underscore-prefix it "
                        "if it is plumbing, not declarations)",
                    )
                )
        seen_names: Dict[str, str] = {}
        for module_name, line in listed.items():
            rel = f"{R5_CATALOG_DIR}/{module_name}.py"
            if not project.exists(rel):
                violations.append(
                    self.violation(
                        R5_CATALOG_INIT,
                        line,
                        f"CATALOG_MODULES lists {module_name!r} but {rel} does not exist",
                        "remove the stale entry or add the module",
                    )
                )
                continue
            violations.extend(self._check_module(project, rel, seen_names))
        return violations

    def _check_module(
        self, project: Project, rel: str, seen_names: Dict[str, str]
    ) -> List[Violation]:
        tree = project.tree(rel)
        declared: Dict[str, Tuple[int, ast.Call]] = {}
        for node in tree.body:
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            callee = dotted_name(node.value.func)
            if callee is not None and callee.split(".")[-1] == "Experiment":
                declared[node.targets[0].id] = (node.lineno, node.value)

        registered = _experiments_tuple(tree, rel)
        counts: Dict[str, int] = {}
        for entry_name, _ in registered:
            counts[entry_name] = counts.get(entry_name, 0) + 1

        violations: List[Violation] = []
        for var, (line, call) in sorted(declared.items()):
            experiment_name = _literal_str_kwarg(call, "name")
            if experiment_name is not None and experiment_name in self.allowlist:
                continue
            registrations = counts.get(var, 0)
            if registrations == 0:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r} is declared but missing from the "
                        "module's EXPERIMENTS tuple — it is invisible to the catalog",
                        R5_HINT + " (or allowlist the experiment name with a reason)",
                    )
                )
            elif registrations > 1:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r} is registered {registrations} times "
                        "in EXPERIMENTS",
                        "list each declaration exactly once",
                    )
                )
            violations.extend(self._check_call(rel, var, line, call, seen_names))
        for entry_name, line in registered:
            if entry_name not in declared:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"EXPERIMENTS lists {entry_name!r} but the module declares "
                        "no top-level Experiment by that name",
                        "remove the stale entry or declare the experiment",
                    )
                )
        return violations

    def _check_call(
        self,
        rel: str,
        var: str,
        line: int,
        call: ast.Call,
        seen_names: Dict[str, str],
    ) -> List[Violation]:
        violations: List[Violation] = []
        kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        for required in R5_REQUIRED_KWARGS:
            if required not in kwargs:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r} is missing the {required!r} keyword",
                        R5_HINT,
                    )
                )
        name_node = kwargs.get("name")
        if name_node is not None:
            if not (isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)):
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r}: name must be a string literal "
                        "for static checking",
                        "use a literal experiment name",
                    )
                )
            else:
                experiment_name = name_node.value
                previous = seen_names.get(experiment_name)
                if previous is not None:
                    violations.append(
                        self.violation(
                            rel,
                            line,
                            f"experiment name {experiment_name!r} is already "
                            f"declared at {previous}",
                            "experiment names must be unique across the catalog",
                        )
                    )
                else:
                    seen_names[experiment_name] = f"{rel}:{line}"
        for field in ("panels", "expectations"):
            node = kwargs.get(field)
            if isinstance(node, (ast.Tuple, ast.List)) and not node.elts:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r}: literal {field} tuple is empty",
                        f"declare at least one {field[:-1]} (an experiment without "
                        f"{field} asserts nothing)",
                    )
                )
        return violations


def _literal_str_kwarg(call: ast.Call, name: str) -> Optional[str]:
    for keyword in call.keywords:
        if keyword.arg == name:
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                return keyword.value.value
            return None
    return None


def _catalog_modules(tree: ast.Module) -> Dict[str, int]:
    """``CATALOG_MODULES`` entries -> line number (literal tuple required)."""
    for node in tree.body:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "CATALOG_MODULES"
                for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "CATALOG_MODULES":
                value = node.value
        if value is None:
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            raise LintError(
                f"{R5_CATALOG_INIT}: CATALOG_MODULES must be a tuple literal "
                "for static checking"
            )
        entries: Dict[str, int] = {}
        for element in value.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                raise LintError(
                    f"{R5_CATALOG_INIT}: CATALOG_MODULES entries must be "
                    "string literals"
                )
            entries[element.value] = element.lineno
        return entries
    raise LintError(f"{R5_CATALOG_INIT}: no module-level CATALOG_MODULES tuple found")


def _experiments_tuple(tree: ast.Module, rel: str) -> List[Tuple[str, int]]:
    """``EXPERIMENTS`` entries -> (referenced name, line); literal required."""
    for node in tree.body:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "EXPERIMENTS" for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "EXPERIMENTS":
                value = node.value
        if value is None:
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            raise LintError(
                f"{rel}: EXPERIMENTS must be a tuple literal for static checking"
            )
        entries: List[Tuple[str, int]] = []
        for element in value.elts:
            if not isinstance(element, ast.Name):
                raise LintError(
                    f"{rel}: EXPERIMENTS entries must be plain names of "
                    "module-level Experiment declarations"
                )
            entries.append((element.id, element.lineno))
        return entries
    raise LintError(f"{rel}: no module-level EXPERIMENTS tuple found")


def default_rules() -> List[Rule]:
    """The full rule set, in report order."""
    return [
        DeterminismRule(),
        BehaviorManifestRule(),
        RunSpecSyncRule(),
        ExecutorBoundaryRule(),
        CatalogSyncRule(),
    ]
