"""The project-specific invariant rules (R1–R8).

Each rule encodes one contract the reproduction's results depend on:

- **R1 determinism** — simulator code never reads ambient randomness or the
  host clock; only :mod:`repro.util.rng` streams (and the allowlisted
  :mod:`repro.util.clock` shim) are permitted.
- **R2 cache-safety** — every result-affecting module is hashed into a
  committed manifest; changing one without bumping the disk cache's
  ``SCHEMA_VERSION`` fails lint (see :mod:`repro.lint.manifest`).
- **R3 RunSpec sync** — ``run_system`` cannot gain a parameter that RunSpec
  does not carry, and every RunSpec field must feed ``canonical_dict`` so
  it keys the persistent cache.
- **R4 executor boundary** — worker-payload builders construct JSON-safe
  plain data only (no sets, lambdas, or ad-hoc class instances).
- **R5 catalog sync** — every catalog ``Experiment`` declaration carries a
  grid, panels and expectations, and is registered exactly once.
- **R6 backend drift** — fingerprinted reference hot paths may not change
  while their vectorized counterparts stand still (see the pair manifest
  in :mod:`repro.lint.manifest`).
- **R7 env registry** — every ``REPRO_*`` environment read goes through a
  constant declared in :mod:`repro.envvars`, and the docs env table stays
  generated from that registry.
- **R8 determinism taint** — a value *originating* from a forbidden source
  (clock, entropy, unordered-set iteration) may not flow into
  RunSpec-keyed state, even when the importing module itself is clean.

R1, R6, R7 and R8 run on the shared per-module analysis pass
(:mod:`repro.lint.dataflow`, incrementally cached by content hash), so
adding rules does not add parses.  Every rule takes an optional
``allowlist`` so legitimate exceptions are explicit constructor data
(tests exercise this; ``docs/static_analysis.md`` documents the
workflow).
"""

from __future__ import annotations

import ast
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lint import manifest as manifest_mod
from repro.lint.dataflow import (
    FORBIDDEN_ATTRS,
    FORBIDDEN_MODULES,
    forbidden_module_of,
    module_matches,
)
from repro.lint.engine import (
    Fix,
    LintError,
    Project,
    Rule,
    TextEdit,
    Violation,
    dotted_name,
)

# --------------------------------------------------------------------- #
# R1 — determinism
# --------------------------------------------------------------------- #

R1_HINT = (
    "derive randomness from repro.util.rng (SplitMix64 / derive_seed) and "
    "wall-clock readings from repro.util.clock; if this module legitimately "
    "needs ambient state, add it to the R1 allowlist with a reason"
)


#: kept as a module-level helper name for compatibility; the shared
#: implementation lives in :mod:`repro.lint.dataflow`.
_module_matches = module_matches

#: mechanical R1 rewrites: forbidden attribute use -> (sanctioned
#: replacement, import statement the replacement needs).
R1_FIX_ATTRS: Mapping[str, Tuple[str, str]] = {
    "time.time": ("clock.now", "from repro.util import clock"),
    "time.perf_counter": ("clock.perf_counter", "from repro.util import clock"),
    "time.monotonic": ("clock.monotonic", "from repro.util import clock"),
    "random.Random": ("rng.SplitMix64", "from repro.util import rng"),
}


def _span_edit(span: Sequence[int], replacement: str) -> TextEdit:
    return TextEdit(
        start_line=span[0],
        start_col=span[1],
        end_line=span[2],
        end_col=span[3],
        replacement=replacement,
    )


class DeterminismRule(Rule):
    """R1: no ambient randomness or wall-clock reads in simulator code."""

    name = "R1"
    title = "determinism: no random/clock/entropy outside repro.util.rng"

    DEFAULT_SCAN_DIRS = ("src/repro", "scripts")
    DEFAULT_ALLOWLIST: Mapping[str, str] = {
        "src/repro/util/clock.py": "the one sanctioned wall-clock gateway",
        "scripts/profile_engine.py": "benchmark harness; timing wall-clock is its purpose",
    }

    def __init__(
        self,
        scan_dirs: Optional[Sequence[str]] = None,
        allowlist: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.scan_dirs = tuple(scan_dirs if scan_dirs is not None else self.DEFAULT_SCAN_DIRS)
        self.allowlist = dict(self.DEFAULT_ALLOWLIST if allowlist is None else allowlist)

    def check(self, project: Project) -> List[Violation]:
        violations: List[Violation] = []
        for rel in self._scan_files(project):
            if rel in self.allowlist:
                continue
            violations.extend(self._check_file(project, rel))
        return violations

    def _scan_files(self, project: Project) -> List[str]:
        files: List[str] = []
        for rel_dir in self.scan_dirs:
            files.extend(project.iter_python(rel_dir))
        return sorted(set(files))

    def _check_file(self, project: Project, rel: str) -> List[Violation]:
        facts = project.facts(rel)
        violations: List[Violation] = []

        for stmt in facts["plain_imports"]:
            names = stmt["names"]
            for module, _asname in names:
                if forbidden_module_of(module) is None:
                    continue
                fix = None
                if names == [["random", None]]:
                    # `import random` alone rewrites cleanly to the shim.
                    fix = Fix(
                        edits=(_span_edit(stmt["span"], "from repro.util import rng"),),
                        description="replace `import random` with the rng shim",
                    )
                violations.append(
                    Violation(
                        rule=self.name,
                        path=rel,
                        line=stmt["span"][0],
                        message=f"import of nondeterministic module {module!r}",
                        hint=R1_HINT,
                        fix=fix,
                    )
                )

        for stmt in facts["from_imports"]:
            if stmt["level"]:  # relative import; nothing forbidden is local
                continue
            module = stmt["module"]
            if forbidden_module_of(module) is not None:
                violations.append(
                    self.violation(
                        rel,
                        stmt["lineno"],
                        f"import from nondeterministic module {module!r}",
                        R1_HINT,
                    )
                )
                continue
            for name, _asname in stmt["names"]:
                resolved = f"{module}.{name}" if module else name
                if resolved in FORBIDDEN_ATTRS:
                    violations.append(
                        self.violation(
                            rel,
                            stmt["lineno"],
                            f"import of ambient-state function {resolved!r}",
                            R1_HINT,
                        )
                    )

        for full, span in facts["uses"]:
            if full in FORBIDDEN_ATTRS:
                fix = None
                mapped = R1_FIX_ATTRS.get(full)
                if mapped is not None:
                    fix = Fix(
                        edits=(_span_edit(span, mapped[0]),),
                        imports=(mapped[1],),
                        description=f"rewrite {full} to {mapped[0]}",
                    )
                violations.append(
                    Violation(
                        rule=self.name,
                        path=rel,
                        line=span[0],
                        message=f"use of ambient-state function {full!r}",
                        hint=R1_HINT,
                        fix=fix,
                    )
                )
            elif forbidden_module_of(full) is not None:
                fix = None
                mapped = R1_FIX_ATTRS.get(full)
                if mapped is not None:
                    fix = Fix(
                        edits=(_span_edit(span, mapped[0]),),
                        imports=(mapped[1],),
                        description=f"rewrite {full} to {mapped[0]}",
                    )
                violations.append(
                    Violation(
                        rule=self.name,
                        path=rel,
                        line=span[0],
                        message=f"use of nondeterministic API {full!r}",
                        hint=R1_HINT,
                        fix=fix,
                    )
                )
        return violations


# --------------------------------------------------------------------- #
# R2 — cache-safety (behavior manifest vs SCHEMA_VERSION)
# --------------------------------------------------------------------- #

def _artifact_hint(artifact: "manifest_mod.Artifact") -> str:
    return (
        f"bump {artifact.schema_constant} in {artifact.schema_module} "
        f"(invalidating stale cache entries), then run `python -m repro.lint "
        "--update-manifest`; if the edit provably cannot change results "
        "(comments, formatting), running --update-manifest alone is "
        "acceptable — say so in review"
    )


R2_HINT = _artifact_hint(manifest_mod.ARTIFACTS[0])


class BehaviorManifestRule(Rule):
    """R2: result-affecting modules may not change under a frozen schema.

    The committed manifest records, per schema-versioned artifact (the
    disk result cache, the compiled-trace store), a hash of each module the
    artifact's contents depend on plus the schema version the hashes were
    taken under.  While an artifact's current version equals its recorded
    one, any hash drift under that artifact is a violation.  A version bump
    acknowledges the behavior change (every entry of that artifact is
    already invalidated by it) and silences that artifact's checks until
    the manifest is refreshed — the *other* artifacts keep checking, so a
    trace-affecting edit must move ``TRACE_SCHEMA_VERSION`` even when
    ``SCHEMA_VERSION`` was already bumped.
    """

    name = "R2"
    title = "cache-safety: behavior changes require a schema-version bump"

    def check(self, project: Project) -> List[Violation]:
        recorded = manifest_mod.load_manifest(project)
        if recorded is None:
            return [
                self.violation(
                    manifest_mod.MANIFEST_PATH,
                    0,
                    "behavior manifest is missing",
                    "run `python -m repro.lint --update-manifest` and commit the result",
                )
            ]
        violations: List[Violation] = []
        reported: Set[str] = set()
        for artifact in manifest_mod.active_artifacts(project):
            current_version = manifest_mod.artifact_schema_version(project, artifact)
            if recorded.get(artifact.version_key) != current_version:
                # The bump already invalidated this artifact's entries;
                # hashes refresh with the accompanying --update-manifest run.
                continue
            hint = _artifact_hint(artifact)
            expected: Dict[str, str] = dict(recorded.get(artifact.files_key, {}))
            actual = manifest_mod.artifact_hashes(project, artifact)
            for path in sorted(set(expected) | set(actual)):
                if path in reported:
                    continue
                if path not in actual:
                    violations.append(
                        self.violation(
                            manifest_mod.MANIFEST_PATH,
                            0,
                            f"manifest lists {path} but the module is gone",
                            hint,
                        )
                    )
                    reported.add(path)
                elif path not in expected:
                    violations.append(
                        self.violation(
                            path,
                            0,
                            "new result-affecting module is not in the behavior manifest",
                            hint,
                        )
                    )
                    reported.add(path)
                elif expected[path] != actual[path]:
                    violations.append(
                        self.violation(
                            path,
                            0,
                            "result-affecting module changed without a "
                            f"{artifact.schema_constant} bump (schema still "
                            f"{current_version}); stale {artifact.noun} entries "
                            "would be served as current",
                            hint,
                        )
                    )
                    reported.add(path)
        return violations


# --------------------------------------------------------------------- #
# R3 — RunSpec sync
# --------------------------------------------------------------------- #

R3_RUNNER = "src/repro/eval/runner.py"
R3_RUNSPEC = "src/repro/eval/runspec.py"


class RunSpecSyncRule(Rule):
    """R3: every ``run_system`` parameter is carried (and hashed) by RunSpec.

    Two checks: (a) each ``run_system`` parameter has a matching RunSpec
    field, so the executor and the caches can represent every run the
    drivers can ask for; (b) each RunSpec field appears as a key in
    ``canonical_dict``, so it participates in the persistent cache hash.
    The executor's one structural hole — ``prefetcher_factory`` cannot be
    carried by a plain-data spec — stays explicit via the allowlist, and
    fields that provably never change results (``engine_backend``) are
    exempted from (b) via the non-keyed allowlist so identical results are
    not duplicated across cache entries.
    """

    name = "R3"
    title = "RunSpec sync: run_system parameters ⊆ RunSpec fields ⊆ cache hash"

    DEFAULT_ALLOWLIST: Mapping[str, str] = {
        "prefetcher_factory": (
            "process-local callable; unpicklable and unhashable, carried "
            "declaratively as RunSpec.software_prefetch instead"
        ),
    }

    #: RunSpec fields deliberately excluded from canonical_dict: parameters
    #: that provably never change results, where keying the persistent
    #: cache on them would split identical results across entries.
    DEFAULT_NON_KEYED: Mapping[str, str] = {
        "engine_backend": (
            "execution strategy, not semantics: backends are bit-identical "
            "(pinned by the backend parity suite and the golden spec-parity "
            "hashes), so all backends share one cache entry"
        ),
    }

    def __init__(
        self,
        allowlist: Optional[Mapping[str, str]] = None,
        non_keyed_allowlist: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.allowlist = dict(self.DEFAULT_ALLOWLIST if allowlist is None else allowlist)
        self.non_keyed_allowlist = dict(
            self.DEFAULT_NON_KEYED if non_keyed_allowlist is None else non_keyed_allowlist
        )

    def check(self, project: Project) -> List[Violation]:
        run_system = _find_function(project.tree(R3_RUNNER), "run_system", R3_RUNNER)
        runspec_cls = _find_class(project.tree(R3_RUNSPEC), "RunSpec", R3_RUNSPEC)
        fields = _class_fields(runspec_cls)
        canonical_keys = _canonical_dict_keys(runspec_cls)

        violations: List[Violation] = []
        for arg in _all_args(run_system):
            if arg.arg in fields or arg.arg in self.allowlist:
                continue
            violations.append(
                self.violation(
                    R3_RUNNER,
                    arg.lineno,
                    f"run_system parameter {arg.arg!r} has no RunSpec field — the "
                    "executor and result caches cannot carry it",
                    f"add a {arg.arg!r} field to RunSpec (plus canonical_dict and "
                    "run_kwargs entries), or allowlist it with a reason if it is "
                    "genuinely uncarriable",
                )
            )
        for field in sorted(fields):
            if field in canonical_keys or field in self.non_keyed_allowlist:
                continue
            violations.append(
                self.violation(
                    R3_RUNSPEC,
                    fields[field],
                    f"RunSpec field {field!r} is missing from canonical_dict — it "
                    "would not key the persistent disk cache, so two different "
                    "runs could collide on one cache entry",
                    f"add a {field!r} entry to RunSpec.canonical_dict()",
                )
            )
        return violations


def _find_function(tree: ast.Module, name: str, rel: str) -> ast.FunctionDef:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    raise LintError(f"{rel}: expected a top-level function {name!r}")


def _find_class(tree: ast.Module, name: str, rel: str) -> ast.ClassDef:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    raise LintError(f"{rel}: expected a top-level class {name!r}")


def _all_args(func: ast.FunctionDef) -> List[ast.arg]:
    args = func.args
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


def _class_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """Dataclass field name -> line number (annotated class-body targets)."""
    fields: Dict[str, int] = {}
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            fields[node.target.id] = node.lineno
    return fields


def _canonical_dict_keys(cls: ast.ClassDef) -> Set[str]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == "canonical_dict":
            for inner in ast.walk(node):
                if isinstance(inner, ast.Return) and isinstance(inner.value, ast.Dict):
                    return {
                        key.value
                        for key in inner.value.keys
                        if isinstance(key, ast.Constant) and isinstance(key.value, str)
                    }
            raise LintError(
                f"{R3_RUNSPEC}: canonical_dict must return a dict literal so the "
                "cache key stays statically checkable"
            )
    raise LintError(f"{R3_RUNSPEC}: RunSpec has no canonical_dict method")


# --------------------------------------------------------------------- #
# R4 — executor boundary
# --------------------------------------------------------------------- #

#: builtins that construct values JSON cannot represent faithfully.
NON_JSON_BUILTINS = frozenset(
    {"set", "frozenset", "bytes", "bytearray", "complex", "memoryview", "object"}
)

#: NumPy scalar constructors: ``json.dump`` rejects their instances, and a
#: permissive encoder would persist them in a different textual form than
#: the plain int/float the reference backend produces.  Payload builders
#: must route such values through ``diskcache._plain_number`` instead.
NUMPY_SCALAR_CTORS = frozenset(
    {
        "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        "float16", "float32", "float64",
        "bool_", "intc", "intp", "longlong", "ulonglong",
    }
)

#: numba scalar-type constructors: calling ``numba.int64(...)``-style types
#: outside compiled code boxes a NumPy scalar, so a jitted helper's result
#: crossing the executor boundary has the exact same JSON hazard as the
#: NumPy set above.  Mirrors numba.types' numeric names.
NUMBA_SCALAR_CTORS = frozenset(
    {
        "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        "float32", "float64", "boolean",
        "intc", "intp", "uintc", "uintp",
    }
)

R4_HINT = (
    "worker payloads must be JSON-safe plain data (dict/list/str/int/float/"
    "bool/None): encode sets as sorted lists and objects via their "
    "plain-data form, exactly like diskcache.result_to_payload does"
)


class ExecutorBoundaryRule(Rule):
    """R4: worker-payload builders construct JSON-safe plain data only.

    The executor ships payloads across process boundaries and persists them
    as JSON; anything that is not plain data either crashes the pool or —
    worse — silently round-trips to a different value (sets to lists,
    tuples losing identity).  This rule walks the designated payload
    builders and rejects non-plain constructions.
    """

    name = "R4"
    title = "executor boundary: payload builders emit JSON-safe plain data"

    DEFAULT_TARGETS: Mapping[str, Tuple[str, ...]] = {
        "src/repro/eval/diskcache.py": (
            "result_to_payload",
            "_config_to_dict",
            "_core_to_dict",
            "_link_to_dict",
        ),
        "src/repro/eval/executor.py": ("_worker", "report_to_summary"),
    }

    def __init__(
        self,
        targets: Optional[Mapping[str, Iterable[str]]] = None,
        allowed_calls: Optional[Mapping[str, str]] = None,
    ) -> None:
        source = self.DEFAULT_TARGETS if targets is None else targets
        self.targets = {path: tuple(names) for path, names in source.items()}
        self.allowed_calls = dict(allowed_calls or {})

    def check(self, project: Project) -> List[Violation]:
        violations: List[Violation] = []
        for rel, names in sorted(self.targets.items()):
            tree = project.tree(rel)
            functions = {
                node.name: node
                for node in tree.body
                if isinstance(node, ast.FunctionDef)
            }
            for name in names:
                func = functions.get(name)
                if func is None:
                    violations.append(
                        self.violation(
                            rel,
                            0,
                            f"payload builder {name!r} not found — R4 no longer "
                            "guards the executor boundary",
                            "update ExecutorBoundaryRule.DEFAULT_TARGETS to the "
                            "current payload-builder names",
                        )
                    )
                    continue
                violations.extend(self._check_builder(rel, func))
        return violations

    def _check_builder(self, rel: str, func: ast.FunctionDef) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(func):
            if isinstance(node, (ast.Set, ast.SetComp)):
                violations.append(
                    self.violation(
                        rel,
                        node.lineno,
                        f"set constructed inside payload builder {func.name!r} "
                        "(JSON cannot represent sets)",
                        R4_HINT,
                    )
                )
            elif isinstance(node, ast.Lambda):
                violations.append(
                    self.violation(
                        rel,
                        node.lineno,
                        f"lambda inside payload builder {func.name!r} "
                        "(functions cannot cross the worker boundary)",
                        R4_HINT,
                    )
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                root, _, attr = dotted.partition(".")
                if root in ("np", "numpy") and attr in NUMPY_SCALAR_CTORS:
                    violations.append(
                        self.violation(
                            rel,
                            node.lineno,
                            f"numpy scalar {dotted}() constructed inside payload "
                            f"builder {func.name!r} is not JSON-representable",
                            R4_HINT + "; coerce numpy scalars to plain int/float "
                            "at the boundary (diskcache._plain_number)",
                        )
                    )
                elif root in ("nb", "numba") and attr in NUMBA_SCALAR_CTORS:
                    violations.append(
                        self.violation(
                            rel,
                            node.lineno,
                            f"numba scalar {dotted}() constructed inside payload "
                            f"builder {func.name!r} boxes a non-JSON scalar",
                            R4_HINT + "; coerce numba/numpy scalars to plain "
                            "int/float at the boundary (diskcache._plain_number)",
                        )
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                called = node.func.id
                if called in self.allowed_calls:
                    continue
                if called in NON_JSON_BUILTINS:
                    violations.append(
                        self.violation(
                            rel,
                            node.lineno,
                            f"{called}() constructed inside payload builder "
                            f"{func.name!r} is not JSON-representable",
                            R4_HINT,
                        )
                    )
                elif called[:1].isupper():
                    violations.append(
                        self.violation(
                            rel,
                            node.lineno,
                            f"class instance {called}() constructed inside payload "
                            f"builder {func.name!r}; payloads must stay plain data",
                            R4_HINT + "; or allowlist the call if it provably "
                            "returns plain data",
                        )
                    )
        return violations


# --------------------------------------------------------------------- #
# R5 — catalog sync
# --------------------------------------------------------------------- #

R5_CATALOG_INIT = "src/repro/eval/catalog/__init__.py"
R5_CATALOG_DIR = "src/repro/eval/catalog"

#: every Experiment declaration must pass these keywords explicitly.
R5_REQUIRED_KWARGS = (
    "name",
    "title",
    "paper",
    "tags",
    "grid",
    "panels",
    "expectations",
)

R5_HINT = (
    "declare every Experiment with explicit name/title/paper/tags/grid/"
    "panels/expectations keywords and list it exactly once in the module's "
    "EXPERIMENTS tuple"
)

#: the prefetcher registry and the package it must stay in sync with.
R5_REGISTRY_MODULE = "src/repro/prefetch/registry.py"
R5_PREFETCH_DIR = "src/repro/prefetch"

#: root of the prefetcher class hierarchy (defined in base.py, which is
#: exempt from the must-be-imported check — the registry imports it for
#: ``NullPrefetcher`` anyway).
R5_PREFETCH_BASE = "src/repro/prefetch/base.py"

#: the trace-source registry and the profile tables it must mirror.
R5_SOURCE_MODULE = "src/repro/trace/source.py"
R5_WORKLOADS_MODULE = "src/repro/trace/synth/workloads.py"

#: every synth-profile dict in the workloads module; each key must be a
#: registered source.
R5_PROFILE_DICTS = ("WORKLOADS", "SCENARIO_WORKLOADS")

#: sources composed from other profiles (no profile entry of their own).
R5_COMPOSITE_SOURCES = frozenset({"mix"})


class CatalogSyncRule(Rule):
    """R5: every catalog ``Experiment`` declaration is complete and registered.

    The declarative catalog replaced the old dual ``EXPERIMENTS``/
    ``EXPERIMENT_SPECS`` registry dicts, so the old drift mode (a driver
    missing its specs declarer) is gone by construction.  The remaining
    drift modes are: a catalog module not listed in ``CATALOG_MODULES``
    (its experiments silently vanish from the catalog), a declared
    ``Experiment`` missing from its module's ``EXPERIMENTS`` tuple (same
    silent vanishing), a declaration registered twice, a duplicate
    experiment name across modules, a declaration missing one of the
    required keywords, or a literal-empty ``panels``/``expectations``
    tuple.  Underscore-prefixed modules are plumbing and carry no
    declarations.  Sharing one grid object between several experiments
    (Figures 5/6/7) is explicitly fine — the rule checks the keyword is
    present, not that the value is private.

    A companion sub-check keeps the *prefetcher* registry in sync the
    same way: every ``src/repro/prefetch`` module defining a concrete
    :class:`Prefetcher` subclass must be imported by ``registry.py``,
    every class the registry imports from the package must be used by
    some ``_FACTORIES`` entry, and the ``_FACTORIES``/``_DISPLAY`` key
    sets must match — so a newly added prefetcher family cannot silently
    stay invisible to experiments.

    A second companion sub-check does the same for the *trace-source*
    registry: every workload profile declared in
    ``trace/synth/workloads.py`` (``WORKLOADS`` and
    ``SCENARIO_WORKLOADS``) must be registered in ``trace/source.py``'s
    ``_SOURCES`` dict, every registered source (bar the composite
    ``mix``) must have a backing profile, and the ``DISPLAY_NAMES`` key
    set must match the registered sources — so a newly added workload
    family cannot silently stay un-runnable or unlabeled.
    """

    name = "R5"
    title = "catalog sync: Experiment declarations complete and registered once"

    DEFAULT_ALLOWLIST: Mapping[str, str] = {}

    def __init__(self, allowlist: Optional[Mapping[str, str]] = None) -> None:
        self.allowlist = dict(self.DEFAULT_ALLOWLIST if allowlist is None else allowlist)

    def check(self, project: Project) -> List[Violation]:
        listed = _catalog_modules(project.tree(R5_CATALOG_INIT))
        violations: List[Violation] = []
        for rel in project.iter_python(R5_CATALOG_DIR):
            stem = rel.rsplit("/", 1)[-1][:-3]
            if stem == "__init__" or stem.startswith("_"):
                continue
            if stem not in listed:
                violations.append(
                    self.violation(
                        R5_CATALOG_INIT,
                        0,
                        f"catalog module {stem!r} ({rel}) is not listed in "
                        "CATALOG_MODULES — its experiments are invisible to the catalog",
                        "add the module to CATALOG_MODULES (underscore-prefix it "
                        "if it is plumbing, not declarations)",
                    )
                )
        seen_names: Dict[str, str] = {}
        for module_name, line in listed.items():
            rel = f"{R5_CATALOG_DIR}/{module_name}.py"
            if not project.exists(rel):
                violations.append(
                    self.violation(
                        R5_CATALOG_INIT,
                        line,
                        f"CATALOG_MODULES lists {module_name!r} but {rel} does not exist",
                        "remove the stale entry or add the module",
                    )
                )
                continue
            violations.extend(self._check_module(project, rel, seen_names))
        violations.extend(self._check_prefetcher_registry(project))
        violations.extend(self._check_trace_source_registry(project))
        return violations

    # -- prefetcher-registry sync ------------------------------------- #

    def _check_prefetcher_registry(self, project: Project) -> List[Violation]:
        if not project.exists(R5_REGISTRY_MODULE):
            return []  # synthetic fixture trees carry no prefetch package
        tree = project.tree(R5_REGISTRY_MODULE)
        imported_modules: Dict[str, int] = {}
        imported_classes: Dict[str, int] = {}
        for node in tree.body:
            if (
                isinstance(node, ast.ImportFrom)
                and node.module
                and node.module.startswith("repro.prefetch.")
            ):
                imported_modules[node.module.rsplit(".", 1)[-1]] = node.lineno
                for alias in node.names:
                    imported_classes[alias.name] = node.lineno

        violations: List[Violation] = []
        factories = _registry_dict(tree, "_FACTORIES")
        display = _registry_dict(tree, "_DISPLAY")
        for key, line in sorted(factories.items()):
            if key not in display:
                violations.append(
                    self.violation(
                        R5_REGISTRY_MODULE,
                        line,
                        f"prefetcher {key!r} has a factory but no _DISPLAY "
                        "label",
                        "add the display-name entry",
                    )
                )
        for key, line in sorted(display.items()):
            if key not in factories:
                violations.append(
                    self.violation(
                        R5_REGISTRY_MODULE,
                        line,
                        f"_DISPLAY labels unknown prefetcher {key!r}",
                        "remove the stale entry or add the factory",
                    )
                )

        referenced = _registry_value_names(tree, "_FACTORIES")
        concrete = _prefetcher_classes(project)
        for cls, line in sorted(imported_classes.items()):
            if cls in concrete and cls not in referenced:
                violations.append(
                    self.violation(
                        R5_REGISTRY_MODULE,
                        line,
                        f"registry imports {cls!r} but no _FACTORIES entry "
                        "uses it — the scheme is invisible to experiments",
                        "add a factory (and display name) or drop the import",
                    )
                )

        for rel, stem, line in _prefetcher_modules(project):
            if stem not in imported_modules:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"module defines a concrete Prefetcher subclass but "
                        f"{R5_REGISTRY_MODULE} never imports it — the family "
                        "cannot be named by any RunSpec",
                        "import the class in the registry and register a "
                        "factory + display name for it",
                    )
                )
        return violations

    # -- trace-source-registry sync ----------------------------------- #

    def _check_trace_source_registry(self, project: Project) -> List[Violation]:
        if not (
            project.exists(R5_SOURCE_MODULE) and project.exists(R5_WORKLOADS_MODULE)
        ):
            return []  # synthetic fixture trees carry no trace package
        source_tree = project.tree(R5_SOURCE_MODULE)
        workloads_tree = project.tree(R5_WORKLOADS_MODULE)
        sources = _module_dict(source_tree, R5_SOURCE_MODULE, "_SOURCES")
        display = _module_dict(workloads_tree, R5_WORKLOADS_MODULE, "DISPLAY_NAMES")
        profiles: Dict[str, int] = {}
        for dict_name in R5_PROFILE_DICTS:
            profiles.update(
                _module_dict(workloads_tree, R5_WORKLOADS_MODULE, dict_name)
            )

        violations: List[Violation] = []
        for key, line in sorted(profiles.items()):
            if key not in sources:
                violations.append(
                    self.violation(
                        R5_WORKLOADS_MODULE,
                        line,
                        f"workload profile {key!r} is declared but "
                        f"{R5_SOURCE_MODULE} never registers it in _SOURCES — "
                        "no RunSpec can name it",
                        "register a SynthSource for the profile (or delete it)",
                    )
                )
        for key, line in sorted(sources.items()):
            if key not in profiles and key not in R5_COMPOSITE_SOURCES:
                violations.append(
                    self.violation(
                        R5_SOURCE_MODULE,
                        line,
                        f"_SOURCES registers {key!r} but no workload profile "
                        "defines it",
                        "add the profile to WORKLOADS/SCENARIO_WORKLOADS or "
                        "remove the stale registration",
                    )
                )
            if key not in display:
                violations.append(
                    self.violation(
                        R5_SOURCE_MODULE,
                        line,
                        f"registered source {key!r} has no DISPLAY_NAMES label",
                        "add the display-name entry in "
                        f"{R5_WORKLOADS_MODULE}",
                    )
                )
        for key, line in sorted(display.items()):
            if key not in sources:
                violations.append(
                    self.violation(
                        R5_WORKLOADS_MODULE,
                        line,
                        f"DISPLAY_NAMES labels unknown trace source {key!r}",
                        "remove the stale entry or register the source",
                    )
                )
        return violations

    def _check_module(
        self, project: Project, rel: str, seen_names: Dict[str, str]
    ) -> List[Violation]:
        tree = project.tree(rel)
        declared: Dict[str, Tuple[int, ast.Call]] = {}
        for node in tree.body:
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            callee = dotted_name(node.value.func)
            if callee is not None and callee.split(".")[-1] == "Experiment":
                declared[node.targets[0].id] = (node.lineno, node.value)

        registered = _experiments_tuple(tree, rel)
        counts: Dict[str, int] = {}
        for entry_name, _ in registered:
            counts[entry_name] = counts.get(entry_name, 0) + 1

        violations: List[Violation] = []
        for var, (line, call) in sorted(declared.items()):
            experiment_name = _literal_str_kwarg(call, "name")
            if experiment_name is not None and experiment_name in self.allowlist:
                continue
            registrations = counts.get(var, 0)
            if registrations == 0:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r} is declared but missing from the "
                        "module's EXPERIMENTS tuple — it is invisible to the catalog",
                        R5_HINT + " (or allowlist the experiment name with a reason)",
                    )
                )
            elif registrations > 1:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r} is registered {registrations} times "
                        "in EXPERIMENTS",
                        "list each declaration exactly once",
                    )
                )
            violations.extend(self._check_call(rel, var, line, call, seen_names))
        for entry_name, line in registered:
            if entry_name not in declared:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"EXPERIMENTS lists {entry_name!r} but the module declares "
                        "no top-level Experiment by that name",
                        "remove the stale entry or declare the experiment",
                    )
                )
        return violations

    def _check_call(
        self,
        rel: str,
        var: str,
        line: int,
        call: ast.Call,
        seen_names: Dict[str, str],
    ) -> List[Violation]:
        violations: List[Violation] = []
        kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        for required in R5_REQUIRED_KWARGS:
            if required not in kwargs:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r} is missing the {required!r} keyword",
                        R5_HINT,
                    )
                )
        name_node = kwargs.get("name")
        if name_node is not None:
            if not (isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)):
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r}: name must be a string literal "
                        "for static checking",
                        "use a literal experiment name",
                    )
                )
            else:
                experiment_name = name_node.value
                previous = seen_names.get(experiment_name)
                if previous is not None:
                    violations.append(
                        self.violation(
                            rel,
                            line,
                            f"experiment name {experiment_name!r} is already "
                            f"declared at {previous}",
                            "experiment names must be unique across the catalog",
                        )
                    )
                else:
                    seen_names[experiment_name] = f"{rel}:{line}"
        for field in ("panels", "expectations"):
            node = kwargs.get(field)
            if isinstance(node, (ast.Tuple, ast.List)) and not node.elts:
                violations.append(
                    self.violation(
                        rel,
                        line,
                        f"Experiment {var!r}: literal {field} tuple is empty",
                        f"declare at least one {field[:-1]} (an experiment without "
                        f"{field} asserts nothing)",
                    )
                )
        return violations


def _module_assignment(tree: ast.Module, rel: str, name: str) -> ast.expr:
    """The literal assigned to module-level *name* in *rel*."""
    for node in tree.body:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == name for t in node.targets):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                value = node.value
        if value is not None:
            return value
    raise LintError(f"{rel}: no module-level {name} assignment found")


def _module_dict(tree: ast.Module, rel: str, name: str) -> Dict[str, int]:
    """String keys -> line of *rel*'s module-level *name* dict literal."""
    value = _module_assignment(tree, rel, name)
    if not isinstance(value, ast.Dict):
        raise LintError(
            f"{rel}: {name} must be a dict literal for static checking"
        )
    keys: Dict[str, int] = {}
    for key in value.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            raise LintError(f"{rel}: {name} keys must be string literals")
        keys[key.value] = key.lineno
    return keys


def _registry_assignment(tree: ast.Module, name: str) -> ast.expr:
    """The literal assigned to module-level *name* in the registry."""
    return _module_assignment(tree, R5_REGISTRY_MODULE, name)


def _registry_dict(tree: ast.Module, name: str) -> Dict[str, int]:
    """String keys -> line of the registry's *name* dict literal."""
    return _module_dict(tree, R5_REGISTRY_MODULE, name)


def _registry_value_names(tree: ast.Module, name: str) -> Set[str]:
    """Every plain name referenced inside *name*'s value expressions."""
    value = _registry_assignment(tree, name)
    if not isinstance(value, ast.Dict):
        return set()
    names: Set[str] = set()
    for entry in value.values:
        names.update(
            node.id for node in ast.walk(entry) if isinstance(node, ast.Name)
        )
    return names


def _prefetcher_classes(project: Project) -> Dict[str, Tuple[str, int]]:
    """Concrete :class:`Prefetcher` subclass -> (module rel, lineno),
    found transitively by static base names across the prefetch package.
    """
    class_bases: Dict[str, Tuple[str, List[str], int]] = {}
    for rel in sorted(project.iter_python(R5_PREFETCH_DIR)):
        if rel == R5_REGISTRY_MODULE:
            continue
        for node in project.tree(rel).body:
            if isinstance(node, ast.ClassDef):
                bases = [
                    base.id for base in node.bases if isinstance(base, ast.Name)
                ]
                class_bases[node.name] = (rel, bases, node.lineno)

    derived = {"Prefetcher"}
    changed = True
    while changed:
        changed = False
        for cls, (_, bases, _) in class_bases.items():
            if cls not in derived and any(base in derived for base in bases):
                derived.add(cls)
                changed = True

    return {
        cls: (class_bases[cls][0], class_bases[cls][2])
        for cls in sorted(derived - {"Prefetcher"})
    }


def _prefetcher_modules(project: Project) -> List[Tuple[str, str, int]]:
    """(rel, stem, lineno) of prefetch modules defining concrete
    :class:`Prefetcher` subclasses (transitively, by static base names).

    ``base.py`` (the hierarchy root) and the registry itself are skipped.
    """
    out: Dict[str, Tuple[str, str, int]] = {}
    for cls, (rel, line) in _prefetcher_classes(project).items():
        if rel == R5_PREFETCH_BASE:
            continue
        entry = out.get(rel)
        if entry is None or line < entry[2]:
            stem = rel.rsplit("/", 1)[-1][:-3]
            out[rel] = (rel, stem, line)
    return sorted(out.values())


def _literal_str_kwarg(call: ast.Call, name: str) -> Optional[str]:
    for keyword in call.keywords:
        if keyword.arg == name:
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                return keyword.value.value
            return None
    return None


def _catalog_modules(tree: ast.Module) -> Dict[str, int]:
    """``CATALOG_MODULES`` entries -> line number (literal tuple required)."""
    for node in tree.body:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "CATALOG_MODULES"
                for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "CATALOG_MODULES":
                value = node.value
        if value is None:
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            raise LintError(
                f"{R5_CATALOG_INIT}: CATALOG_MODULES must be a tuple literal "
                "for static checking"
            )
        entries: Dict[str, int] = {}
        for element in value.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                raise LintError(
                    f"{R5_CATALOG_INIT}: CATALOG_MODULES entries must be "
                    "string literals"
                )
            entries[element.value] = element.lineno
        return entries
    raise LintError(f"{R5_CATALOG_INIT}: no module-level CATALOG_MODULES tuple found")


def _experiments_tuple(tree: ast.Module, rel: str) -> List[Tuple[str, int]]:
    """``EXPERIMENTS`` entries -> (referenced name, line); literal required."""
    for node in tree.body:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "EXPERIMENTS" for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "EXPERIMENTS":
                value = node.value
        if value is None:
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            raise LintError(
                f"{rel}: EXPERIMENTS must be a tuple literal for static checking"
            )
        entries: List[Tuple[str, int]] = []
        for element in value.elts:
            if not isinstance(element, ast.Name):
                raise LintError(
                    f"{rel}: EXPERIMENTS entries must be plain names of "
                    "module-level Experiment declarations"
                )
            entries.append((element.id, element.lineno))
        return entries
    raise LintError(f"{rel}: no module-level EXPERIMENTS tuple found")


# --------------------------------------------------------------------- #
# R6 — backend drift
# --------------------------------------------------------------------- #

R6_HINT_TEMPLATE = (
    "port the change into {counterpart_site} (then run the backend parity "
    "suite: PYTHONPATH=src python -m pytest tests/unit/test_backend_parity.py)"
    ", or — if the edit provably cannot change behavior — ack it with "
    "`python -m repro.lint --update-manifest`"
)

#: directory whose prefetcher modules must all be fingerprinted.
R6_PREFETCH_DIR = "src/repro/prefetch"

#: prefetch modules exempt from the completeness sub-check: the abstract
#: interface (its default hook is a no-op, not a hot path).
R6_UNPAIRED_OK = frozenset({"src/repro/prefetch/base.py"})


class BackendDriftRule(Rule):
    """R6: fingerprinted reference hot paths stay in sync with their twins.

    The paired-implementation manifest (:data:`repro.lint.manifest.PAIRS`)
    links each hot-path function in the reference engine / prefetchers to
    its counterparts in ``src/repro/core/vectorized.py`` and/or
    ``src/repro/core/jitted.py`` (where the counterpart is the C kernel
    string returned by ``kernel_source``).  Fingerprints are structural
    (comment-, formatting- and docstring-insensitive), so only behavioural
    edits move them.  The dangerous state — a reference-side fingerprint
    drifted while a counterpart's stands still — fails lint with both
    sites named; any other drift just asks for a manifest refresh,
    mirroring the R2 workflow.

    Reference-only pairs (no counterpart qualnames) cover hot paths all
    backends share by inheritance — drift there can only ever be a stale
    fingerprint, never silent divergence.  A completeness sub-check walks
    ``src/repro/prefetch``: any module defining an ``on_demand_fetch``
    hook that no pair fingerprints fails lint, so a newly added prefetcher
    family cannot bypass drift tracking.  The rule deactivates on trees
    without the vectorized backend (the lint suite's synthetic fixtures).
    """

    name = "R6"
    title = "backend drift: reference hot-path edits need the backend twins"

    def __init__(self, pairs: Optional[Sequence["manifest_mod.Pair"]] = None) -> None:
        self.pairs = tuple(manifest_mod.PAIRS if pairs is None else pairs)

    def check(self, project: Project) -> List[Violation]:
        if not manifest_mod.pairs_active(project):
            return []
        recorded = manifest_mod.load_manifest(project)
        if recorded is None:
            return [
                self.violation(
                    manifest_mod.MANIFEST_PATH,
                    0,
                    "behavior manifest is missing, so pair fingerprints "
                    "cannot be checked",
                    "run `python -m repro.lint --update-manifest` and commit "
                    "the result",
                )
            ]
        recorded_pairs = recorded.get(manifest_mod.PAIRS_KEY)
        if not isinstance(recorded_pairs, dict):
            return [
                self.violation(
                    manifest_mod.MANIFEST_PATH,
                    0,
                    "manifest has no pair-fingerprint section — backend drift "
                    "is unguarded",
                    "run `python -m repro.lint --update-manifest` and commit "
                    "the result",
                )
            ]

        violations: List[Violation] = []
        stale: Dict[Tuple[str, str], int] = {}  # (module, qualname) -> line
        for pair in self.pairs:
            pid = manifest_mod.pair_id(pair)
            ref_entry = (
                project.facts(pair.ref_module)["functions"].get(pair.ref_qualname)
                if project.exists(pair.ref_module)
                else None
            )
            if ref_entry is None:
                violations.append(
                    self.violation(
                        pair.ref_module,
                        0,
                        f"fingerprinted reference function {pair.ref_qualname!r} "
                        "is missing",
                        "restore the function or update manifest.PAIRS to the "
                        "current hot-path names",
                    )
                )
                continue
            # (label, record key, module, qualname) per declared counterpart.
            counterparts = []
            if pair.vec_qualname is not None:
                counterparts.append(
                    (
                        "vectorized",
                        "vec",
                        manifest_mod.VECTORIZED_MODULE,
                        pair.vec_qualname,
                    )
                )
            if pair.jit_qualname is not None:
                counterparts.append(
                    ("jit", "jit", manifest_mod.JITTED_MODULE, pair.jit_qualname)
                )
            entries = {}
            missing = False
            for label, key, module, qualname in counterparts:
                entry = (
                    project.facts(module)["functions"].get(qualname)
                    if project.exists(module)
                    else None
                )
                if entry is None:
                    violations.append(
                        self.violation(
                            module,
                            0,
                            f"{label} counterpart {qualname!r} of "
                            f"{pair.ref_module}::{pair.ref_qualname} is missing",
                            "restore the function or update manifest.PAIRS",
                        )
                    )
                    missing = True
                    continue
                entries[key] = entry
            if missing:
                continue
            record = recorded_pairs.get(pid)
            if not isinstance(record, dict):
                violations.append(
                    self.violation(
                        pair.ref_module,
                        ref_entry["lineno"],
                        f"pair {pid} has no recorded fingerprints",
                        "run `python -m repro.lint --update-manifest` and "
                        "commit the result",
                    )
                )
                continue
            ref_changed = record.get("ref") != ref_entry["fingerprint"]
            if not counterparts:
                # Reference-only: every backend shares this code, so a
                # drifted fingerprint is at worst stale — never divergent.
                if ref_changed:
                    stale.setdefault(
                        (pair.ref_module, pair.ref_qualname), ref_entry["lineno"]
                    )
                continue
            any_counterpart_stale = False
            for label, key, module, qualname in counterparts:
                entry = entries[key]
                counterpart_changed = record.get(key) != entry["fingerprint"]
                if ref_changed and not counterpart_changed:
                    counterpart_site = f"{module}::{qualname}"
                    violations.append(
                        self.violation(
                            pair.ref_module,
                            ref_entry["lineno"],
                            f"reference hot path {pair.ref_qualname!r} changed "
                            f"but its {label} counterpart {qualname!r} did "
                            "not — the backends may no longer be bit-identical",
                            R6_HINT_TEMPLATE.format(
                                counterpart_site=counterpart_site
                            ),
                        )
                    )
                elif counterpart_changed:
                    # the counterpart moved (with or without the reference
                    # side): behaviourally fine, but the manifest must be
                    # refreshed so the *next* lone reference edit cannot
                    # hide behind stale fingerprints.
                    any_counterpart_stale = True
                    stale.setdefault((module, qualname), entry["lineno"])
            if ref_changed and any_counterpart_stale:
                stale.setdefault(
                    (pair.ref_module, pair.ref_qualname), ref_entry["lineno"]
                )
        for (module, qualname), line in sorted(stale.items()):
            violations.append(
                self.violation(
                    module,
                    line,
                    f"pair fingerprint of {qualname!r} is stale in the manifest",
                    "run `python -m repro.lint --update-manifest` and commit "
                    "the result (after the parity suite confirms the backends "
                    "still agree)",
                )
            )
        violations.extend(self._check_unpaired_prefetchers(project))
        return violations

    def _check_unpaired_prefetchers(self, project: Project) -> List[Violation]:
        """Every prefetcher module's demand hook must be fingerprinted."""
        paired_modules = {pair.ref_module for pair in self.pairs}
        violations: List[Violation] = []
        for rel in sorted(project.iter_python(R6_PREFETCH_DIR)):
            if rel in R6_UNPAIRED_OK or rel in paired_modules:
                continue
            functions = project.facts(rel)["functions"]
            hooks = sorted(
                qualname
                for qualname in functions
                if qualname.endswith(".on_demand_fetch")
            )
            if not hooks:
                continue
            violations.append(
                self.violation(
                    rel,
                    functions[hooks[0]]["lineno"],
                    f"prefetcher module defines {hooks[0]!r} but no "
                    "manifest.PAIRS entry fingerprints it — hot-path edits "
                    "here are invisible to drift checking",
                    "add a Pair(module, qualname) entry (reference-only "
                    "pairs omit the vectorized counterpart) and run "
                    "`python -m repro.lint --update-manifest`",
                )
            )
        return violations


# --------------------------------------------------------------------- #
# R7 — env-config registry
# --------------------------------------------------------------------- #

R7_REGISTRY_MODULE = "src/repro/envvars.py"
R7_DOCS_PATH = "docs/performance.md"
R7_PREFIX = "REPRO_"

#: a *complete* REPRO_* variable name (the bare prefix, or prose that
#: merely starts with it, is not an env-var spelling).
_R7_NAME_RE = re.compile(r"^REPRO_[A-Z0-9][A-Z0-9_]*$")


def _is_env_name(value: object) -> bool:
    return isinstance(value, str) and _R7_NAME_RE.match(value) is not None
R7_TABLE_BEGIN = (
    "<!-- BEGIN REPRO ENV TABLE "
    "(generated: scripts/gen_env_docs.py; checked: repro.lint R7) -->"
)
R7_TABLE_END = "<!-- END REPRO ENV TABLE -->"

R7_HINT = (
    "declare the variable in src/repro/envvars.py (constant + REGISTRY "
    "entry) and read it through that constant: "
    "`from repro.envvars import <NAME>`"
)


def _registry_rows(
    project: Project, rel: str
) -> Tuple[List[Tuple[str, str, str]], List[Violation], Dict[str, int]]:
    """Statically extract ``REGISTRY`` rows from the registry module.

    Returns ``(rows, structural_violations, constants)`` where *rows* are
    ``(name, default, description)`` tuples and *constants* maps each
    declared ``REPRO_*`` constant to its line.  Never imports the module.
    """
    facts = project.facts(rel)
    violations: List[Violation] = []
    constants: Dict[str, int] = {}
    for name, entry in facts["module_constants"].items():
        if not _is_env_name(name):
            continue
        if entry["kind"] != "literal" or entry["value"] != name:
            violations.append(
                Violation(
                    rule="R7",
                    path=rel,
                    line=entry["lineno"],
                    message=(
                        f"registry constant {name!r} must be a string literal "
                        "equal to its own name"
                    ),
                    hint=f'declare it as {name} = "{name}"',
                )
            )
            continue
        constants[name] = entry["lineno"]

    rows: List[Tuple[str, str, str]] = []
    tree = project.tree(rel)
    registry_value: Optional[ast.expr] = None
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "REGISTRY" for t in node.targets
        ):
            registry_value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "REGISTRY"
        ):
            registry_value = node.value
    if not isinstance(registry_value, (ast.Tuple, ast.List)):
        violations.append(
            Violation(
                rule="R7",
                path=rel,
                line=0,
                message="registry module has no literal REGISTRY tuple",
                hint="declare REGISTRY: Tuple[EnvVar, ...] = (...) with one "
                "EnvVar entry per constant",
            )
        )
        return rows, violations, constants

    seen: Dict[str, int] = {}
    for element in registry_value.elts:
        if not (isinstance(element, ast.Call) and len(element.args) == 3):
            violations.append(
                Violation(
                    rule="R7",
                    path=rel,
                    line=element.lineno,
                    message="REGISTRY entries must be EnvVar(name, default, "
                    "description) calls with literal arguments",
                    hint=R7_HINT,
                )
            )
            continue
        name_node, default_node, desc_node = element.args
        if isinstance(name_node, ast.Name):
            var_name = name_node.id
        elif isinstance(name_node, ast.Constant) and isinstance(name_node.value, str):
            var_name = name_node.value
        else:
            violations.append(
                Violation(
                    rule="R7",
                    path=rel,
                    line=element.lineno,
                    message="EnvVar name must be a declared constant or string "
                    "literal",
                    hint=R7_HINT,
                )
            )
            continue
        if var_name not in constants:
            violations.append(
                Violation(
                    rule="R7",
                    path=rel,
                    line=element.lineno,
                    message=f"REGISTRY entry {var_name!r} has no matching "
                    "module constant",
                    hint=f'add {var_name} = "{var_name}" to the registry module',
                )
            )
        if var_name in seen:
            violations.append(
                Violation(
                    rule="R7",
                    path=rel,
                    line=element.lineno,
                    message=f"REGISTRY declares {var_name!r} twice (first at "
                    f"line {seen[var_name]})",
                    hint="keep one entry per variable",
                )
            )
            continue
        seen[var_name] = element.lineno
        if not (
            isinstance(default_node, ast.Constant)
            and isinstance(default_node.value, str)
            and isinstance(desc_node, ast.Constant)
            and isinstance(desc_node.value, str)
        ):
            violations.append(
                Violation(
                    rule="R7",
                    path=rel,
                    line=element.lineno,
                    message=f"REGISTRY entry {var_name!r}: default and "
                    "description must be string literals (the docs table is "
                    "rendered statically)",
                    hint=R7_HINT,
                )
            )
            continue
        rows.append((var_name, default_node.value, desc_node.value))

    for name, line in sorted(constants.items()):
        if name not in seen:
            violations.append(
                Violation(
                    rule="R7",
                    path=rel,
                    line=line,
                    message=f"registry constant {name!r} has no REGISTRY "
                    "metadata entry",
                    hint="add an EnvVar entry (name, default, description) so "
                    "the docs table stays complete",
                )
            )
    return rows, violations, constants


def _render_env_table(rows: Sequence[Tuple[str, str, str]]) -> str:
    """Must stay byte-identical to ``repro.envvars.render_env_table``."""
    lines = ["| Variable | Default | Meaning |", "| --- | --- | --- |"]
    for name, default, description in rows:
        lines.append(f"| `{name}` | {default} | {description} |")
    return "\n".join(lines)


class EnvRegistryRule(Rule):
    """R7: every ``REPRO_*`` env access routes through the declared registry.

    Checks, in order: the registry module itself is well-formed (constant
    name == value, constants ↔ REGISTRY metadata 1:1); no module outside
    the registry spells a ``REPRO_*`` name as a string (neither at an
    ``os.environ`` access nor in a module-level constant); every env-access
    key statically resolves to a *declared* registry constant (directly
    imported or via a module-level alias); and the marker-delimited env
    table in ``docs/performance.md`` equals the one rendered from the
    registry.  Literal-key accesses of declared variables carry an autofix
    (constant substitution plus the registry import).
    """

    name = "R7"
    title = "env registry: REPRO_* reads go through declared repro.envvars constants"

    DEFAULT_SCAN_DIRS = ("src/repro", "scripts")

    def __init__(
        self,
        scan_dirs: Optional[Sequence[str]] = None,
        allowlist: Optional[Mapping[str, str]] = None,
        registry_module: str = R7_REGISTRY_MODULE,
        docs_path: str = R7_DOCS_PATH,
    ) -> None:
        self.scan_dirs = tuple(
            scan_dirs if scan_dirs is not None else self.DEFAULT_SCAN_DIRS
        )
        self.allowlist = dict(allowlist or {})
        self.registry_module = registry_module
        self.docs_path = docs_path

    def check(self, project: Project) -> List[Violation]:
        has_registry = project.exists(self.registry_module)
        declared: Dict[str, int] = {}
        violations: List[Violation] = []
        rows: List[Tuple[str, str, str]] = []
        structural: List[Violation] = []
        if has_registry:
            rows, structural, declared = _registry_rows(project, self.registry_module)
            violations.extend(structural)

        saw_repro_access = False
        for rel in self._scan_files(project):
            if rel == self.registry_module or rel in self.allowlist:
                continue
            file_violations, saw = self._check_file(project, rel, declared)
            saw_repro_access = saw_repro_access or saw
            violations.extend(file_violations)

        if saw_repro_access and not has_registry:
            violations.append(
                self.violation(
                    "",
                    0,
                    f"REPRO_* environment variables are read but the registry "
                    f"module {self.registry_module} does not exist",
                    "create the registry module declaring every REPRO_* "
                    "variable (constant + EnvVar REGISTRY entry)",
                )
            )
        if has_registry and not structural:
            # a structurally broken registry would make the rendered table
            # meaningless; its own violations point at the real problem.
            violations.extend(self._check_docs(project, rows))
        return violations

    def _scan_files(self, project: Project) -> List[str]:
        files: List[str] = []
        for rel_dir in self.scan_dirs:
            files.extend(project.iter_python(rel_dir))
        return sorted(set(files))

    def _resolve_key_name(
        self, facts: Dict[str, Any], name: str
    ) -> Tuple[str, Optional[str]]:
        """Classify an env-key name: ``(kind, registry_constant_or_None)``.

        kinds: ``registry`` (resolves to repro.envvars.X), ``literal``
        (module constant spelled as a string), ``foreign`` (resolves
        somewhere else), ``unknown`` (not statically resolvable).
        """
        constant = facts["module_constants"].get(name)
        if constant is not None:
            if constant["kind"] == "literal":
                return "literal", constant["value"]
            # alias values are pre-resolved through the module's imports
            # by the dataflow pass.
            target = constant["value"]
            if target.startswith("repro.envvars."):
                return "registry", target.rsplit(".", 1)[1]
            if "." in target:
                return "foreign", target
            return "unknown", None
        resolved = facts["bindings"].get(name)
        if resolved is None:
            return "unknown", None
        if resolved.startswith("repro.envvars."):
            return "registry", resolved.rsplit(".", 1)[1]
        return "foreign", resolved

    def _check_file(
        self, project: Project, rel: str, declared: Dict[str, int]
    ) -> Tuple[List[Violation], bool]:
        facts = project.facts(rel)
        violations: List[Violation] = []
        saw_repro = False

        for name, entry in facts["module_constants"].items():
            if entry["kind"] == "literal" and _is_env_name(entry["value"]):
                saw_repro = True
                value = entry["value"]
                violations.append(
                    self.violation(
                        rel,
                        entry["lineno"],
                        f"module constant {name!r} spells environment variable "
                        f"{value!r} as a string instead of aliasing the "
                        "registry constant",
                        f"write `from repro.envvars import {value}` and "
                        f"`{name} = {value}` (R7 verifies the registry "
                        "declaration exists)"
                        if value in declared
                        else R7_HINT,
                    )
                )

        for access in facts["env_accesses"]:
            kind = access["key_kind"]
            if kind == "literal":
                key = access["key"]
                if not _is_env_name(key):
                    continue
                saw_repro = True
                fix = None
                if key in declared:
                    fix = Fix(
                        edits=(_span_edit(access["span"], key),),
                        imports=(f"from repro.envvars import {key}",),
                        description=f"use the registry constant {key}",
                    )
                violations.append(
                    Violation(
                        rule=self.name,
                        path=rel,
                        line=access["lineno"],
                        message=(
                            f"environment variable {key!r} accessed via a "
                            "string literal instead of its registry constant"
                            if key in declared
                            else f"environment variable {key!r} is not declared "
                            "in the repro.envvars registry"
                        ),
                        hint=R7_HINT,
                        fix=fix,
                    )
                )
            elif kind == "name":
                resolution, target = self._resolve_key_name(facts, access["key"])
                if resolution == "registry":
                    saw_repro = True
                    if target not in declared and declared:
                        violations.append(
                            self.violation(
                                rel,
                                access["lineno"],
                                f"env key {access['key']!r} resolves to "
                                f"repro.envvars.{target}, which the registry "
                                "does not declare",
                                f'add {target} = "{target}" plus an EnvVar '
                                "REGISTRY entry to src/repro/envvars.py",
                            )
                        )
                elif resolution == "literal":
                    # flagged above at the constant's definition site
                    saw_repro = saw_repro or _is_env_name(target)
                elif resolution == "foreign":
                    violations.append(
                        self.violation(
                            rel,
                            access["lineno"],
                            f"env key {access['key']!r} resolves to {target!r}, "
                            "not a repro.envvars registry constant",
                            R7_HINT,
                        )
                    )
                else:
                    violations.append(
                        self.violation(
                            rel,
                            access["lineno"],
                            f"env key {access['key']!r} cannot be statically "
                            "resolved to a registry constant",
                            R7_HINT,
                        )
                    )
            else:  # dynamic expression
                violations.append(
                    self.violation(
                        rel,
                        access["lineno"],
                        "environment key is a dynamic expression; R7 cannot "
                        "verify it against the registry",
                        R7_HINT,
                    )
                )
        return violations, saw_repro

    def _check_docs(
        self, project: Project, rows: Sequence[Tuple[str, str, str]]
    ) -> List[Violation]:
        if not project.exists(self.docs_path):
            return []  # synthetic fixture trees carry no docs
        text = project.source(self.docs_path)
        begin = text.find(R7_TABLE_BEGIN)
        end = text.find(R7_TABLE_END)
        regenerate = (
            "regenerate with `PYTHONPATH=src python scripts/gen_env_docs.py` "
            "and commit the result"
        )
        if begin == -1 or end == -1 or end < begin:
            return [
                self.violation(
                    self.docs_path,
                    0,
                    "environment table markers are missing, so the docs table "
                    "cannot be checked against the registry",
                    regenerate,
                )
            ]
        committed = text[begin + len(R7_TABLE_BEGIN) : end].strip("\n")
        expected = _render_env_table(rows)
        if committed != expected:
            line = text[:begin].count("\n") + 1
            return [
                self.violation(
                    self.docs_path,
                    line,
                    "environment table is out of sync with the repro.envvars "
                    "registry",
                    regenerate,
                )
            ]
        return []


# --------------------------------------------------------------------- #
# R8 — determinism taint
# --------------------------------------------------------------------- #

R8_HINT = (
    "RunSpec-keyed state must be a pure function of the spec: derive "
    "randomness via repro.util.rng.derive_seed/SplitMix64, drop wall-clock "
    "values from keyed paths, and sort unordered collections before they "
    "feed a spec, run_system call or derived seed"
)


class DeterminismTaintRule(Rule):
    """R8: forbidden-source values must not flow into RunSpec-keyed state.

    R1 answers "does this module touch a forbidden API at all?"; R8 answers
    the sharper question "does a value *originating* there reach state that
    keys results?".  The shared dataflow pass tracks, per function, values
    produced by forbidden calls (clock, entropy, ``random``) and by
    iteration over unordered sets, propagates them through assignments
    (``sorted()`` sanitizes), and reports any flow into a ``RunSpec``
    construction, ``run_system``/``run_system_cached`` call or
    ``derive_seed`` — the places a nondeterministic value would silently
    poison the persistent result cache.  Because it is finer-grained than
    R1, it scans *all* of ``src/repro`` and ``scripts`` with no allowlist:
    even the wall-clock shim's values must never reach keyed state.
    """

    name = "R8"
    title = "determinism taint: forbidden sources never reach RunSpec-keyed state"

    DEFAULT_SCAN_DIRS = ("src/repro", "scripts")
    DEFAULT_ALLOWLIST: Mapping[str, str] = {}

    def __init__(
        self,
        scan_dirs: Optional[Sequence[str]] = None,
        allowlist: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.scan_dirs = tuple(
            scan_dirs if scan_dirs is not None else self.DEFAULT_SCAN_DIRS
        )
        self.allowlist = dict(
            self.DEFAULT_ALLOWLIST if allowlist is None else allowlist
        )

    def check(self, project: Project) -> List[Violation]:
        violations: List[Violation] = []
        for rel_dir in self.scan_dirs:
            for rel in project.iter_python(rel_dir):
                if rel in self.allowlist:
                    continue
                for flow in project.facts(rel)["taint"]:
                    via = f" via {flow['via']!r}" if flow["via"] else ""
                    violations.append(
                        self.violation(
                            rel,
                            flow["lineno"],
                            f"value from {flow['source']} (line "
                            f"{flow['source_line']}) flows into "
                            f"{flow['sink']}(...){via} — RunSpec-keyed state "
                            "would become nondeterministic",
                            R8_HINT,
                        )
                    )
        return violations


def default_rules() -> List[Rule]:
    """The full rule set, in report order."""
    return [
        DeterminismRule(),
        BehaviorManifestRule(),
        RunSpecSyncRule(),
        ExecutorBoundaryRule(),
        CatalogSyncRule(),
        BackendDriftRule(),
        EnvRegistryRule(),
        DeterminismTaintRule(),
    ]
