"""SARIF 2.1.0 serialization of lint findings.

``python -m repro.lint --format sarif`` emits one SARIF run so GitHub
code scanning (and any other SARIF consumer) can annotate violations on
the PR diff.  The document is deliberately minimal but schema-valid:
tool metadata with the full rule inventory, one ``result`` per violation
with a physical location (omitted for project-level findings, whose
``path`` is empty), and the fix-it hint folded into the message text.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.lint.engine import Rule, Violation

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro.lint"
TOOL_URI = "docs/static_analysis.md"


def _result(violation: Violation, rule_index: Dict[str, int]) -> Dict[str, Any]:
    text = violation.message
    if violation.hint:
        text += f" — fix: {violation.hint}"
    result: Dict[str, Any] = {
        "ruleId": violation.rule,
        "level": "error",
        "message": {"text": text},
    }
    index = rule_index.get(violation.rule)
    if index is not None:
        result["ruleIndex"] = index
    if violation.path:
        physical: Dict[str, Any] = {
            "artifactLocation": {"uri": violation.path, "uriBaseId": "SRCROOT"}
        }
        if violation.line:
            physical["region"] = {"startLine": violation.line}
        result["locations"] = [{"physicalLocation": physical}]
    return result


def to_sarif(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> Dict[str, Any]:
    """One-run SARIF 2.1.0 document for *violations* found by *rules*."""
    rule_index = {rule.name: index for index, rule in enumerate(rules)}
    descriptors: List[Dict[str, Any]] = [
        {
            "id": rule.name,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title or rule.name},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": descriptors,
                    }
                },
                "results": [_result(entry, rule_index) for entry in violations],
            }
        ],
    }
