"""Rule engine of the ``repro.lint`` static-analysis subsystem.

The reproduction's headline numbers are only trustworthy because of a few
repository-wide contracts: the simulator is bit-deterministic, RunSpec
content hashes fully key the on-disk result cache, and executor worker
payloads are plain data.  None of those contracts can be expressed in a
generic linter, so this package checks them with project-specific AST
rules (:mod:`repro.lint.rules`) driven by the small engine defined here.

The engine is deliberately filesystem-only: rules parse source with
:mod:`ast` and never import the modules they inspect, so ``repro.lint``
can run on a broken tree, in CI before the test matrix, and on synthetic
fixture trees in its own unit tests.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple


class LintError(RuntimeError):
    """A rule could not run at all (missing file, unparseable module).

    Distinct from a :class:`Violation`: a violation is a finding in a tree
    the engine understood; a ``LintError`` means the tree is too broken (or
    too unexpected) for the rule to give a verdict.  The CLI reports both
    as failures.
    """


@dataclass(frozen=True)
class TextEdit:
    """One span replacement in a file (0-based columns, 1-based lines)."""

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str


@dataclass(frozen=True)
class Fix:
    """A mechanical autofix: span edits plus imports the edits rely on.

    ``imports`` entries are whole import statements (``from repro.util
    import clock``); the applier inserts each one only when the file does
    not already contain it.
    """

    edits: Tuple[TextEdit, ...]
    imports: Tuple[str, ...] = ()
    description: str = ""


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, what is wrong, and how to fix it."""

    rule: str
    path: str  #: project-root-relative POSIX path ("" for project-level findings)
    line: int  #: 1-based line number, 0 for file- or project-level findings
    message: str
    hint: str = ""
    fix: Optional[Fix] = field(default=None, compare=False)

    def format(self) -> str:
        location = self.path or "<project>"
        if self.line:
            location += f":{self.line}"
        text = f"{location}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    fix: {self.hint}"
        return text


class Project:
    """Read-only view of one repository checkout, with cached parses.

    All paths handed to rules are project-root-relative POSIX strings, so
    violations and allowlists are stable regardless of where the checkout
    lives (the unit tests lint fixture trees under ``tmp_path``).
    """

    def __init__(self, root, facts_cache: Optional[Any] = None) -> None:
        self.root = Path(root).resolve()
        self._sources: Dict[str, str] = {}
        self._trees: Dict[str, ast.Module] = {}
        self._hashes: Dict[str, str] = {}
        self._facts: Dict[str, Dict[str, Any]] = {}
        #: optional repro.lint.cache.FactsCache; when attached, per-file
        #: analysis facts persist across runs keyed on content hash.
        self.facts_cache = facts_cache

    def path(self, rel: str) -> Path:
        return self.root / rel

    def exists(self, rel: str) -> bool:
        return self.path(rel).is_file()

    def source(self, rel: str) -> str:
        """Return the file's text (newline-normalized, cached)."""
        cached = self._sources.get(rel)
        if cached is None:
            try:
                raw = self.path(rel).read_text(encoding="utf-8")
            except OSError as error:
                raise LintError(f"cannot read {rel}: {error}") from None
            cached = raw.replace("\r\n", "\n")
            self._sources[rel] = cached
        return cached

    def tree(self, rel: str) -> ast.Module:
        """Return the file's parsed AST (cached)."""
        cached = self._trees.get(rel)
        if cached is None:
            try:
                cached = ast.parse(self.source(rel), filename=rel)
            except SyntaxError as error:
                raise LintError(f"cannot parse {rel}: {error}") from None
            self._trees[rel] = cached
        return cached

    def content_hash(self, rel: str) -> str:
        """SHA-256 of the file's newline-normalized source (cached)."""
        cached = self._hashes.get(rel)
        if cached is None:
            cached = hashlib.sha256(self.source(rel).encode("utf-8")).hexdigest()
            self._hashes[rel] = cached
        return cached

    def facts(self, rel: str) -> Dict[str, Any]:
        """Per-file analysis facts (:mod:`repro.lint.dataflow`), cached.

        Resolution order: this Project's in-memory map → the attached
        persistent facts cache (content-hash keyed) → a fresh analysis of
        the parsed tree (which is then offered back to the cache).
        """
        cached = self._facts.get(rel)
        if cached is not None:
            return cached
        from repro.lint.dataflow import analyze_module

        digest = self.content_hash(rel)
        facts: Optional[Dict[str, Any]] = None
        if self.facts_cache is not None:
            facts = self.facts_cache.get(rel, digest)
        if facts is None:
            facts = analyze_module(self.tree(rel))
            if self.facts_cache is not None:
                self.facts_cache.put(rel, digest, facts)
        self._facts[rel] = facts
        return facts

    def iter_python(self, rel_dir: str) -> List[str]:
        """Sorted relative paths of every ``*.py`` file under *rel_dir*."""
        base = self.path(rel_dir)
        if not base.is_dir():
            return []
        return sorted(
            found.relative_to(self.root).as_posix() for found in base.rglob("*.py")
        )


class Rule:
    """Base class for one named invariant check.

    Subclasses set :attr:`name` (the short ``R<n>`` id used in reports and
    ``--rules`` selection) and :attr:`title`, and implement :meth:`check`.
    Each rule owns its allowlist — exceptions are explicit, reviewed data,
    never silent scope carve-outs.
    """

    name = "R?"
    title = ""

    def check(self, project: Project) -> List[Violation]:
        raise NotImplementedError

    def violation(self, path: str, line: int, message: str, hint: str = "") -> Violation:
        return Violation(rule=self.name, path=path, line=line, message=message, hint=hint)


def run_rules(
    project: Project, rules: Sequence[Rule], names: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Run *rules* (optionally filtered to *names*) and merge their findings.

    Unknown names in *names* raise ``LintError`` so a typo in ``--rules``
    can never silently skip a check.
    """
    if names is not None:
        by_name = {rule.name: rule for rule in rules}
        unknown = [name for name in names if name not in by_name]
        if unknown:
            raise LintError(
                f"unknown rule(s) {unknown}; available: {sorted(by_name)}"
            )
        rules = [by_name[name] for name in names]
    violations: List[Violation] = []
    for rule in rules:
        violations.extend(rule.check(project))
    violations.sort(key=lambda entry: (entry.path, entry.line, entry.rule, entry.message))
    return violations


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``Name``/``Attribute`` chains to ``"a.b.c"`` (else None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
