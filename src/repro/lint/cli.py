"""``python -m repro.lint`` — check the tree, or refresh the manifest.

Exit codes: 0 clean, 1 violations (or a rule that could not run), 2 usage
errors.  CI runs the bare form as a gate in front of the test matrix.

Usage::

    python -m repro.lint                  # run every rule on the repo
    python -m repro.lint --rules R1,R3    # subset
    python -m repro.lint --list-rules
    python -m repro.lint --update-manifest
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint import manifest as manifest_mod
from repro.lint.engine import LintError, Project, run_rules
from repro.lint.rules import default_rules


def find_project_root(start: Optional[str] = None) -> Path:
    """Nearest ancestor of *start* (default: cwd) containing ``src/repro``."""
    current = Path(start or ".").resolve()
    for candidate in [current, *current.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise LintError(
        f"no project root (directory containing src/repro) at or above {current}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for the reproduction: determinism "
            "(R1), cache-safety (R2), RunSpec sync (R3), executor boundary "
            "(R4) and catalog sync (R5)."
        ),
    )
    parser.add_argument(
        "--root",
        default=None,
        help="project root (default: nearest ancestor of cwd with src/repro)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2,...",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list available rules and exit"
    )
    parser.add_argument(
        "--update-manifest",
        action="store_true",
        help="rewrite the behavior manifest from the current tree and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = default_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}  {rule.title}")
        return 0

    try:
        project = Project(find_project_root(args.root))
    except LintError as error:
        print(f"repro.lint: error: {error}", file=sys.stderr)
        return 2

    if args.update_manifest:
        try:
            written = manifest_mod.update_manifest(project)
        except LintError as error:
            print(f"repro.lint: error: {error}", file=sys.stderr)
            return 2
        detail = ", ".join(
            f"{artifact.noun}: {len(written[artifact.files_key])} modules @ "
            f"{artifact.version_key}={written[artifact.version_key]}"
            for artifact in manifest_mod.active_artifacts(project)
        )
        print(f"repro.lint: wrote {manifest_mod.MANIFEST_PATH} ({detail})")
        return 0

    names = None
    if args.rules:
        names = [name.strip() for name in args.rules.split(",") if name.strip()]
    try:
        violations = run_rules(project, rules, names=names)
    except LintError as error:
        print(f"repro.lint: error: {error}", file=sys.stderr)
        return 1

    for violation in violations:
        print(violation.format())
    ran = names if names is not None else [rule.name for rule in rules]
    if violations:
        print(f"repro.lint: {len(violations)} violation(s) [{','.join(ran)}]")
        return 1
    print(f"repro.lint: OK [{','.join(ran)}] (root: {project.root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
