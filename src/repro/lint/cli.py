"""``python -m repro.lint`` — check the tree, or refresh the manifest.

Exit codes: 0 clean, 1 violations (or a rule that could not run), 2 usage
errors.  CI runs the bare form as a gate in front of the test matrix.

Usage::

    python -m repro.lint                  # run every rule on the repo
    python -m repro.lint --rules R1,R3    # subset
    python -m repro.lint --list-rules
    python -m repro.lint --update-manifest
    python -m repro.lint --format sarif --output lint.sarif
    python -m repro.lint --fix            # apply mechanical autofixes
    python -m repro.lint src/repro/core/engine.py   # scope the report

Analysis facts are cached per file (content-hash keyed) under
``.repro-cache/lint-facts.json``, so warm runs on an unchanged tree are
sub-second; ``--no-cache`` forces full re-analysis.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint import manifest as manifest_mod
from repro.lint.cache import FactsCache
from repro.lint.engine import LintError, Project, run_rules
from repro.lint.fixes import apply_fixes
from repro.lint.rules import default_rules
from repro.lint.sarif import to_sarif


def find_project_root(start: Optional[str] = None) -> Path:
    """Nearest ancestor of *start* (default: cwd) containing ``src/repro``."""
    current = Path(start or ".").resolve()
    for candidate in [current, *current.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise LintError(
        f"no project root (directory containing src/repro) at or above {current}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for the reproduction: determinism "
            "(R1), cache-safety (R2), RunSpec sync (R3), executor boundary "
            "(R4), catalog sync (R5), backend drift (R6), env registry (R7) "
            "and determinism taint (R8)."
        ),
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="optional file paths: rules still run on the whole tree, but "
        "the report (and autofixes) are scoped to these files plus "
        "project-level findings — what pre-commit passes",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="project root (default: nearest ancestor of cwd with src/repro)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2,...",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list available rules and exit"
    )
    parser.add_argument(
        "--update-manifest",
        action="store_true",
        help="rewrite the behavior manifest (module hashes + pair "
        "fingerprints) from the current tree and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="report format (sarif: one SARIF 2.1.0 run for code scanning)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical autofixes (R1 clock/rng rewrites, R7 "
        "registry-constant rewrites), then re-check",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the per-file analysis cache",
    )
    return parser


def _relative_paths(project: Project, files: List[str]) -> List[str]:
    """Normalize CLI file arguments to project-root-relative POSIX paths."""
    out: List[str] = []
    for entry in files:
        path = Path(entry)
        if not path.is_absolute():
            path = Path.cwd() / path
        try:
            rel = path.resolve().relative_to(project.root).as_posix()
        except ValueError:
            raise LintError(f"{entry} is outside the project root {project.root}")
        out.append(rel)
    return out


def _emit(text: str, output: Optional[str]) -> None:
    if output is None:
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        Path(output).write_text(
            text if text.endswith("\n") else text + "\n", encoding="utf-8"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = default_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}  {rule.title}")
        return 0

    try:
        root = find_project_root(args.root)
    except LintError as error:
        print(f"repro.lint: error: {error}", file=sys.stderr)
        return 2
    facts_cache = None if args.no_cache else FactsCache.for_root(root)
    project = Project(root, facts_cache=facts_cache)

    if args.update_manifest:
        try:
            written = manifest_mod.update_manifest(project)
        except LintError as error:
            print(f"repro.lint: error: {error}", file=sys.stderr)
            return 2
        detail = ", ".join(
            f"{artifact.noun}: {len(written[artifact.files_key])} modules @ "
            f"{artifact.version_key}={written[artifact.version_key]}"
            for artifact in manifest_mod.active_artifacts(project)
        )
        if manifest_mod.PAIRS_KEY in written:
            detail += f", {len(written[manifest_mod.PAIRS_KEY])} backend pairs"
        if facts_cache is not None:
            facts_cache.save()
        print(f"repro.lint: wrote {manifest_mod.MANIFEST_PATH} ({detail})")
        return 0

    names = None
    if args.rules:
        names = [name.strip() for name in args.rules.split(",") if name.strip()]
    try:
        scope = _relative_paths(project, args.files)
        violations = run_rules(project, rules, names=names)
        if args.fix:
            fixed = apply_fixes(
                project,
                [v for v in violations if not scope or v.path in scope],
            )
            for rel, count in sorted(fixed.items()):
                print(f"repro.lint: fixed {count} violation(s) in {rel}")
            if fixed:
                violations = run_rules(project, rules, names=names)
    except LintError as error:
        print(f"repro.lint: error: {error}", file=sys.stderr)
        return 1
    finally:
        if facts_cache is not None:
            facts_cache.save()

    if scope:
        keep = set(scope)
        violations = [v for v in violations if not v.path or v.path in keep]

    ran = names if names is not None else [rule.name for rule in rules]
    if args.format == "sarif":
        active = [rule for rule in rules if rule.name in ran]
        document = to_sarif(violations, active)
        _emit(json.dumps(document, indent=2), args.output)
        return 1 if violations else 0

    report_lines: List[str] = [violation.format() for violation in violations]
    if violations:
        report_lines.append(
            f"repro.lint: {len(violations)} violation(s) [{','.join(ran)}]"
        )
        _emit("\n".join(report_lines), args.output)
        return 1
    report_lines.append(f"repro.lint: OK [{','.join(ran)}] (root: {project.root})")
    _emit("\n".join(report_lines), args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
