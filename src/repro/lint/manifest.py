"""Behavior manifest: content hashes of every result-affecting module.

The persistent artifacts — the on-disk result cache
(:mod:`repro.eval.diskcache`) and the compiled-trace store
(:mod:`repro.trace.store`) — are keyed by request content plus one schema
constant each (``SCHEMA_VERSION``, ``TRACE_SCHEMA_VERSION``).  A change to
the simulator's *code* changes results without changing any request key,
so the only thing standing between an engine edit and silently-stale
entries served from disk is remembering to bump the right constant.

This module makes that remembering mechanical.  A committed manifest
(``src/repro/lint/behavior_manifest.json``) records, per artifact, a
SHA-256 of each source file the artifact's contents depend on together
with the schema version the hashes were taken under.  Rule R2 recomputes
the hashes; if any differ while an artifact's constant still equals its
recorded version, the tree fails lint.  Bumping the constant acknowledges
the behavior change (and invalidates every entry of that artifact);
``python -m repro.lint --update-manifest`` then records the new hashes.

The trace-store artifact covers a subset of the result-cache modules (the
synthesis → lowering → packing chain), so a trace-affecting edit freezes
against **both** constants: bumping ``SCHEMA_VERSION`` alone still fails
lint until ``TRACE_SCHEMA_VERSION`` moves too.  The artifact activates
only when its schema module exists, so small synthetic lint trees (the
rule's own tests) are checked against the result cache alone.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.lint.engine import LintError, Project

#: committed manifest location (project-root relative).
MANIFEST_PATH = "src/repro/lint/behavior_manifest.json"

#: module defining the result-cache schema version.
SCHEMA_MODULE = "src/repro/eval/diskcache.py"
SCHEMA_CONSTANT = "SCHEMA_VERSION"

#: module defining the compiled-trace-store schema version.
TRACE_SCHEMA_MODULE = "src/repro/trace/compiled.py"
TRACE_SCHEMA_CONSTANT = "TRACE_SCHEMA_VERSION"

#: directories and files whose source determines simulation results.
BEHAVIOR_PATHS = (
    "src/repro/api.py",
    "src/repro/branch",
    "src/repro/caches",
    "src/repro/cmp",
    "src/repro/core",
    "src/repro/isa",
    "src/repro/prefetch",
    "src/repro/swpf",
    "src/repro/timing",
    "src/repro/trace",
    "src/repro/util",
    "src/repro/eval/diskcache.py",
    "src/repro/eval/executor.py",
    "src/repro/eval/profiles.py",
    "src/repro/eval/runner.py",
    "src/repro/eval/runspec.py",
)

#: the subset whose source determines *compiled-trace* content: synthesis
#: (api.py → trace.synth, seeded via util.rng), the transition taxonomy and
#: discontinuity rule (isa), and the lowering/packing itself (trace).
TRACE_PATHS = (
    "src/repro/api.py",
    "src/repro/isa",
    "src/repro/trace",
    "src/repro/util",
)

#: hashed-tree exclusions: modules under a BEHAVIOR_PATHS directory that
#: provably cannot affect results (the wall-clock shim only feeds progress
#: lines), so editing them should not demand a schema bump.
BEHAVIOR_EXCLUDE = frozenset({"src/repro/util/clock.py"})

#: the vectorized engine backend: every vec counterpart lives here.
VECTORIZED_MODULE = "src/repro/core/vectorized.py"

#: the jit engine backend: every jit counterpart lives here.
JITTED_MODULE = "src/repro/core/jitted.py"


class Pair(NamedTuple):
    """One fingerprinted reference hot path, optionally twinned.

    With a ``vec_qualname`` (and/or ``jit_qualname``), the pair is a
    must-stay-in-sync reference/fast-backend implementation pair.  The
    vectorized backend inlines most reference hot paths into one flat
    span interpreter, and the jit backend compiles them all into the one
    C kernel returned by ``kernel_source``, so several reference
    functions legitimately map to the same counterpart (many → one).
    Rule R6 fingerprints every side; a drifted reference fingerprint with
    an unchanged counterpart fingerprint is the "silent divergence"
    failure mode this exists to catch before the (slow) runtime parity
    suite does.

    With both counterparts ``None`` the pair is *reference-only*: every
    backend executes the same function (the fast backends fall back to
    reference stepping for prefetchers outside their compiled set), so
    silent divergence is impossible — the fingerprint exists so edits to
    the hot path still demand an explicit manifest refresh, and so every
    prefetcher family is visible to R6's completeness check.
    """

    ref_module: str
    ref_qualname: str
    vec_qualname: Optional[str] = None  #: qualname inside VECTORIZED_MODULE
    jit_qualname: Optional[str] = None  #: qualname inside JITTED_MODULE


_ENGINE = "src/repro/core/engine.py"
_QUEUE = "src/repro/prefetch/queue.py"
_DISC = "src/repro/prefetch/discontinuity.py"
_SEQ = "src/repro/prefetch/sequential.py"
_TGT = "src/repro/prefetch/target.py"
_MKV = "src/repro/prefetch/markov.py"
_FDP = "src/repro/prefetch/fdp.py"
_MANA = "src/repro/prefetch/mana.py"
_SHADOW = "src/repro/prefetch/shadow.py"
_SPAN = "VectorizedCoreEngine._fast_span"
_KSRC = "kernel_source"

#: the fingerprinted hot-path pairs.  ``_fast_span`` inlines the per-visit
#: reference pipeline (visit processing, queue drain + issue, fills,
#: installs, data-miss timing, and the DiscontinuityPrefetcher trigger
#: path), so it is the vectorized counterpart of nearly everything; the
#: jit backend compiles the same pipeline — plus the sequential prefetcher
#: family, which the vectorized backend runs through reference stepping —
#: into the one C kernel string returned by ``kernel_source``.  The
#: remaining prefetcher families run through the reference stepping path
#: on every backend, so their hot paths are fingerprinted reference-only.
PAIRS: Tuple[Pair, ...] = (
    Pair(_ENGINE, "CoreEngine._process_visit", _SPAN, _KSRC),
    Pair(_ENGINE, "CoreEngine._step_compiled", _SPAN, _KSRC),
    Pair(_ENGINE, "CoreEngine._issue_prefetches", _SPAN, _KSRC),
    Pair(_ENGINE, "CoreEngine._issue_one", _SPAN, _KSRC),
    Pair(_ENGINE, "CoreEngine._demand_fill", _SPAN, _KSRC),
    Pair(_ENGINE, "CoreEngine._install_l1i", _SPAN, _KSRC),
    Pair(_ENGINE, "CoreEngine._install_l2", _SPAN, _KSRC),
    Pair(_ENGINE, "CoreEngine._data_miss", _SPAN, _KSRC),
    Pair(_QUEUE, "PrefetchQueue.offer", _SPAN, _KSRC),
    Pair(_QUEUE, "PrefetchQueue.pop_ready", _SPAN, _KSRC),
    Pair(_QUEUE, "PrefetchQueue.note_demand_fetch", _SPAN, _KSRC),
    Pair(_DISC, "DiscontinuityTable.observe", _SPAN, _KSRC),
    Pair(_DISC, "DiscontinuityTable.predict", _SPAN, _KSRC),
    Pair(_DISC, "DiscontinuityTable.credit", _SPAN, _KSRC),
    Pair(_DISC, "DiscontinuityPrefetcher.on_demand_fetch", _SPAN, _KSRC),
    Pair(_SEQ, "NextLineAlways.on_demand_fetch", None, _KSRC),
    Pair(_SEQ, "NextLineOnMiss.on_demand_fetch", None, _KSRC),
    Pair(_SEQ, "NextLineTagged.on_demand_fetch", None, _KSRC),
    Pair(_SEQ, "NextNLineTagged.on_demand_fetch", None, _KSRC),
    Pair(_SEQ, "LookaheadN.on_demand_fetch", None, _KSRC),
    Pair(_TGT, "TargetPrefetcher.on_demand_fetch"),
    Pair(_MKV, "MarkovPrefetcher.on_demand_fetch"),
    Pair(_FDP, "FetchDirectedPrefetcher.on_demand_fetch"),
    Pair(_FDP, "FetchDirectedPrefetcher._run_ahead"),
    Pair(_MANA, "ManaPrefetcher.on_demand_fetch"),
    Pair(_SHADOW, "ShadowBranchPrefetcher._run_ahead"),
)

#: manifest JSON key holding the pair fingerprints.
PAIRS_KEY = "pairs"


def pair_id(pair: Pair) -> str:
    return f"{pair.ref_module}::{pair.ref_qualname}"


def _function_fingerprint(
    project: Project, rel: str, qualname: str
) -> Optional[str]:
    if not project.exists(rel):
        return None
    entry = project.facts(rel)["functions"].get(qualname)
    if entry is None:
        return None
    return entry["fingerprint"]


def pair_fingerprints(project: Project) -> Dict[str, Dict[str, Optional[str]]]:
    """Current fingerprints of every side of every pair.

    ``{pair_id: {"ref": fp-or-None, "vec": fp-or-None, "jit":
    fp-or-None}}`` — a ``None`` ref fingerprint means the function (or
    its module) is missing from the tree, which R6 reports as its own
    violation; a ``None`` counterpart fingerprint is the normal state of
    a pair without that counterpart (and a violation otherwise).
    """
    out: Dict[str, Dict[str, Optional[str]]] = {}
    for pair in PAIRS:
        out[pair_id(pair)] = {
            "ref": _function_fingerprint(project, pair.ref_module, pair.ref_qualname),
            "vec": (
                _function_fingerprint(project, VECTORIZED_MODULE, pair.vec_qualname)
                if pair.vec_qualname is not None
                else None
            ),
            "jit": (
                _function_fingerprint(project, JITTED_MODULE, pair.jit_qualname)
                if pair.jit_qualname is not None
                else None
            ),
        }
    return out


def pairs_active(project: Project) -> bool:
    """Pair checking applies only when the vectorized backend exists (the
    lint suite's small synthetic fixture trees have no backends)."""
    return project.exists(VECTORIZED_MODULE)


class Artifact(NamedTuple):
    """One schema-versioned persistent artifact guarded by rule R2."""

    #: human name used in violation messages ("disk-cache", "trace-store").
    noun: str
    #: module and constant holding the artifact's schema version.
    schema_module: str
    schema_constant: str
    #: BEHAVIOR_PATHS-style entries the artifact's contents depend on.
    paths: Tuple[str, ...]
    #: manifest JSON keys for the version and the hash map.
    version_key: str
    files_key: str


#: checked in order; the first entry is the always-required result cache,
#: later entries activate only when their schema module exists in the tree.
ARTIFACTS: Tuple[Artifact, ...] = (
    Artifact(
        noun="disk-cache",
        schema_module=SCHEMA_MODULE,
        schema_constant=SCHEMA_CONSTANT,
        paths=BEHAVIOR_PATHS,
        version_key="schema_version",
        files_key="files",
    ),
    Artifact(
        noun="trace-store",
        schema_module=TRACE_SCHEMA_MODULE,
        schema_constant=TRACE_SCHEMA_CONSTANT,
        paths=TRACE_PATHS,
        version_key="trace_schema_version",
        files_key="trace_files",
    ),
)


def active_artifacts(project: Project) -> List[Artifact]:
    """The artifacts present in *project* (the result cache is required)."""
    return [
        artifact
        for index, artifact in enumerate(ARTIFACTS)
        if index == 0 or project.exists(artifact.schema_module)
    ]


def artifact_files(project: Project, artifact: Artifact) -> List[str]:
    """Sorted relative paths of every module covered by one artifact.

    Entries that do not exist are skipped rather than raised on: a deleted
    behavior module then surfaces as a manifest/tree mismatch in rule R2
    (with a fix-it hint) instead of aborting the whole lint run.  This also
    lets the rule's own unit tests lint small synthetic trees.
    """
    files: List[str] = []
    for entry in artifact.paths:
        if entry.endswith(".py"):
            if project.exists(entry):
                files.append(entry)
        else:
            files.extend(project.iter_python(entry))
    return sorted(path for path in set(files) if path not in BEHAVIOR_EXCLUDE)


def artifact_hashes(project: Project, artifact: Artifact) -> Dict[str, str]:
    """SHA-256 of each covered module's newline-normalized source."""
    return {
        path: hashlib.sha256(project.source(path).encode("utf-8")).hexdigest()
        for path in artifact_files(project, artifact)
    }


def artifact_schema_version(project: Project, artifact: Artifact) -> int:
    """Statically read an artifact's schema constant from its module."""
    tree = project.tree(artifact.schema_module)
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == artifact.schema_constant:
                if isinstance(value, ast.Constant) and isinstance(value.value, int):
                    return value.value
                raise LintError(
                    f"{artifact.schema_module}: {artifact.schema_constant} must "
                    "be a literal int so cache invalidation stays statically "
                    "checkable"
                )
    raise LintError(
        f"{artifact.schema_module}: no {artifact.schema_constant} assignment found"
    )


def behavior_files(project: Project) -> List[str]:
    """Result-cache artifact coverage (the full behavior surface)."""
    return artifact_files(project, ARTIFACTS[0])


def compute_hashes(project: Project) -> Dict[str, str]:
    """Result-cache artifact hashes."""
    return artifact_hashes(project, ARTIFACTS[0])


def current_schema_version(project: Project) -> int:
    """Statically read ``SCHEMA_VERSION`` from the diskcache module."""
    return artifact_schema_version(project, ARTIFACTS[0])


def load_manifest(project: Project) -> Optional[Dict[str, Any]]:
    """Parsed committed manifest, or None when absent."""
    if not project.exists(MANIFEST_PATH):
        return None
    try:
        data = json.loads(project.source(MANIFEST_PATH))
    except ValueError as error:
        raise LintError(f"{MANIFEST_PATH}: invalid JSON: {error}") from None
    if not isinstance(data, dict) or "files" not in data:
        raise LintError(f"{MANIFEST_PATH}: expected an object with a 'files' map")
    return data


def update_manifest(project: Project) -> Dict[str, Any]:
    """Rewrite the manifest from the current tree; returns what was written."""
    manifest: Dict[str, Any] = {
        "_comment": (
            "Generated by `python -m repro.lint --update-manifest`. Per "
            "schema-versioned artifact (disk cache, trace store): hashes of "
            "every module its contents depend on, taken under the recorded "
            "schema version. Do not edit by hand."
        ),
    }
    for artifact in active_artifacts(project):
        manifest[artifact.version_key] = artifact_schema_version(project, artifact)
        manifest[artifact.files_key] = artifact_hashes(project, artifact)
    if pairs_active(project):
        manifest[PAIRS_KEY] = pair_fingerprints(project)
    text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    target = project.path(MANIFEST_PATH)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    # Drop stale cached copies so a subsequent check in the same process
    # sees the rewrite.
    project._sources.pop(MANIFEST_PATH, None)
    project._trees.pop(MANIFEST_PATH, None)
    project._hashes.pop(MANIFEST_PATH, None)
    project._facts.pop(MANIFEST_PATH, None)
    return manifest
