"""Application of mechanical autofixes (``python -m repro.lint --fix``).

Rules attach a :class:`~repro.lint.engine.Fix` to violations whose repair
is purely mechanical — R1 import/call rewrites to the sanctioned
``repro.util.clock`` / ``repro.util.rng`` shims, R7 literal-env-key
rewrites to registry constants.  This module applies them: span edits are
grouped per file and applied bottom-up (so earlier edits never shift
later spans), then any imports the replacements rely on are inserted
after the file's last top-level import.  Overlapping edits are skipped
rather than guessed at; ``--fix`` reruns the rules afterwards, so
anything skipped simply reports again.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Project, TextEdit, Violation


def _apply_edits(source: str, edits: Sequence[TextEdit]) -> Tuple[str, int]:
    """Apply non-overlapping *edits* to *source*; returns (text, applied)."""
    ordered = sorted(
        edits, key=lambda edit: (edit.start_line, edit.start_col), reverse=True
    )
    lines = source.split("\n")
    applied = 0
    last_start: Tuple[int, int] = (len(lines) + 2, 0)
    for edit in ordered:
        if (edit.end_line, edit.end_col) > last_start:
            continue  # overlaps an already-applied edit
        head = lines[edit.start_line - 1][: edit.start_col]
        tail = lines[edit.end_line - 1][edit.end_col :]
        lines[edit.start_line - 1 : edit.end_line] = [head + edit.replacement + tail]
        last_start = (edit.start_line, edit.start_col)
        applied += 1
    return "\n".join(lines), applied


def _insert_imports(source: str, imports: Sequence[str]) -> str:
    """Ensure each import statement in *imports* appears in *source*.

    Missing ones are inserted after the last top-level import (or after
    the module docstring when the file has no imports yet).
    """
    existing_lines = {line.strip() for line in source.split("\n")}
    missing = [stmt for stmt in imports if stmt not in existing_lines]
    if not missing:
        return source
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source  # leave the file alone rather than corrupt it
    insert_after = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            insert_after = max(insert_after, node.end_lineno or node.lineno)
    if insert_after == 0 and tree.body:
        first = tree.body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            insert_after = first.end_lineno or first.lineno
    lines = source.split("\n")
    lines[insert_after:insert_after] = missing
    return "\n".join(lines)


def apply_fixes(project: Project, violations: Sequence[Violation]) -> Dict[str, int]:
    """Apply every attached fix; returns ``{path: edits applied}``.

    Files are rewritten in place under the project root and the Project's
    caches for them are invalidated, so a follow-up ``run_rules`` sees the
    repaired tree.
    """
    by_path: Dict[str, List[Violation]] = {}
    for violation in violations:
        if violation.fix is not None and violation.path:
            by_path.setdefault(violation.path, []).append(violation)

    applied: Dict[str, int] = {}
    for rel, fixables in sorted(by_path.items()):
        source = project.source(rel)
        edits: List[TextEdit] = []
        imports: List[str] = []
        for violation in fixables:
            assert violation.fix is not None
            edits.extend(violation.fix.edits)
            for stmt in violation.fix.imports:
                if stmt not in imports:
                    imports.append(stmt)
        new_source, count = _apply_edits(source, edits)
        if count == 0:
            continue
        new_source = _insert_imports(new_source, imports)
        project.path(rel).write_text(new_source, encoding="utf-8")
        for cache in (project._sources, project._trees, project._hashes, project._facts):
            cache.pop(rel, None)
        applied[rel] = count
    return applied
