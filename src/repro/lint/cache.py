"""Incremental per-file cache for the shared analysis pass.

The dataflow facts (:mod:`repro.lint.dataflow`) are pure functions of one
file's text, so they cache perfectly: entries are keyed on the SHA-256 of
the file's newline-normalized source plus :data:`~repro.lint.dataflow.
FACTS_VERSION`.  A warm cache turns the live-tree lint run into hash
computations plus a handful of targeted parses (rules R2–R5 read specific
files), which is what keeps ``python -m repro.lint`` sub-second.

The cache lives at ``.repro-cache/lint-facts.json`` under the project root
(same directory the disk result cache uses, already git-ignored).  It is
strictly an accelerator: corruption, partial writes, version skew, or a
read-only directory all degrade to "analyze again", never to wrong
results or a crash.  Writes are atomic (same-directory tmp file +
``os.replace``), mirroring :mod:`repro.eval.diskcache`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.lint.dataflow import FACTS_VERSION, ModuleFacts

#: cache location relative to the project root.
CACHE_REL_PATH = ".repro-cache/lint-facts.json"


class FactsCache:
    """Content-hash-keyed store of per-file analysis facts."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self._load()

    @classmethod
    def for_root(cls, root: Path) -> "FactsCache":
        return cls(Path(root) / CACHE_REL_PATH)

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("facts_version") != FACTS_VERSION:
            return  # version skew: start fresh
        entries = data.get("files")
        if isinstance(entries, dict):
            self._entries = {
                rel: entry
                for rel, entry in entries.items()
                if isinstance(entry, dict) and "hash" in entry and "facts" in entry
            }

    def get(self, rel: str, content_hash: str) -> Optional[ModuleFacts]:
        entry = self._entries.get(rel)
        if entry is not None and entry.get("hash") == content_hash:
            facts = entry.get("facts")
            if isinstance(facts, dict):
                return facts
        return None

    def put(self, rel: str, content_hash: str, facts: ModuleFacts) -> None:
        self._entries[rel] = {"hash": content_hash, "facts": facts}
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache; failures are silently ignored
        (the cache is an accelerator, not a correctness surface)."""
        if not self._dirty:
            return
        payload = {"facts_version": FACTS_VERSION, "files": self._entries}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=".lint-facts-", suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream)
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._dirty = False
