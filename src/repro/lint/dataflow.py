"""Shared per-module analysis pass for the lint rules.

One walk over each module's AST produces a :data:`ModuleFacts` dict — a
JSON-serializable summary of everything any rule wants to know about the
file: import bindings, resolved dotted-name uses, ``os.environ`` accesses,
module-level string constants, per-function structural fingerprints, and
intra-procedural determinism-taint flows.  Rules consume facts instead of
re-walking the tree, so the whole rule set costs one parse per module —
and, with the incremental cache (:mod:`repro.lint.cache`), zero parses for
unchanged files.

Facts are deliberately plain data (dicts/lists/strings/ints): they
round-trip through JSON unchanged, which is what makes the on-disk cache
trivial and trustworthy.  :data:`FACTS_VERSION` is baked into every cache
entry; bump it whenever the shape or semantics of the facts change so
stale cached analyses can never satisfy a newer rule.
"""

from __future__ import annotations

import ast
import copy
import hashlib
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import dotted_name

#: bump on any change to the facts layout or the analyses that fill it.
FACTS_VERSION = 1

#: facts dict — see :func:`analyze_module` for the key inventory.
ModuleFacts = Dict[str, Any]

#: attribute paths that read ambient state (clock, OS entropy); shared by
#: rules R1 (use sites) and R8 (taint sources).
FORBIDDEN_ATTRS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: modules that are nondeterministic by construction.
FORBIDDEN_MODULES = ("random", "secrets", "numpy.random")

#: call targets whose arguments become RunSpec-keyed state (R8 sinks).
#: Matched on the trailing component(s) of the resolved dotted name, so
#: both ``RunSpec(...)`` and ``runspec.RunSpec(...)`` hit.
TAINT_SINKS = (
    "RunSpec",
    "RunSpec.create",
    "run_system",
    "run_system_cached",
    "derive_seed",
)

#: calls that launder order/ambient taint (deterministic output for any
#: input order; ``sorted`` is the canonical unordered-iteration fix).
TAINT_SANITIZERS = frozenset({"sorted", "len", "min", "max", "sum"})

_ENV_READ_CALLS = frozenset(
    {"os.environ.get", "os.environ.pop", "os.environ.setdefault", "os.getenv"}
)

Span = Tuple[int, int, int, int]


def _span(node: ast.AST) -> List[int]:
    """``[lineno, col, end_lineno, end_col]`` of one node (JSON-friendly)."""
    return [
        node.lineno,
        node.col_offset,
        getattr(node, "end_lineno", node.lineno) or node.lineno,
        getattr(node, "end_col_offset", node.col_offset) or node.col_offset,
    ]


def module_matches(module: str, forbidden: str) -> bool:
    return module == forbidden or module.startswith(forbidden + ".")


def forbidden_module_of(dotted: str) -> Optional[str]:
    """The FORBIDDEN_MODULES entry *dotted* falls under, if any."""
    for forbidden in FORBIDDEN_MODULES:
        if module_matches(dotted, forbidden):
            return forbidden
    return None


class _DocstringStripper(ast.NodeTransformer):
    """Drop docstring statements so fingerprints ignore documentation."""

    def _strip(self, node: ast.AST) -> ast.AST:
        self.generic_visit(node)
        body = getattr(node, "body", None)
        if (
            isinstance(body, list)
            and body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            rest = body[1:]
            node.body = rest if rest else [ast.Pass()]  # type: ignore[attr-defined]
        return node

    visit_FunctionDef = _strip
    visit_AsyncFunctionDef = _strip
    visit_ClassDef = _strip
    visit_Module = _strip


def fingerprint_function(node: ast.AST) -> str:
    """Structural SHA-256 of one function: formatting-, comment- and
    docstring-insensitive, line-number-free.  Any behavioural edit moves
    it; reflowing or re-commenting the code does not."""
    stripped = _DocstringStripper().visit(copy.deepcopy(node))
    dump = ast.dump(stripped, annotate_fields=False, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()


def analyze_module(tree: ast.Module) -> ModuleFacts:
    """One-pass analysis of a parsed module.

    Returns a plain-data facts dict with these keys:

    - ``bindings`` — name bound in the module → dotted path it resolves to.
    - ``plain_imports`` — per ``import`` statement: ``{"names": [[module,
      asname|None], ...], "span": [l, c, el, ec]}``.
    - ``from_imports`` — per ``from`` statement: ``{"module", "level",
      "names": [[name, asname|None], ...], "lineno"}``.
    - ``uses`` — resolved dotted attribute uses: ``[[dotted, span], ...]``.
    - ``env_accesses`` — every ``os.environ``/``os.getenv`` access:
      ``{"key_kind": "literal"|"name"|"dynamic", "key", "span", "lineno",
      "write": bool}`` (span covers the key expression, for autofix).
    - ``module_constants`` — module-level ``NAME = "literal"`` or ``NAME =
      other_name`` assignments: ``{name: {"kind": "literal"|"alias",
      "value", "lineno"}}``.
    - ``functions`` — ``{qualname: {"fingerprint", "lineno"}}`` for every
      top-level function and method of a top-level class.
    - ``taint`` — R8 findings: ``{"lineno", "sink", "source",
      "source_line", "via"}`` per tainted-value-reaches-sink flow.
    """
    bindings: Dict[str, str] = {}
    plain_imports: List[Dict[str, Any]] = []
    from_imports: List[Dict[str, Any]] = []
    uses: List[List[Any]] = []
    env_accesses: List[Dict[str, Any]] = []
    module_constants: Dict[str, Dict[str, Any]] = {}
    functions: Dict[str, Dict[str, Any]] = {}

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = []
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings[bound] = alias.name if alias.asname else alias.name.split(".")[0]
                names.append([alias.name, alias.asname])
            plain_imports.append({"names": names, "span": _span(node)})
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            names = [[alias.name, alias.asname] for alias in node.names]
            from_imports.append(
                {
                    "module": module,
                    "level": node.level,
                    "names": names,
                    "lineno": node.lineno,
                }
            )
            if not node.level:
                for alias in node.names:
                    resolved = f"{module}.{alias.name}" if module else alias.name
                    bindings[alias.asname or alias.name] = resolved

    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is None:
                continue
            root, _, rest = dotted.partition(".")
            resolved = bindings.get(root)
            if resolved is None:
                continue
            full = f"{resolved}.{rest}" if rest else resolved
            uses.append([full, _span(node)])

    _collect_env_accesses(tree, bindings, env_accesses)

    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                _record_constant(module_constants, target.id, node.value, bindings)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                _record_constant(module_constants, node.target.id, node.value, bindings)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = {
                "fingerprint": fingerprint_function(node),
                "lineno": node.lineno,
            }
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions[f"{node.name}.{member.name}"] = {
                        "fingerprint": fingerprint_function(member),
                        "lineno": member.lineno,
                    }

    taint = _analyze_taint(tree, bindings)

    return {
        "bindings": bindings,
        "plain_imports": plain_imports,
        "from_imports": from_imports,
        "uses": uses,
        "env_accesses": env_accesses,
        "module_constants": module_constants,
        "functions": functions,
        "taint": taint,
    }


def _record_constant(
    constants: Dict[str, Dict[str, Any]],
    name: str,
    value: ast.expr,
    bindings: Dict[str, str],
) -> None:
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        constants[name] = {"kind": "literal", "value": value.value, "lineno": value.lineno}
    elif isinstance(value, ast.Name):
        constants[name] = {
            "kind": "alias",
            "value": bindings.get(value.id, value.id),
            "lineno": value.lineno,
        }


# --------------------------------------------------------------------- #
# environment accesses (rule R7)
# --------------------------------------------------------------------- #

def _resolve_dotted(node: ast.AST, bindings: Dict[str, str]) -> Optional[str]:
    dotted = dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    resolved = bindings.get(root)
    if resolved is None:
        return None
    return f"{resolved}.{rest}" if rest else resolved


def _key_record(key: ast.expr, lineno: int, write: bool) -> Dict[str, Any]:
    if isinstance(key, ast.Constant) and isinstance(key.value, str):
        kind, value = "literal", key.value
    elif isinstance(key, ast.Name):
        kind, value = "name", key.id
    else:
        kind, value = "dynamic", ""
    return {
        "key_kind": kind,
        "key": value,
        "span": _span(key),
        "lineno": lineno,
        "write": write,
    }


def _collect_env_accesses(
    tree: ast.Module, bindings: Dict[str, str], out: List[Dict[str, Any]]
) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            resolved = _resolve_dotted(node.func, bindings)
            if resolved in _ENV_READ_CALLS and node.args:
                out.append(_key_record(node.args[0], node.lineno, write=False))
        elif isinstance(node, ast.Subscript):
            resolved = _resolve_dotted(node.value, bindings)
            if resolved == "os.environ":
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                out.append(_key_record(node.slice, node.lineno, write=write))
        elif isinstance(node, ast.Compare):
            if len(node.ops) == 1 and isinstance(node.ops[0], (ast.In, ast.NotIn)):
                resolved = _resolve_dotted(node.comparators[0], bindings)
                if resolved == "os.environ":
                    out.append(_key_record(node.left, node.lineno, write=False))


# --------------------------------------------------------------------- #
# determinism taint (rule R8)
# --------------------------------------------------------------------- #

def _sink_match(resolved: str) -> Optional[str]:
    """The TAINT_SINKS entry *resolved* ends with (component-aligned)."""
    for sink in TAINT_SINKS:
        if resolved == sink or resolved.endswith("." + sink):
            return sink
    return None


class _FunctionTaint:
    """One-function def-use taint walk (source order, two passes so
    loop-carried taint converges)."""

    def __init__(self, bindings: Dict[str, str], out: List[Dict[str, Any]]) -> None:
        self.bindings = bindings
        self.out = out
        self.tainted: Dict[str, Tuple[str, int]] = {}  # name -> (source, line)
        self.set_vars: Set[str] = set()
        self.reported: Set[Tuple[int, str]] = set()

    # -- expression classification ---------------------------------- #

    def resolve(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.bindings.get(node.id, node.id)
        return _resolve_dotted(node, self.bindings)

    def call_source(self, node: ast.Call) -> Optional[Tuple[str, int]]:
        """Is this call itself a taint source?"""
        resolved = self.resolve(node.func)
        if resolved is None:
            return None
        if resolved in FORBIDDEN_ATTRS:
            return (f"{resolved}()", node.lineno)
        forbidden = forbidden_module_of(resolved)
        if forbidden is not None and resolved != forbidden:
            return (f"{resolved}()", node.lineno)
        return None

    def expr_taint(self, node: Optional[ast.AST]) -> Optional[Tuple[str, int]]:
        """Taint source of an expression's value, if any."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in TAINT_SANITIZERS:
                return None
            direct = self.call_source(node)
            if direct is not None:
                return direct
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                found = self.expr_taint(arg)
                if found is not None:
                    return found
            return None
        for child in ast.iter_child_nodes(node):
            found = self.expr_taint(child)
            if found is not None:
                return found
        return None

    def is_set_valued(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            resolved = self.resolve(node.func)
            if resolved in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.BinOp):  # set union/intersection chains
            return self.is_set_valued(node.left) or self.is_set_valued(node.right)
        return False

    # -- statement walk ---------------------------------------------- #

    def assign_names(self, target: ast.expr) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: List[str] = []
            for element in target.elts:
                names.extend(self.assign_names(element))
            return names
        return []

    def handle_assign(self, targets: Sequence[ast.expr], value: Optional[ast.expr]) -> None:
        if value is None:
            return
        source = self.expr_taint(value)
        set_valued = self.is_set_valued(value)
        for target in targets:
            for name in self.assign_names(target):
                if source is not None:
                    self.tainted[name] = source
                else:
                    self.tainted.pop(name, None)
                if set_valued:
                    self.set_vars.add(name)
                else:
                    self.set_vars.discard(name)

    def check_sinks(self, node: ast.AST) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            resolved = self.resolve(call.func)
            if resolved is None:
                continue
            sink = _sink_match(resolved)
            if sink is None:
                continue
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                found = self.expr_taint(arg)
                if found is None:
                    continue
                key = (call.lineno, found[0])
                if key in self.reported:
                    continue
                self.reported.add(key)
                via = None
                if isinstance(arg, ast.Name):
                    via = arg.id
                self.out.append(
                    {
                        "lineno": call.lineno,
                        "sink": sink,
                        "source": found[0],
                        "source_line": found[1],
                        "via": via,
                    }
                )

    def walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                self.check_sinks(stmt.value)
                self.handle_assign(stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self.check_sinks(stmt.value)
                self.handle_assign([stmt.target], stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                self.check_sinks(stmt.value)
                source = self.expr_taint(stmt.value)
                for name in self.assign_names(stmt.target):
                    if source is not None:
                        self.tainted[name] = source
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.check_sinks(stmt.iter)
                iter_taint = self.expr_taint(stmt.iter)
                for name in self.assign_names(stmt.target):
                    if self.is_set_valued(stmt.iter):
                        self.tainted[name] = (
                            "iteration over an unordered set",
                            stmt.iter.lineno,
                        )
                    elif iter_taint is not None:
                        self.tainted[name] = iter_taint
                    else:
                        self.tainted.pop(name, None)
                self.walk_body(stmt.body)
                self.walk_body(stmt.orelse)
            elif isinstance(stmt, (ast.If, ast.While)):
                test = stmt.test
                self.check_sinks(test)
                self.walk_body(stmt.body)
                self.walk_body(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.check_sinks(item.context_expr)
                self.walk_body(stmt.body)
            elif isinstance(stmt, ast.Try):
                self.walk_body(stmt.body)
                for handler in stmt.handlers:
                    self.walk_body(handler.body)
                self.walk_body(stmt.orelse)
                self.walk_body(stmt.finalbody)
            elif isinstance(stmt, (ast.Expr, ast.Return)):
                if stmt.value is not None:
                    self.check_sinks(stmt.value)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs get their own walk
            else:
                self.check_sinks(stmt)


def _analyze_taint(tree: ast.Module, bindings: Dict[str, str]) -> List[Dict[str, Any]]:
    """R8 findings for every function (and the module body) of *tree*."""
    out: List[Dict[str, Any]] = []
    scopes: List[Sequence[ast.stmt]] = [tree.body]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node.body)
    for body in scopes:
        walker = _FunctionTaint(bindings, out)
        # two passes: the second sees assignments made later in the first,
        # so taint carried around a loop back-edge still reaches its sink.
        walker.walk_body(body)
        walker.walk_body(body)
    out.sort(key=lambda entry: (entry["lineno"], entry["source"]))
    return out
