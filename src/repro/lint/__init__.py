"""AST-based invariant checker for determinism, cache-safety and executor
boundaries.

See ``docs/static_analysis.md`` for the rule catalogue (R1–R8), the
behavior-manifest workflow (including R6's backend pair fingerprints),
the ``repro.envvars`` registry R7 enforces, autofixes, SARIF output, and
how to allowlist a legitimate exception.
"""

from repro.lint.engine import (
    Fix,
    LintError,
    Project,
    Rule,
    TextEdit,
    Violation,
    run_rules,
)
from repro.lint.rules import (
    BackendDriftRule,
    BehaviorManifestRule,
    CatalogSyncRule,
    DeterminismRule,
    DeterminismTaintRule,
    EnvRegistryRule,
    ExecutorBoundaryRule,
    RunSpecSyncRule,
    default_rules,
)

__all__ = [
    "BackendDriftRule",
    "BehaviorManifestRule",
    "CatalogSyncRule",
    "DeterminismRule",
    "DeterminismTaintRule",
    "EnvRegistryRule",
    "ExecutorBoundaryRule",
    "Fix",
    "LintError",
    "Project",
    "Rule",
    "RunSpecSyncRule",
    "TextEdit",
    "Violation",
    "default_rules",
    "run_rules",
]
