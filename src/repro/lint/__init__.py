"""AST-based invariant checker for determinism, cache-safety and executor
boundaries.

See ``docs/static_analysis.md`` for the rule catalogue (R1–R5), the
behavior-manifest workflow, and how to allowlist a legitimate exception.
"""

from repro.lint.engine import LintError, Project, Rule, Violation, run_rules
from repro.lint.rules import (
    BehaviorManifestRule,
    CatalogSyncRule,
    DeterminismRule,
    ExecutorBoundaryRule,
    RunSpecSyncRule,
    default_rules,
)

__all__ = [
    "BehaviorManifestRule",
    "CatalogSyncRule",
    "DeterminismRule",
    "ExecutorBoundaryRule",
    "LintError",
    "Project",
    "Rule",
    "RunSpecSyncRule",
    "Violation",
    "default_rules",
    "run_rules",
]
