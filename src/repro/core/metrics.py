"""Per-core statistics and derived metrics.

All counters describe the *measurement window* (the engine resets them at
the warm-up boundary).  Derived quantities follow the paper's definitions:

- miss rates are **per retired instruction** (Figures 1, 2);
- *accuracy* is useful prefetches / issued prefetches (Figure 9);
- *coverage* is the fraction of would-be misses a prefetcher removed,
  measured as ``useful / (useful + remaining misses)`` (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caches.missclass import MissBreakdown


@dataclass
class PrefetchStats:
    """Prefetch flow counters for one core."""

    #: candidates the prefetcher generated (pre-filter).
    generated: int = 0
    #: tag probes where the line was already resident (probe wasted).
    probe_found_present: int = 0
    #: prefetches actually issued (fill initiated).
    issued: int = 0
    #: issued fills sourced from the L2.
    issued_from_l2: int = 0
    #: issued fills sourced from memory (consume off-chip bandwidth).
    issued_from_memory: int = 0
    #: prefetched lines consumed by a demand fetch (first use).
    useful: int = 0
    #: useful, but the fill had not completed — partial stall remained.
    useful_late: int = 0
    #: useful fills that had been sourced from memory.
    useful_from_memory: int = 0
    #: prefetched lines evicted from the L1I without ever being used.
    useless_evicted: int = 0
    #: prefetches dropped by the §2.4 used-bit re-prefetch filter.
    dropped_useless_hint: int = 0
    #: used bypass lines installed into the L2 on L1I eviction (§7).
    promoted_to_l2: int = 0

    @property
    def accuracy(self) -> float:
        """Useful / issued (0 when nothing was issued)."""
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


@dataclass
class CoreStats:
    """Complete measurement-window statistics for one core."""

    instructions: int = 0
    cycles: float = 0.0
    exec_cycles: float = 0.0
    fetch_stall_cycles: float = 0.0
    data_stall_cycles: float = 0.0

    l1i_fetches: int = 0
    l1i_misses: int = 0
    l1i_breakdown: MissBreakdown = field(default_factory=MissBreakdown)

    l2i_demand_accesses: int = 0
    l2i_demand_misses: int = 0
    l2i_breakdown: MissBreakdown = field(default_factory=MissBreakdown)

    data_accesses: int = 0
    l1d_misses: int = 0
    l2d_accesses: int = 0
    l2d_misses: int = 0

    prefetch: PrefetchStats = field(default_factory=PrefetchStats)

    # ------------------------------------------------------------------ #
    # Derived metrics (paper definitions)
    # ------------------------------------------------------------------ #

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l1i_miss_rate_per_instruction(self) -> float:
        """Figure 1 metric: L1I misses per retired instruction."""
        if self.instructions == 0:
            return 0.0
        return self.l1i_misses / self.instructions

    @property
    def l2i_miss_rate_per_instruction(self) -> float:
        """Figure 2 metric: L2 instruction misses per retired instruction."""
        if self.instructions == 0:
            return 0.0
        return self.l2i_demand_misses / self.instructions

    @property
    def l2d_miss_rate_per_instruction(self) -> float:
        """Figure 7 metric: L2 data misses per retired instruction."""
        if self.instructions == 0:
            return 0.0
        return self.l2d_misses / self.instructions

    @property
    def l1i_coverage(self) -> float:
        """Fraction of would-be L1I misses removed by prefetching."""
        would_be = self.prefetch.useful + self.l1i_misses
        if would_be == 0:
            return 0.0
        return self.prefetch.useful / would_be

    @property
    def l2i_coverage(self) -> float:
        """Fraction of would-be L2 instruction misses removed.

        Memory-sourced useful prefetches are fills that would otherwise
        have been L2 demand misses.
        """
        would_be = self.prefetch.useful_from_memory + self.l2i_demand_misses
        if would_be == 0:
            return 0.0
        return self.prefetch.useful_from_memory / would_be

    def reset(self) -> None:
        self.instructions = 0
        self.cycles = 0.0
        self.exec_cycles = 0.0
        self.fetch_stall_cycles = 0.0
        self.data_stall_cycles = 0.0
        self.l1i_fetches = 0
        self.l1i_misses = 0
        self.l1i_breakdown.reset()
        self.l2i_demand_accesses = 0
        self.l2i_demand_misses = 0
        self.l2i_breakdown.reset()
        self.data_accesses = 0
        self.l1d_misses = 0
        self.l2d_accesses = 0
        self.l2d_misses = 0
        self.prefetch.reset()

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"instructions        : {self.instructions}",
            f"cycles              : {self.cycles:.0f}",
            f"IPC                 : {self.ipc:.3f}",
            f"L1I miss rate       : {100 * self.l1i_miss_rate_per_instruction:.3f}% per instr",
            f"L2I miss rate       : {100 * self.l2i_miss_rate_per_instruction:.3f}% per instr",
            f"L2D miss rate       : {100 * self.l2d_miss_rate_per_instruction:.3f}% per instr",
            f"prefetch issued     : {self.prefetch.issued}",
            f"prefetch accuracy   : {100 * self.prefetch.accuracy:.1f}%",
            f"L1I coverage        : {100 * self.l1i_coverage:.1f}%",
        ]
        return "\n".join(lines)
