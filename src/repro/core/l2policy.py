"""L2 installation policy for instruction prefetches (paper §7).

Aggressive instruction prefetching pollutes the shared unified L2: every
speculative line installed there can evict a data line, raising the L2
*data* miss rate enough to cancel the prefetcher's gains (Figures 6/7).

Two policies:

- :data:`NORMAL_INSTALL` — prefetch fills from memory are installed into
  the L2 (and L1I), like demand fills.  This reproduces the pollution.
- :data:`BYPASS_INSTALL` — the paper's fix: prefetch fills initially
  *bypass* the L2 and are installed only into the L1I, tagged
  ``bypass_pending``.  When the L1I later evicts the line, it is installed
  into the L2 **iff it was demand-used** while resident ("the line only
  being installed in the L2 cache iff the prefetched line proves to be
  useful").  Useless prefetches therefore never displace L2 data.  A
  prefetch that *hits* in the L2 also avoids promoting the line's recency,
  so speculation never strengthens a line's claim on L2 capacity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class L2InstallPolicy:
    """How instruction-prefetch fills interact with the unified L2."""

    name: str
    #: install memory-sourced prefetch fills into the L2 immediately.
    install_prefetch_fills: bool
    #: update L2 recency when a prefetch hits in the L2.
    promote_on_prefetch_hit: bool
    #: on L1I eviction of a used bypass line, install it into the L2.
    install_used_on_eviction: bool


NORMAL_INSTALL = L2InstallPolicy(
    name="normal",
    install_prefetch_fills=True,
    promote_on_prefetch_hit=True,
    install_used_on_eviction=False,
)

BYPASS_INSTALL = L2InstallPolicy(
    name="bypass",
    install_prefetch_fills=False,
    promote_on_prefetch_hit=False,
    install_used_on_eviction=True,
)

_POLICIES = {policy.name: policy for policy in (NORMAL_INSTALL, BYPASS_INSTALL)}


def get_policy(name: str) -> L2InstallPolicy:
    """Look up a policy by name (``"normal"`` or ``"bypass"``)."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown L2 install policy {name!r}; available: {sorted(_POLICIES)}") from None
