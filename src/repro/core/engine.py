"""The per-core front-end engine.

One :class:`CoreEngine` walks one core's trace at cache-line-visit
granularity, performing for each visit:

1. **Prefetch issue** — drain the prefetch queue using the tag-probe slots
   accumulated since the previous visit (§4.1: prefetches use the tag port
   only when demand fetch doesn't need it).
2. **Demand fetch** — L1I lookup; on a miss, fetch through the L2/memory,
   charging the fetch stall (instruction misses stall the pipeline for
   their full exposed latency).  First use of a prefetched line clears its
   ``prefetched`` bit (the tagged trigger), credits the predicting table
   entry, and charges only the *residual* latency if the fill is still in
   flight.
3. **Discontinuity observation** — non-sequential transitions are reported
   to the prefetcher (allocation happens only for transitions that missed).
4. **Prefetch generation** — the prefetcher's candidates are filtered
   through the queue.
5. **Data accesses** — run against the L1D and unified L2, charging the
   exposed fraction of their latency; this is the data stream that the
   instruction prefetcher's L2 pollution hurts (Figure 7).
6. **Execution** — ``ninstr / issue_width`` cycles of issue-bound progress.

The engine is steppable (one visit per :meth:`step`) so the CMP system can
interleave cores in global cycle order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterator, Optional

from repro.caches.cache import SetAssociativeCache
from repro.caches.line import LineState
from repro.caches.mshr import OutstandingRequestTracker
from repro.cmp.link import OffChipLink
from repro.core.l2policy import NORMAL_INSTALL, L2InstallPolicy
from repro.core.metrics import CoreStats
from repro.isa.classify import MissClass, classify_transition, is_discontinuity
from repro.isa.kinds import TransitionKind
from repro.prefetch.base import Prefetcher
from repro.prefetch.queue import PrefetchQueue
from repro.timing.params import TimingParams
from repro.trace.compiled import CompiledTrace, TraceLike
from repro.trace.stream import LineVisit, iter_line_visits

#: at most this many prefetches are issued per visit, bounding queue-drain
#: work even across very long stalls.
_MAX_ISSUE_PER_VISIT = 8


@dataclass
class EngineConfig:
    """Static configuration of one core engine."""

    core_id: int = 0
    warm_instructions: int = 0
    #: miss classes whose fetch stalls are waived (Figure 4 limit study).
    free_miss_classes: FrozenSet[MissClass] = frozenset()
    l2_policy: L2InstallPolicy = NORMAL_INSTALL
    #: Luk & Mowry-style re-prefetch filter (paper §2.4): drop prefetches
    #: for L2 lines marked as previously-prefetched-but-unused.
    useless_hint_filter: bool = False


class CoreEngine:
    """Trace-driven model of one core's front end and data path."""

    def __init__(
        self,
        config: EngineConfig,
        trace: TraceLike,
        line_size: int,
        l1i: SetAssociativeCache,
        l1d: SetAssociativeCache,
        l2: SetAssociativeCache,
        link: OffChipLink,
        prefetcher: Prefetcher,
        queue: PrefetchQueue,
        timing: TimingParams,
    ) -> None:
        self.config = config
        self.trace = trace
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2
        self.link = link
        self.prefetcher = prefetcher
        self.queue = queue
        self.timing = timing
        self.stats = CoreStats()

        self.cycle: float = 0.0
        self.total_instructions: int = 0
        self._line_shift = line_size.bit_length() - 1
        # Fast path: a CompiledTrace is consumed by index from its packed
        # columns (no generator frame, no LineVisit allocation per visit);
        # a raw Trace keeps the lazy lowering.  Both paths funnel into
        # _process_visit, so their arithmetic is identical by construction.
        if isinstance(trace, CompiledTrace):
            if trace.line_size != line_size:
                raise ValueError(
                    f"trace compiled for line_size={trace.line_size}, "
                    f"engine configured for {line_size}"
                )
            self._compiled: Optional[CompiledTrace] = trace
            self._visits: Optional[Iterator[LineVisit]] = None
            self._visit_index = 0
            self._c_lines = trace.lines
            self._c_kinds = trace.kinds
            self._c_ninstr = trace.ninstr
            self._c_data = trace.data
            self._c_offsets = trace.offsets
            self._c_disc = trace.disc
            self._c_count = trace.visit_count
        else:
            self._compiled = None
            self._visits = iter_line_visits(trace.events, line_size)
        self._prev_line = -1
        self._slot_credit = 0.0
        self._last_slot_cycle = 0.0
        self._warmed = config.warm_instructions == 0
        self._warm_target = config.warm_instructions
        self._cycle_mark = 0.0
        self._mshr = OutstandingRequestTracker(timing.prefetch_mshr_capacity)
        self._exec_cpi = 1.0 / timing.issue_width + timing.base_cpi_overhead
        self._free_kind = self._build_free_kind_table(config.free_miss_classes)
        self._finished = False
        # step() and its callees run once per line visit — the simulator's
        # hottest loop.  Everything below is immutable for the engine's
        # lifetime, so hoist the repeated attribute chains (timing scalars,
        # bound methods of the caches/queue/prefetcher, TransitionKind
        # members) into locals-at-one-load distance.  l2_eviction_hook is
        # deliberately NOT hoisted: the system wires it up after
        # construction.
        self._fetch_stall_exposed = timing.fetch_stall_exposed_fraction
        self._slot_rate = timing.prefetch_slot_rate
        self._l2_latency = float(timing.l2_latency)
        self._memory_latency = timing.memory_latency
        self._data_l2_exposed = timing.l2_latency * timing.data_l2_exposed_fraction
        self._data_memory_exposed = timing.data_memory_exposed_fraction
        self._l2_policy = config.l2_policy
        self._useless_hint_filter = config.useless_hint_filter
        self._l1i_lookup = l1i.lookup
        self._l1i_probe = l1i.probe
        self._l1d_lookup = l1d.lookup
        self._l2_lookup = l2.lookup
        self._l2_probe = l2.probe
        self._link_request = link.request
        self._queue_offer = queue.offer
        self._queue_pop_ready = queue.pop_ready
        self._queue_note_demand = queue.note_demand_fetch
        self._pf_on_demand_fetch = prefetcher.on_demand_fetch
        self._pf_on_discontinuity = prefetcher.on_discontinuity
        self._pf_credit = prefetcher.credit
        self._pf_overhead = prefetcher.consume_overhead_cycles
        self._kind_members = list(TransitionKind)
        #: optional callback invoked with the line index of every L2
        #: victim this engine causes; the CMP system uses it to implement
        #: inclusive-L2 back-invalidation of all cores' L1s.
        self.l2_eviction_hook: Optional[Callable[[int], None]] = None

    @staticmethod
    def _build_free_kind_table(free_classes: FrozenSet[MissClass]):
        """Per-kind bool list: is this transition kind's miss waived?"""
        return [classify_transition(kind) in free_classes for kind in TransitionKind]

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #

    @property
    def finished(self) -> bool:
        return self._finished

    def step(self) -> bool:
        """Process the next line visit; return False when the trace ends."""
        if self._compiled is not None:
            return self._step_compiled()
        return self._step_stream()

    def _step_stream(self) -> bool:
        """Slow path: pull the next visit from the lazy lowering."""
        visits = self._visits
        assert visits is not None  # only called when no compiled trace
        visit = next(visits, None)
        if visit is None:
            self._finished = True
            self.stats.cycles = self.cycle - self._cycle_mark
            return False
        line, kind, ninstr, data = visit
        prev = self._prev_line
        disc = (
            prev >= 0
            and line != prev
            and is_discontinuity(self._kind_members[kind], prev, line)
        )
        return self._process_visit(line, kind, ninstr, data, disc)

    def _step_compiled(self) -> bool:
        """Fast path: read the packed columns by index, allocation-free."""
        i = self._visit_index
        if i >= self._c_count:
            self._finished = True
            self.stats.cycles = self.cycle - self._cycle_mark
            return False
        self._visit_index = i + 1
        start = self._c_offsets[i]
        end = self._c_offsets[i + 1]
        return self._process_visit(
            self._c_lines[i],
            self._c_kinds[i],
            self._c_ninstr[i],
            self._c_data[start:end] if end > start else (),
            self._c_disc[i] != 0,
        )

    def _process_visit(self, line, kind, ninstr, data, disc) -> bool:
        """Steps (1)-(6) for one visit; shared by both trace paths."""
        now = self.cycle
        stats = self.stats

        # (1) prefetch issue opportunities accumulated since the last visit.
        # Inlined no-slot guard: when the accrued credit stays below one
        # slot, store it back without the queue-drain call (the common
        # case).  Bit-identical to calling _issue_prefetches — the same
        # floats are computed in the same order.
        last = self._last_slot_cycle
        credit = self._slot_credit + (now - last) * self._slot_rate
        if credit < 1.0:
            self._last_slot_cycle = now
            self._slot_credit = credit
        else:
            self._issue_prefetches(now)

        # (2) demand fetch.  The stall is *computed* here but the clock only
        # advances after prefetch generation (step 4), because the miss
        # itself is what triggers the prefetcher in hardware: its requests
        # go out while the demand fill is still in flight, overlapping the
        # stall.  That overlap is precisely how a tagged next-line chain
        # hides latency on a sequential run.
        stats.l1i_fetches += 1
        state = self._l1i_lookup(line)
        first_use = False
        stall = 0.0
        if state is not None:
            was_miss = False
            if state.prefetched:
                first_use = True
                state.prefetched = False
                pf = stats.prefetch
                pf.useful += 1
                if state.from_memory:
                    pf.useful_from_memory += 1
                if state.provenance is not None:
                    self._pf_credit(state.provenance)
                if state.arrival > now:
                    # Late prefetch: stall for the residual fill latency.
                    stall = state.arrival - now
                    pf.useful_late += 1
            state.used = True
        else:
            was_miss = True
            stats.l1i_misses += 1
            stats.l1i_breakdown.record(kind)
            stall = self._demand_fill(line, kind, now)
            if self._free_kind[kind]:
                stall = 0.0

        # (3) discontinuity observation (flag precomputed at trace-compile
        # time on the fast path; live classification on the slow path).
        if disc:
            self._pf_on_discontinuity(self._prev_line, line, was_miss)
        self._prev_line = line

        # (4) prefetch generation + filtering; newly generated prefetches
        # may issue during the demand stall (the fetch unit is idle, so the
        # tag port is free — §4.1).
        self._queue_note_demand(line)
        candidates = self._pf_on_demand_fetch(line, was_miss, first_use, kind)
        if candidates:
            stats.prefetch.generated += len(candidates)
            offer = self._queue_offer
            for candidate in candidates:
                if candidate.line != line:
                    offer(candidate)
        if stall > 0.0:
            # The OoO window hides a slice of every fetch stall; only the
            # exposed fraction reaches the clock.
            stall *= self._fetch_stall_exposed
            stats.fetch_stall_cycles += stall
            # Same inlined guard as step (1): _last_slot_cycle already
            # equals `now` here (both step-(1) branches set it), so the
            # drain call sees zero elapsed time and only the explicit
            # stall-granted credit matters.
            credit = self._slot_credit + stall * self._slot_rate
            self._slot_credit = credit
            if credit >= 1.0:
                self._issue_prefetches(now)
            now += stall
            # The stall window's slots were granted explicitly above; do not
            # grant them again from elapsed time at the next visit.
            self._last_slot_cycle = now

        overhead = self._pf_overhead()
        if overhead:
            stats.exec_cycles += overhead
            now += overhead

        # (5) data accesses.  The L1D-hit check is inlined: a hit costs no
        # cycles (now + 0.0 == now exactly), so only misses take the call.
        if data:
            shift = self._line_shift
            l1d_lookup = self._l1d_lookup
            for addr in data:
                stats.data_accesses += 1
                dline = addr >> shift
                if l1d_lookup(dline) is None:
                    now += self._data_miss(dline, now)

        # (6) execution.
        exec_cycles = ninstr * self._exec_cpi
        stats.exec_cycles += exec_cycles
        now += exec_cycles
        self.cycle = now
        stats.instructions += ninstr
        self.total_instructions += ninstr

        if not self._warmed and self.total_instructions >= self._warm_target:
            self._end_warmup()
        return True

    def run(self) -> CoreStats:
        """Run the whole trace; return the measurement-window stats."""
        step = self._step_compiled if self._compiled is not None else self._step_stream
        while step():
            pass
        return self.stats

    def _end_warmup(self) -> None:
        """Zero the counters at the warm/measure boundary."""
        self._warmed = True
        self.stats.reset()
        self._cycle_mark = self.cycle

    # ------------------------------------------------------------------ #
    # Fill paths
    # ------------------------------------------------------------------ #

    def _install_l2(self, line: int, state: LineState) -> None:
        """Install into the L2, reporting the victim to the inclusion hook."""
        victim = self.l2.install(line, state)
        if victim is not None and self.l2_eviction_hook is not None:
            self.l2_eviction_hook(victim[0])

    def _demand_fill(self, line: int, kind: int, now: float) -> float:
        """Fetch *line* on a demand L1I miss; return the stall in cycles."""
        stats = self.stats
        stats.l2i_demand_accesses += 1
        l2_state = self._l2_lookup(line)
        if l2_state is not None:
            l2_state.used = True
            l2_state.prefetched = False
            l2_state.useless_hint = False
            stall = self._l2_latency
            if l2_state.arrival > now + stall:
                # The L2 copy itself is still arriving (it was installed by
                # an in-flight fill); wait for it.
                stall = l2_state.arrival - now
        else:
            stats.l2i_demand_misses += 1
            stats.l2i_breakdown.record(kind)
            start = self._link_request(now)
            stall = (start - now) + self._memory_latency
            arrival = now + stall
            self._install_l2(line, LineState(used=True, arrival=arrival))
        arrival = now + stall
        self._install_l1i(line, LineState(used=True, arrival=arrival), now)
        return stall

    def _install_l1i(self, line: int, state: LineState, now: float) -> None:
        """Install into the L1I, handling the eviction-side §7 policy."""
        victim = self.l1i.install(line, state)
        if victim is None:
            return
        victim_line, victim_state = victim
        if victim_state.prefetched:
            # Evicted without ever being demand-used.
            self.stats.prefetch.useless_evicted += 1
            if self._useless_hint_filter:
                l2_copy = self._l2_probe(victim_line)
                if l2_copy is not None:
                    l2_copy.useless_hint = True
            return
        if victim_state.bypass_pending and victim_state.used:
            # §7: proven-useful bypass line is installed into the L2 now.
            policy = self._l2_policy
            if policy.install_used_on_eviction and self._l2_probe(victim_line) is None:
                self._install_l2(victim_line, LineState(used=True, arrival=now))
                self.stats.prefetch.promoted_to_l2 += 1

    # ------------------------------------------------------------------ #
    # Prefetch issue
    # ------------------------------------------------------------------ #

    def _issue_prefetches(self, now: float) -> None:
        """Drain the queue using tag slots accrued since the last visit."""
        elapsed = now - self._last_slot_cycle
        self._last_slot_cycle = now
        credit = self._slot_credit + elapsed * self._slot_rate
        slots = int(credit)
        if slots <= 0:
            self._slot_credit = credit
            return
        if slots > _MAX_ISSUE_PER_VISIT:
            slots = _MAX_ISSUE_PER_VISIT
            credit = float(slots)
        self._slot_credit = credit - slots

        if self.queue.waiting == 0:
            # Nothing ready: the scan below would find nothing and mutate
            # nothing, so skipping it is exact — and O(1) instead of a walk
            # over stale entries.  (Slot credit above is still consumed, as
            # the scan's issue loop would have.)
            return

        pop_ready = self._queue_pop_ready
        probe = self._l1i_probe
        stats = self.stats.prefetch
        policy = self._l2_policy
        for _ in range(slots):
            entry = pop_ready()
            if entry is None:
                break
            line = entry.line
            # Tag probe (§4.1): after filtering, most probes should miss.
            if probe(line) is not None:
                stats.probe_found_present += 1
                continue
            if not self._mshr.can_accept(now):
                # MSHR file full: put the entry back and stop for now.
                self.queue.requeue(entry)
                break
            self._issue_one(line, entry.provenance, now, policy, stats)

    def _issue_one(self, line, provenance, now, policy, stats) -> None:
        l2_state = self._l2_probe(line)
        if (
            l2_state is not None
            and self._useless_hint_filter
            and l2_state.useless_hint
        ):
            stats.dropped_useless_hint += 1
            return
        if l2_state is not None:
            arrival = now + self._l2_latency
            if l2_state.arrival > arrival:
                arrival = l2_state.arrival
            if policy.promote_on_prefetch_hit:
                self.l2.touch(line)
            stats.issued += 1
            stats.issued_from_l2 += 1
            self._install_l1i(
                line,
                LineState(prefetched=True, arrival=arrival, provenance=provenance),
                now,
            )
            return
        start = self._link_request(now)
        arrival = start + self._memory_latency
        self._mshr.add(line, arrival, now)
        stats.issued += 1
        stats.issued_from_memory += 1
        bypass = not policy.install_prefetch_fills
        if not bypass:
            self._install_l2(line, LineState(prefetched=True, arrival=arrival))
        self._install_l1i(
            line,
            LineState(
                prefetched=True,
                arrival=arrival,
                bypass_pending=bypass,
                from_memory=True,
                provenance=provenance,
            ),
            now,
        )

    # ------------------------------------------------------------------ #
    # Data path
    # ------------------------------------------------------------------ #

    def _data_miss(self, line: int, now: float) -> float:
        """Run one data access that missed the L1D; return the exposed stall.

        The L1D lookup (and the ``data_accesses`` count) happens at the call
        site in :meth:`_process_visit` so hits never pay a method call.
        """
        stats = self.stats
        stats.l1d_misses += 1
        stats.l2d_accesses += 1
        l2_state = self._l2_lookup(line)
        if l2_state is not None:
            l2_state.used = True
            exposed = self._data_l2_exposed
        else:
            stats.l2d_misses += 1
            start = self._link_request(now)
            raw = (start - now) + self._memory_latency
            exposed = raw * self._data_memory_exposed
            self._install_l2(line, LineState(used=True, arrival=now + raw))
        self.l1d.install(line, LineState(used=True))
        stats.data_stall_cycles += exposed
        return exposed
